"""The convex-optimization abstraction: six models, one solver (Section 5.1, Table 2).

Trains every Table 2 model through the shared IGD aggregate + SGD driver and
prints a small summary table: epochs run, loss before/after, and — where a
closed-form or oracle answer exists — how close the SGD solution is to it.

Run with::

    python examples/sgd_models.py
"""

from __future__ import annotations

import numpy as np

from repro import Database
from repro.convex import (
    train_crf_labeling,
    train_lasso,
    train_least_squares,
    train_logistic,
    train_recommendation,
    train_svm,
)
from repro.datasets import (
    load_logistic_table,
    load_regression_table,
    make_logistic,
    make_ratings,
    make_regression,
    make_tag_corpus,
)


def main() -> None:
    db = Database(num_segments=4)

    regression = make_regression(2000, 5, noise=0.3, seed=31)
    load_regression_table(db, "regr", regression)
    classification = make_logistic(2000, 5, seed=32, labels_plus_minus=True)
    load_logistic_table(db, "classif", classification)
    ratings = make_ratings(50, 40, 4, density=0.25, seed=33)
    db.create_table(
        "ratings",
        [("user_id", "integer"), ("item_id", "integer"), ("rating", "double precision")],
    )
    db.load_rows("ratings", ratings)
    corpus = make_tag_corpus(40, seed=34)

    rows = []

    result = train_least_squares(db, "regr", max_epochs=15)
    closed_form, *_ = np.linalg.lstsq(regression.features, regression.response, rcond=None)
    rows.append(("Least Squares", result,
                 f"coef distance to closed form {np.linalg.norm(result.model - closed_form):.3f}"))

    result = train_lasso(db, "regr", mu=0.2, max_epochs=15)
    rows.append(("Lasso", result, f"L1 norm {np.abs(result.model).sum():.2f}"))

    result = train_logistic(db, "classif", max_epochs=15)
    accuracy = float(np.mean((classification.features @ result.model > 0)
                             == (classification.labels > 0)))
    rows.append(("Logistic Regression", result, f"accuracy {accuracy:.1%}"))

    result = train_svm(db, "classif", max_epochs=15)
    accuracy = float(np.mean(np.where(classification.features @ result.model > 0, 1, -1)
                             == classification.labels))
    rows.append(("Classification (SVM)", result, f"accuracy {accuracy:.1%}"))

    recommendation = train_recommendation(db, "ratings", rank=4, max_epochs=30, tolerance=1e-7)
    rows.append(("Recommendation", recommendation.result,
                 f"train RMSE {recommendation.rmse(ratings):.3f}"))

    result = train_crf_labeling(db, corpus, max_epochs=4)
    rows.append(("Labeling (CRF)", result,
                 f"negative log-likelihood per sentence {result.final_loss:.2f}"))

    print(f"{'Application':<22} {'epochs':>6} {'initial loss':>13} {'final loss':>11}  quality")
    print("-" * 85)
    for name, result, quality in rows:
        print(f"{name:<22} {result.num_epochs:>6} {result.initial_loss:>13.4f} "
              f"{result.final_loss:>11.4f}  {quality}")

    print()
    print("Every model above was trained by the same driver and the same in-database")
    print("IGD aggregate; only the per-row objective (loss + gradient) differs.")


if __name__ == "__main__":
    main()
