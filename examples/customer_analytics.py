"""Customer analytics: the "data science over a warehouse" workflow of Section 1.

A synthetic retail scenario: a transactions table is loaded "magnetically"
(no up-front schema design), profiled, and then modelled three ways —
market-basket association rules for cross-sell, k-means segmentation of
customer behaviour, and a churn model trained with logistic regression.  All
heavy lifting runs inside the SQL engine; the driver only orchestrates.

Run with::

    python examples/customer_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import Database
from repro.datasets import load_baskets_table, make_baskets
from repro.methods import association_rules, kmeans, logistic_regression, profile


def build_warehouse(db: Database, *, num_customers: int = 400, seed: int = 7) -> None:
    """Load synthetic customer behaviour, basket and churn tables."""
    rng = np.random.default_rng(seed)

    # Customer behaviour: visits per month, average spend, support tickets.
    visits = rng.poisson(6, size=num_customers) + 1
    spend = rng.gamma(3.0, 25.0, size=num_customers)
    tickets = rng.poisson(1.0, size=num_customers)
    segments = rng.integers(0, 3, size=num_customers)
    spend += segments * 80.0           # three spend tiers
    visits += segments * 4

    db.execute(
        "CREATE TABLE customers (customer_id integer, visits integer, "
        "spend double precision, tickets integer)"
    )
    db.load_rows(
        "customers",
        [(i, int(visits[i]), float(spend[i]), int(tickets[i])) for i in range(num_customers)],
    )

    # Feature vectors for clustering / churn, stored as double precision[].
    churn_probability = 1.0 / (1.0 + np.exp(-(tickets - 0.02 * spend + 0.5)))
    churned = (rng.uniform(size=num_customers) < churn_probability).astype(float)
    db.execute(
        "CREATE TABLE behaviour (customer_id integer, features double precision[], "
        "churned double precision)"
    )
    db.load_rows(
        "behaviour",
        [
            (i, np.array([visits[i], spend[i] / 100.0, tickets[i]]), float(churned[i]))
            for i in range(num_customers)
        ],
    )

    # Market baskets with a few planted co-purchase patterns.
    baskets = make_baskets(
        600, 40, patterns=[[2, 3], [10, 11, 12], [25, 26]], pattern_probability=0.5, seed=seed
    )
    load_baskets_table(db, "baskets", baskets)


def main() -> None:
    db = Database(num_segments=4)
    build_warehouse(db)

    # 1. Profile what we just loaded (templated, catalog-driven SQL).
    print("== Data profile: customers ==")
    for row in profile.profile(db, "customers").as_rows():
        print(f"  {row['column']:<12} {row['type']:<18} non_null={row['non_null']:<5} "
              f"distinct~{row['distinct']}")
    print()

    # 2. Cross-sell: association rules over the baskets table.
    print("== Top cross-sell rules (Apriori) ==")
    _, rules = association_rules.mine(db, "baskets", min_support=0.2, min_confidence=0.6)
    for rule in rules[:5]:
        print(f"  {rule.antecedent} -> {rule.consequent}  "
              f"support={rule.support:.2f} confidence={rule.confidence:.2f} lift={rule.lift:.2f}")
    print()

    # 3. Customer segmentation: k-means over the behaviour vectors.
    print("== Customer segments (k-means, k=3) ==")
    clusters = kmeans.train(db, "behaviour", "features", k=3, seed=11)
    assignments = kmeans.assign(db, clusters, "behaviour", "features", id_column="customer_id")
    counts = {}
    for row in assignments:
        counts[row["cluster_id"]] = counts.get(row["cluster_id"], 0) + 1
    for cluster_id, centroid in enumerate(clusters.centroids):
        print(f"  segment {cluster_id}: {counts.get(cluster_id, 0):4d} customers, "
              f"centroid (visits, spend/100, tickets) = {np.round(centroid, 2)}")
    print(f"  converged in {clusters.num_iterations} iterations, "
          f"objective {clusters.objective:.1f}")
    print()

    # 4. Churn model: logistic regression with the IRLS driver.
    print("== Churn model (logistic regression) ==")
    churn = logistic_regression.train(db, "behaviour", "churned", "features")
    for name, coefficient, p_value in zip(
        ["visits", "spend/100", "tickets"], churn.coef, churn.p_values
    ):
        print(f"  {name:<10} coef={coefficient:+.3f}  p={p_value:.3g}")
    scored = logistic_regression.predict(db, churn, "behaviour", "features",
                                         id_column="customer_id")
    at_risk = sorted(scored, key=lambda row: -row["probability"])[:5]
    print("  Highest churn risk customers:",
          [(row["customer_id"], round(row["probability"], 2)) for row in at_risk])


if __name__ == "__main__":
    main()
