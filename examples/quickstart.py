"""Quickstart: the paper's Section 4.1.1 linear-regression example, end to end.

Creates an in-memory "Greenplum" with 4 segments, loads a small regression
table, runs ``SELECT linregr(y, x) FROM data`` and prints the composite result
record the way psql's expanded display does in the paper, then does the same
for logistic regression (the multi-pass, driver-function method).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Database
from repro.engine.types import format_value
from repro.methods import linear_regression, logistic_regression


def main() -> None:
    # A 4-segment database: the shared-nothing layout of a small Greenplum cluster.
    db = Database(num_segments=4)

    # -- load a table of (x double precision[], y double precision) points ------
    rng = np.random.default_rng(42)
    independent = np.column_stack([np.ones(5000), rng.uniform(0.0, 10.0, size=5000)])
    response = 1.7 + 2.2 * independent[:, 1] + rng.normal(scale=1.0, size=5000)
    db.execute("CREATE TABLE data (x double precision[], y double precision)")
    db.load_rows("data", [(independent[i], float(response[i])) for i in range(5000)])

    # -- single-pass method: ordinary least squares (Section 4.1) ----------------
    print("psql# SELECT (linregr(y, x)).* FROM data;")
    model = linear_regression.train(db, "data", "y", "x")
    record = {
        "coef": model.coef,
        "r2": model.r2,
        "std_err": model.std_err,
        "t_stats": model.t_stats,
        "p_values": model.p_values,
        "condition_no": model.condition_no,
    }
    width = max(len(name) for name in record)
    print("-[ RECORD 1 ]+" + "-" * 44)
    for name, value in record.items():
        print(f"{name.ljust(width)} | {format_value(value)}")
    print()
    print(f"True generating model was y = 1.7 + 2.2 * x2 + noise; "
          f"fitted intercept {model.coef[0]:.3f}, slope {model.coef[1]:.3f}.")
    print()

    # -- multi-pass method: logistic regression via the IRLS driver (Section 4.2) --
    labels = (rng.uniform(size=5000) < 1.0 / (1.0 + np.exp(-(independent[:, 1] - 5.0)))).astype(float)
    db.execute("CREATE TABLE labeled (x double precision[], y double precision)")
    db.load_rows("labeled", [(independent[i], float(labels[i])) for i in range(5000)])

    print("SELECT * FROM logregr('y', 'x', 'labeled');")
    logit = logistic_regression.train(db, "labeled", "y", "x")
    print(f"coefficients : {format_value(logit.coef)}")
    print(f"odds ratios  : {format_value(logit.odds_ratios)}")
    print(f"iterations   : {logit.num_iterations} (converged={logit.converged})")
    print(f"log likelihood: {logit.log_likelihood:.2f}")

    # The per-query timing statistics the Section 4.4 experiments are built on.
    stats = db.last_stats
    if stats and stats.aggregate_timings:
        timing = stats.aggregate_timings[0]
        print()
        print(f"Last aggregate ran on {timing.num_segments} segments; "
              f"simulated parallel time {timing.simulated_parallel_seconds * 1000:.1f} ms, "
              f"speedup {timing.speedup:.1f}x over a single stream.")


if __name__ == "__main__":
    main()
