"""Statistical text analytics in the database (Section 5.2).

A miniature version of the Florida/Berkeley pipeline: a labeled corpus is
featurized, a linear-chain CRF is trained, held-out sentences are tagged with
Viterbi (most-likely labels) and with Gibbs sampling (labels plus confidence),
and the extracted NAME mentions are resolved against a canonical entity list
with trigram approximate string matching — all of the Table 3 methods in one
flow.

Run with::

    python examples/text_analytics_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import Database
from repro.datasets import make_name_variants, make_tag_corpus
from repro.text import (
    TokenFeatureExtractor,
    TrigramIndex,
    gibbs_sample,
    train_crf,
    viterbi,
    viterbi_top_k,
)


def main() -> None:
    db = Database(num_segments=2)

    # -- corpus and CRF training -------------------------------------------------
    corpus = make_tag_corpus(150, seed=3)
    train_corpus, test_corpus = corpus.split(0.8)
    extractor = TokenFeatureExtractor(
        dictionaries={"person_names": {"tim", "tebow", "smith", "jones", "miller", "jordan"}}
    )
    model = train_crf(train_corpus, extractor=extractor, num_epochs=5, seed=4)
    print(f"Trained a linear-chain CRF on {len(train_corpus)} sentences, "
          f"{len(model.feature_map)} features, {model.num_labels} labels.")

    # -- Viterbi inference --------------------------------------------------------
    correct = total = 0
    for sequence in test_corpus.sequences:
        predicted, _ = viterbi(model, sequence.tokens)
        correct += sum(p == g for p, g in zip(predicted, sequence.labels))
        total += len(sequence)
    print(f"Viterbi token accuracy on {len(test_corpus)} held-out sentences: "
          f"{correct / total:.1%}")

    sample_sentence = test_corpus.sequences[0]
    print()
    print("Example sentence:", " ".join(sample_sentence.tokens))
    best, score = viterbi(model, sample_sentence.tokens)
    print("  Viterbi labels :", best, f"(score {score:.2f})")
    for labels, alternative_score in viterbi_top_k(model, sample_sentence.tokens, k=3)[1:]:
        print("  runner-up      :", labels, f"(score {alternative_score:.2f})")

    # -- MCMC inference: labels *with confidence* ---------------------------------
    mcmc = gibbs_sample(model, sample_sentence.tokens, num_samples=300, burn_in=100, seed=5)
    print("  Gibbs MAP      :", mcmc.map_labels)
    print("  confidence     :", [round(mcmc.confidence(i), 2) for i in range(len(sample_sentence))])
    print()

    # -- entity resolution: extract NAME mentions, match approximately -------------
    db.execute("CREATE TABLE mentions (doc_id integer, text text)")
    mention_id = 0
    for sequence in test_corpus.sequences:
        labels, _ = viterbi(model, sequence.tokens)
        span = [token for token, label in zip(sequence.tokens, labels) if label == "NAME"]
        if span:
            db.load_rows("mentions", [(mention_id, " ".join(span))])
            mention_id += 1
    print(f"Extracted {mention_id} NAME mentions from the tagged sentences.")

    # Add some noisy external mentions (typos, initials) to resolve as well.
    for canonical, variant in make_name_variants(["Tim Tebow", "Peyton Manning"], seed=6):
        db.load_rows("mentions", [(mention_id, variant)])
        mention_id += 1

    index = TrigramIndex(db, "mentions")
    index.build()
    print()
    for query in ("Tim Tebow", "Peyton Manning"):
        matches = index.search(query, threshold=0.35, limit=5)
        print(f"Approximate matches for {query!r}:")
        for match in matches:
            print(f"  doc {match.document_id:3d}  sim={match.similarity:.2f}  {match.text!r}")


if __name__ == "__main__":
    main()
