"""``python -m repro.serve`` — run the TCP serving layer from the shell.

Starts a :class:`~repro.engine.serving.DatabaseServer` around a fresh
in-memory :class:`~repro.engine.database.Database`, optionally priming it
with a SQL script, and serves until interrupted.  SIGTERM and SIGINT both
trigger a *graceful drain*: the listener closes, in-flight statements
finish (bounded by ``--drain-timeout``), and the process exits 0 on a
clean drain or 1 if the deadline expired with work still running — so
process supervisors can tell an orderly shutdown from an abandoned one.
See ``docs/serving.md`` for the wire protocol and the client helper.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from .engine.database import Database
from .engine.serving import DatabaseServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve an in-memory repro database over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=5433, help="listen port (0 picks a free one)")
    parser.add_argument("--plan-cache", type=int, default=256, metavar="N",
                        help="plan cache capacity; 0 disables caching")
    parser.add_argument("--max-concurrent", type=int, default=8, metavar="N",
                        help="statements executing at once (worker threads)")
    parser.add_argument("--max-queue", type=int, default=16, metavar="N",
                        help="statements allowed to wait before BUSY shedding")
    parser.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                        help="per-statement timeout")
    parser.add_argument("--drain-timeout", type=float, default=10.0, metavar="SECONDS",
                        help="graceful-shutdown bound on finishing in-flight "
                             "statements (exit 1 if exceeded)")
    parser.add_argument("--parallel", type=int, default=0, metavar="WORKERS",
                        help="intra-query parallel worker processes (0 disables)")
    parser.add_argument("--segments", type=int, default=1, metavar="N",
                        help="engine segment count")
    parser.add_argument("--init", metavar="SCRIPT.sql", default=None,
                        help="SQL script executed before serving (one statement per ';')")
    return parser


def _run_init_script(database: Database, path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    count = 0
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            database.execute(statement)
            count += 1
    return count


async def _serve(server: DatabaseServer, drain_timeout: float) -> bool:
    """Serve until a shutdown signal; returns whether the drain completed."""
    await server.start()
    print(f"repro serving on {server.host}:{server.port} "
          f"(plan_cache={server.database.plan_cache_size}, "
          f"max_concurrent={server.max_concurrent})", flush=True)
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    installed: List[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, shutdown.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal handlers (e.g. Windows event
            # loops) fall back to KeyboardInterrupt in main().
            pass
    serve_task = asyncio.ensure_future(server.serve_forever())
    wait_task = asyncio.ensure_future(shutdown.wait())
    try:
        await asyncio.wait({serve_task, wait_task},
                           return_when=asyncio.FIRST_COMPLETED)
    finally:
        for task in (serve_task, wait_task):
            task.cancel()
        await asyncio.gather(serve_task, wait_task, return_exceptions=True)
        for sig in installed:
            loop.remove_signal_handler(sig)
    print("draining...", flush=True)
    drained = await server.stop(close_database=True, drain_timeout=drain_timeout)
    if not drained:
        print(f"drain deadline ({drain_timeout}s) exceeded with statements "
              "still running", file=sys.stderr, flush=True)
    return drained


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    database = Database(
        args.segments, parallel=args.parallel, plan_cache=args.plan_cache
    )
    if args.init:
        executed = _run_init_script(database, args.init)
        print(f"init script: {executed} statements", flush=True)
    server = DatabaseServer(
        database,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        statement_timeout=args.timeout,
        plan_cache=args.plan_cache,
    )
    try:
        drained = asyncio.run(_serve(server, args.drain_timeout))
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
        return 0
    print("shutdown complete" if drained else "shutdown incomplete", flush=True)
    return 0 if drained else 1


if __name__ == "__main__":
    sys.exit(main())
