"""``python -m repro.serve`` — run the TCP serving layer from the shell.

Starts a :class:`~repro.engine.serving.DatabaseServer` around a fresh
in-memory :class:`~repro.engine.database.Database`, optionally priming it
with a SQL script, and serves until interrupted.  See ``docs/serving.md``
for the wire protocol and the client helper.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from .engine.database import Database
from .engine.serving import DatabaseServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve an in-memory repro database over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=5433, help="listen port (0 picks a free one)")
    parser.add_argument("--plan-cache", type=int, default=256, metavar="N",
                        help="plan cache capacity; 0 disables caching")
    parser.add_argument("--max-concurrent", type=int, default=8, metavar="N",
                        help="statements executing at once (worker threads)")
    parser.add_argument("--max-queue", type=int, default=16, metavar="N",
                        help="statements allowed to wait before BUSY shedding")
    parser.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                        help="per-statement timeout")
    parser.add_argument("--parallel", type=int, default=0, metavar="WORKERS",
                        help="intra-query parallel worker processes (0 disables)")
    parser.add_argument("--segments", type=int, default=1, metavar="N",
                        help="engine segment count")
    parser.add_argument("--init", metavar="SCRIPT.sql", default=None,
                        help="SQL script executed before serving (one statement per ';')")
    return parser


def _run_init_script(database: Database, path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    count = 0
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            database.execute(statement)
            count += 1
    return count


async def _serve(server: DatabaseServer) -> None:
    await server.start()
    print(f"repro serving on {server.host}:{server.port} "
          f"(plan_cache={server.database.plan_cache_size}, "
          f"max_concurrent={server.max_concurrent})", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop(close_database=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    database = Database(
        args.segments, parallel=args.parallel, plan_cache=args.plan_cache
    )
    if args.init:
        executed = _run_init_script(database, args.init)
        print(f"init script: {executed} statements", flush=True)
    server = DatabaseServer(
        database,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        statement_timeout=args.timeout,
        plan_cache=args.plan_cache,
    )
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
