"""Support modules from Table 1: sparse vectors, array ops, matrices, conjugate gradient."""

from .array_ops import (
    array_add,
    array_div,
    array_dot,
    array_fill,
    array_max,
    array_mean,
    array_min,
    array_mult,
    array_scalar_add,
    array_scalar_mult,
    array_sqrt,
    array_stddev,
    array_sub,
    array_sum,
    cosine_similarity,
    install_array_ops,
    normalize,
    squared_dist,
)
from .conjugate_gradient import ConjugateGradientResult, conjugate_gradient, conjugate_gradient_sql
from .matrix_ops import BlockedMatrix, matrix_from_rows, row_chunks
from .sparse_vector import SparseVector

__all__ = [
    "SparseVector",
    "BlockedMatrix",
    "matrix_from_rows",
    "row_chunks",
    "ConjugateGradientResult",
    "conjugate_gradient",
    "conjugate_gradient_sql",
    "install_array_ops",
    "array_add",
    "array_sub",
    "array_mult",
    "array_div",
    "array_dot",
    "array_sum",
    "array_mean",
    "array_max",
    "array_min",
    "array_stddev",
    "array_sqrt",
    "array_fill",
    "array_scalar_add",
    "array_scalar_mult",
    "normalize",
    "squared_dist",
    "cosine_similarity",
]
