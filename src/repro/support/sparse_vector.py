"""Run-length-encoded sparse vectors.

Section 3.2: "Sparse matrices are not as well-handled by standard math
libraries ... We chose to write our own sparse matrix library in C for
MADlib, which implements a run-length encoding scheme."  Text-analytics
feature vectors (thousands of features, few non-zeros, long runs of a
repeated value — typically zero) are the motivating workload.

:class:`SparseVector` stores ``(run_value, run_length)`` pairs and implements
the vector algebra the methods need (addition, scaling, dot products, dense
round-trips) without materializing the dense form unless asked.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..errors import ValidationError

__all__ = ["SparseVector"]

Number = Union[int, float]


class SparseVector:
    """A run-length-encoded vector of doubles.

    Parameters
    ----------
    runs:
        Sequence of ``(value, count)`` pairs.  Counts must be positive.
    """

    __slots__ = ("_values", "_counts")

    def __init__(self, runs: Iterable[Tuple[Number, int]] = ()) -> None:
        values: List[float] = []
        counts: List[int] = []
        for value, count in runs:
            count = int(count)
            if count <= 0:
                raise ValidationError("run lengths must be positive")
            value = float(value)
            if values and values[-1] == value:
                counts[-1] += count
            else:
                values.append(value)
                counts.append(count)
        self._values = values
        self._counts = counts

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: Sequence[Number]) -> "SparseVector":
        """Run-length encode a dense sequence."""
        vector = cls()
        values: List[float] = []
        counts: List[int] = []
        for item in dense:
            value = float(item)
            if values and values[-1] == value:
                counts[-1] += 1
            else:
                values.append(value)
                counts.append(1)
        vector._values = values
        vector._counts = counts
        return vector

    @classmethod
    def from_pairs(cls, size: int, pairs: Iterable[Tuple[int, Number]], *, default: Number = 0.0) -> "SparseVector":
        """Build from ``(index, value)`` pairs over a vector of ``size`` defaults."""
        dense = np.full(size, float(default), dtype=np.float64)
        for index, value in pairs:
            if index < 0 or index >= size:
                raise ValidationError(f"index {index} out of range for size {size}")
            dense[index] = float(value)
        return cls.from_dense(dense)

    @classmethod
    def repeat(cls, value: Number, count: int) -> "SparseVector":
        """A vector of ``count`` copies of ``value`` stored as one run."""
        if count < 0:
            raise ValidationError("count must be non-negative")
        if count == 0:
            return cls()
        return cls([(value, count)])

    # -- basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._counts)

    @property
    def num_runs(self) -> int:
        """Number of stored runs (the compressed length)."""
        return len(self._values)

    @property
    def runs(self) -> List[Tuple[float, int]]:
        return list(zip(self._values, self._counts))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._values == other._values and self._counts == other._counts

    def __hash__(self) -> int:
        return hash((tuple(self._values), tuple(self._counts)))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SparseVector(runs={self.runs[:6]}{'...' if self.num_runs > 6 else ''})"

    def __iter__(self) -> Iterator[float]:
        for value, count in zip(self._values, self._counts):
            for _ in range(count):
                yield value

    def __getitem__(self, index: int) -> float:
        length = len(self)
        if index < 0:
            index += length
        if index < 0 or index >= length:
            raise IndexError("SparseVector index out of range")
        position = 0
        for value, count in zip(self._values, self._counts):
            position += count
            if index < position:
                return value
        raise IndexError("SparseVector index out of range")  # pragma: no cover

    # -- conversions ---------------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        if not self._values:
            return np.zeros(0, dtype=np.float64)
        return np.repeat(np.asarray(self._values, dtype=np.float64), self._counts)

    def compression_ratio(self) -> float:
        """Dense length divided by number of runs (higher is better)."""
        if self.num_runs == 0:
            return 1.0
        return len(self) / self.num_runs

    # -- run-aligned binary operation helper ------------------------------------------

    def _zip_runs(self, other: "SparseVector") -> Iterator[Tuple[float, float, int]]:
        if len(self) != len(other):
            raise ValidationError(
                f"vector size mismatch: {len(self)} vs {len(other)}"
            )
        i = j = 0
        remaining_self = self._counts[0] if self._counts else 0
        remaining_other = other._counts[0] if other._counts else 0
        while i < len(self._values) and j < len(other._values):
            step = min(remaining_self, remaining_other)
            yield self._values[i], other._values[j], step
            remaining_self -= step
            remaining_other -= step
            if remaining_self == 0:
                i += 1
                remaining_self = self._counts[i] if i < len(self._counts) else 0
            if remaining_other == 0:
                j += 1
                remaining_other = other._counts[j] if j < len(other._counts) else 0

    # -- algebra -------------------------------------------------------------------------

    def _binary(self, other: "SparseVector", op) -> "SparseVector":
        return SparseVector((op(a, b), count) for a, b, count in self._zip_runs(other))

    def __add__(self, other: "SparseVector") -> "SparseVector":
        return self._binary(other, lambda a, b: a + b)

    def __sub__(self, other: "SparseVector") -> "SparseVector":
        return self._binary(other, lambda a, b: a - b)

    def multiply(self, other: "SparseVector") -> "SparseVector":
        """Element-wise product (kept run-aligned, never densified)."""
        return self._binary(other, lambda a, b: a * b)

    def scale(self, scalar: Number) -> "SparseVector":
        scalar = float(scalar)
        return SparseVector((value * scalar, count) for value, count in self.runs)

    def dot(self, other: "SparseVector") -> float:
        return float(sum(a * b * count for a, b, count in self._zip_runs(other)))

    def norm(self, order: int = 2) -> float:
        if order == 1:
            return float(sum(abs(value) * count for value, count in self.runs))
        if order == 2:
            return float(np.sqrt(sum(value * value * count for value, count in self.runs)))
        raise ValidationError("only L1 and L2 norms are supported")

    def sum(self) -> float:
        return float(sum(value * count for value, count in self.runs))

    def count_nonzero(self) -> int:
        return sum(count for value, count in self.runs if value != 0.0)

    def concat(self, other: "SparseVector") -> "SparseVector":
        return SparseVector(self.runs + other.runs)
