"""Conjugate-gradient optimization (a Table 1 support module).

MADlib ships conjugate gradient as a reusable optimizer for methods that need
to solve symmetric positive-definite linear systems (e.g. large ridge /
least-squares problems) without materializing a matrix inverse.  Both a plain
NumPy implementation and an in-database variant (matrix rows streamed from a
table via a user-defined aggregate) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, ValidationError

__all__ = [
    "CGMatvecKernel",
    "ConjugateGradientResult",
    "conjugate_gradient",
    "conjugate_gradient_sql",
]


class CGMatvecKernel:
    """Picklable kernel for the in-database matrix-vector product aggregate.

    One instance per CG iteration, carrying that iteration's vector by value;
    the transition computes one matrix row's dot product, the merge
    concatenates the per-segment ``(row_id, value)`` lists, and the final
    sorts by row id — so the product is independent of segment order and the
    per-segment folds can run in ``Database(parallel=N)`` worker processes.
    """

    def __init__(self, vector: np.ndarray) -> None:
        self.vector = np.asarray(vector, dtype=np.float64)

    def transition(self, state, row_id, row):
        state.append((int(row_id), float(np.dot(np.asarray(row, dtype=np.float64), self.vector))))
        return state

    def merge(self, a, b):
        return a + b

    def final(self, state):
        return [value for _, value in sorted(state)]


@dataclass
class ConjugateGradientResult:
    """Solution and convergence trace of a conjugate-gradient run."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: List[float]


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tolerance: float = 1e-8,
    max_iterations: Optional[int] = None,
) -> ConjugateGradientResult:
    """Solve ``A x = rhs`` for symmetric positive-definite ``A`` given ``matvec(v) = A v``.

    Raises
    ------
    ConvergenceError
        If the iteration budget is exhausted with the residual above tolerance.
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    n = rhs.shape[0]
    if max_iterations is None:
        max_iterations = 10 * n
    x = np.zeros(n, dtype=np.float64) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    residual = rhs - matvec(x)
    direction = residual.copy()
    residual_sq = float(residual @ residual)
    history = [float(np.sqrt(residual_sq))]
    if history[-1] <= tolerance:
        return ConjugateGradientResult(x, 0, history[-1], True, history)
    for iteration in range(1, max_iterations + 1):
        a_direction = matvec(direction)
        denominator = float(direction @ a_direction)
        if denominator <= 0.0:
            raise ValidationError(
                "conjugate gradient requires a symmetric positive-definite operator"
            )
        alpha = residual_sq / denominator
        x = x + alpha * direction
        residual = residual - alpha * a_direction
        new_residual_sq = float(residual @ residual)
        history.append(float(np.sqrt(new_residual_sq)))
        if history[-1] <= tolerance:
            return ConjugateGradientResult(x, iteration, history[-1], True, history)
        direction = residual + (new_residual_sq / residual_sq) * direction
        residual_sq = new_residual_sq
    raise ConvergenceError(
        f"conjugate gradient did not converge in {max_iterations} iterations "
        f"(residual {history[-1]:.3e} > tolerance {tolerance:.3e})"
    )


def conjugate_gradient_sql(
    database,
    table: str,
    row_column: str,
    rhs: Sequence[float],
    *,
    tolerance: float = 1e-8,
    max_iterations: Optional[int] = None,
) -> ConjugateGradientResult:
    """Conjugate gradient where each matrix row lives in a table.

    The table must have the rows of the symmetric matrix ``A`` stored in
    ``row_column`` (``double precision[]``), one row per tuple, in row order
    with an ``id`` column starting at 0.  The matrix-vector product is
    computed inside the database by a user-defined aggregate, so only vectors
    of length *n* cross the driver boundary — the paper's rule that "all
    large-data movement is done within the database engine".
    """
    rows = database.query_dicts(f"SELECT id, {row_column} AS row FROM {table} ORDER BY id")
    if not rows:
        raise ValidationError(f"table {table!r} is empty")
    n = len(rows)

    def matvec(vector: np.ndarray) -> np.ndarray:
        kernel = CGMatvecKernel(vector)
        database.create_aggregate(
            "cg_matvec",
            transition=kernel.transition,
            merge=kernel.merge,
            final=kernel.final,
            initial_state=list,
        )
        result = database.query_scalar(f"SELECT cg_matvec(id, {row_column}) FROM {table}")
        return np.asarray(result, dtype=np.float64)

    return conjugate_gradient(
        matvec, np.asarray(rhs, dtype=np.float64), tolerance=tolerance, max_iterations=max_iterations
    )
