"""Array operations: the MADlib ``array_ops`` support module.

These are the element-wise and reduction primitives MADlib installs as SQL
functions so that methods can manipulate ``double precision[]`` model vectors
directly in SQL.  They are registered on a database by
:func:`install_array_ops` and are also usable as plain Python helpers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..errors import ValidationError

__all__ = [
    "array_add",
    "array_sub",
    "array_mult",
    "array_div",
    "array_scalar_mult",
    "array_scalar_add",
    "array_dot",
    "array_sum",
    "array_mean",
    "array_max",
    "array_min",
    "array_stddev",
    "array_sqrt",
    "array_filter",
    "array_fill",
    "array_of_nulls",
    "normalize",
    "squared_dist",
    "cosine_similarity",
    "install_array_ops",
]

ArrayLike = Union[Sequence[float], np.ndarray]


def _pair(left: ArrayLike, right: ArrayLike) -> tuple:
    a = np.asarray(left, dtype=np.float64)
    b = np.asarray(right, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"array shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def array_add(left: ArrayLike, right: ArrayLike) -> np.ndarray:
    a, b = _pair(left, right)
    return a + b


def array_sub(left: ArrayLike, right: ArrayLike) -> np.ndarray:
    a, b = _pair(left, right)
    return a - b


def array_mult(left: ArrayLike, right: ArrayLike) -> np.ndarray:
    a, b = _pair(left, right)
    return a * b


def array_div(left: ArrayLike, right: ArrayLike) -> np.ndarray:
    a, b = _pair(left, right)
    if np.any(b == 0):
        raise ValidationError("division by zero in array_div")
    return a / b


def array_scalar_mult(array: ArrayLike, scalar: float) -> np.ndarray:
    return np.asarray(array, dtype=np.float64) * float(scalar)


def array_scalar_add(array: ArrayLike, scalar: float) -> np.ndarray:
    return np.asarray(array, dtype=np.float64) + float(scalar)


def array_dot(left: ArrayLike, right: ArrayLike) -> float:
    a, b = _pair(left, right)
    return float(np.dot(a, b))


def array_sum(array: ArrayLike) -> float:
    return float(np.sum(np.asarray(array, dtype=np.float64)))


def array_mean(array: ArrayLike) -> float:
    values = np.asarray(array, dtype=np.float64)
    if values.size == 0:
        raise ValidationError("array_mean of an empty array")
    return float(values.mean())


def array_max(array: ArrayLike) -> float:
    values = np.asarray(array, dtype=np.float64)
    if values.size == 0:
        raise ValidationError("array_max of an empty array")
    return float(values.max())


def array_min(array: ArrayLike) -> float:
    values = np.asarray(array, dtype=np.float64)
    if values.size == 0:
        raise ValidationError("array_min of an empty array")
    return float(values.min())


def array_stddev(array: ArrayLike) -> float:
    values = np.asarray(array, dtype=np.float64)
    if values.size < 2:
        return 0.0
    return float(values.std(ddof=1))


def array_sqrt(array: ArrayLike) -> np.ndarray:
    values = np.asarray(array, dtype=np.float64)
    if np.any(values < 0):
        raise ValidationError("array_sqrt of negative values")
    return np.sqrt(values)


def array_filter(array: ArrayLike, threshold: float = 0.0) -> np.ndarray:
    """Keep entries strictly greater than ``threshold`` in absolute value."""
    values = np.asarray(array, dtype=np.float64)
    return values[np.abs(values) > threshold]


def array_fill(size: int, value: float = 0.0) -> np.ndarray:
    if size < 0:
        raise ValidationError("array_fill size must be non-negative")
    return np.full(int(size), float(value), dtype=np.float64)


def array_of_nulls(size: int) -> list:
    if size < 0:
        raise ValidationError("array_of_nulls size must be non-negative")
    return [None] * int(size)


def normalize(array: ArrayLike) -> np.ndarray:
    """L2-normalize; the zero vector is returned unchanged."""
    values = np.asarray(array, dtype=np.float64)
    norm = float(np.linalg.norm(values))
    if norm == 0.0:
        return values.copy()
    return values / norm


def squared_dist(left: ArrayLike, right: ArrayLike) -> float:
    a, b = _pair(left, right)
    diff = a - b
    return float(np.dot(diff, diff))


def cosine_similarity(left: ArrayLike, right: ArrayLike) -> float:
    a, b = _pair(left, right)
    denominator = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denominator == 0.0:
        return 0.0
    return float(np.dot(a, b) / denominator)


def install_array_ops(database) -> None:
    """Register the array-operation UDFs on a database under ``madlib_``-style names."""
    registrations = {
        "madlib_array_add": array_add,
        "madlib_array_sub": array_sub,
        "madlib_array_mult": array_mult,
        "madlib_array_div": array_div,
        "madlib_array_scalar_mult": array_scalar_mult,
        "madlib_array_scalar_add": array_scalar_add,
        "madlib_array_dot": array_dot,
        "madlib_array_sum": array_sum,
        "madlib_array_mean": array_mean,
        "madlib_array_max": array_max,
        "madlib_array_min": array_min,
        "madlib_array_stddev": array_stddev,
        "madlib_array_sqrt": array_sqrt,
        "madlib_array_fill": array_fill,
        "madlib_normalize": normalize,
        "madlib_squared_dist": squared_dist,
        "madlib_cosine_similarity": cosine_similarity,
    }
    for name, func in registrations.items():
        database.create_function(name, func)
