"""Dense/sparse matrix block operations.

Section 3.1 of the paper describes the macro-programming problem for linear
algebra as divide-and-conquer over matrix *chunks*: "the matrices must be
intelligently partitioned into chunks that can fit in memory on a single
node", keyed so SQL can orchestrate their movement.  This module provides the
chunked-matrix representation used by the SVD method and the matrix helpers
shared by several methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = ["BlockedMatrix", "matrix_from_rows", "row_chunks"]


def row_chunks(matrix: np.ndarray, chunk_rows: int) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(first_row_index, chunk)`` pieces of at most ``chunk_rows`` rows."""
    if chunk_rows < 1:
        raise ValidationError("chunk_rows must be at least 1")
    matrix = np.asarray(matrix, dtype=np.float64)
    for start in range(0, matrix.shape[0], chunk_rows):
        yield start, matrix[start:start + chunk_rows]


def matrix_from_rows(rows: Sequence[Tuple[int, np.ndarray]], num_rows: int, num_cols: int) -> np.ndarray:
    """Assemble a dense matrix from ``(row_index, row_vector)`` pairs (missing rows are zero)."""
    matrix = np.zeros((num_rows, num_cols), dtype=np.float64)
    for index, vector in rows:
        if index < 0 or index >= num_rows:
            raise ValidationError(f"row index {index} out of range")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape[0] != num_cols:
            raise ValidationError("row width mismatch")
        matrix[index] = vector
    return matrix


@dataclass
class _Block:
    row_start: int
    col_start: int
    data: np.ndarray


class BlockedMatrix:
    """A matrix partitioned into rectangular blocks keyed by their origin.

    The blocks are the "chunks" the paper's macro-programming layer keys and
    moves around with SQL.  :meth:`store` writes the blocks into a database
    table ``(row_start, col_start, block double precision[])`` (flattened
    row-major); :meth:`load` reads them back; ``multiply`` works block-wise so
    nothing larger than a block is ever materialized beyond the output.
    """

    def __init__(self, num_rows: int, num_cols: int, block_size: int = 64) -> None:
        if num_rows <= 0 or num_cols <= 0:
            raise ValidationError("matrix dimensions must be positive")
        if block_size <= 0:
            raise ValidationError("block_size must be positive")
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.block_size = block_size
        self._blocks: Dict[Tuple[int, int], np.ndarray] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_dense(cls, matrix: np.ndarray, block_size: int = 64) -> "BlockedMatrix":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValidationError("from_dense expects a 2-D matrix")
        blocked = cls(matrix.shape[0], matrix.shape[1], block_size)
        for row_start in range(0, matrix.shape[0], block_size):
            for col_start in range(0, matrix.shape[1], block_size):
                block = matrix[row_start:row_start + block_size, col_start:col_start + block_size]
                if np.any(block != 0.0):
                    blocked._blocks[(row_start, col_start)] = np.array(block, copy=True)
        return blocked

    def to_dense(self) -> np.ndarray:
        matrix = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        for (row_start, col_start), block in self._blocks.items():
            matrix[row_start:row_start + block.shape[0], col_start:col_start + block.shape[1]] = block
        return matrix

    # -- block access ---------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def blocks(self) -> Iterator[_Block]:
        for (row_start, col_start), data in sorted(self._blocks.items()):
            yield _Block(row_start, col_start, data)

    # -- algebra -----------------------------------------------------------------------

    def transpose(self) -> "BlockedMatrix":
        result = BlockedMatrix(self.num_cols, self.num_rows, self.block_size)
        for (row_start, col_start), block in self._blocks.items():
            result._blocks[(col_start, row_start)] = block.T.copy()
        return result

    def multiply_vector(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape[0] != self.num_cols:
            raise ValidationError("vector length must equal the number of columns")
        result = np.zeros(self.num_rows, dtype=np.float64)
        for (row_start, col_start), block in self._blocks.items():
            result[row_start:row_start + block.shape[0]] += block @ vector[col_start:col_start + block.shape[1]]
        return result

    def multiply(self, other: "BlockedMatrix") -> "BlockedMatrix":
        if self.num_cols != other.num_rows:
            raise ValidationError("inner matrix dimensions must agree")
        if self.block_size != other.block_size:
            raise ValidationError("block sizes must agree for block multiplication")
        result = BlockedMatrix(self.num_rows, other.num_cols, self.block_size)
        accumulator: Dict[Tuple[int, int], np.ndarray] = {}
        other_by_row: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        for (row_start, col_start), block in other._blocks.items():
            other_by_row.setdefault(row_start, []).append((col_start, block))
        for (row_start, inner_start), left_block in self._blocks.items():
            for col_start, right_block in other_by_row.get(inner_start, []):
                key = (row_start, col_start)
                product = left_block @ right_block
                if key in accumulator:
                    accumulator[key] += product
                else:
                    accumulator[key] = product
        result._blocks = accumulator
        return result

    # -- database round-trip ------------------------------------------------------------

    def store(self, database, table_name: str, *, replace: bool = True) -> None:
        """Write the blocks into a table ``(row_start, col_start, nrows, ncols, block)``."""
        database.create_table(
            table_name,
            [
                ("row_start", "integer"),
                ("col_start", "integer"),
                ("nrows", "integer"),
                ("ncols", "integer"),
                ("block", "double precision[]"),
            ],
            replace=replace,
        )
        rows = [
            (row_start, col_start, block.shape[0], block.shape[1], block.ravel())
            for (row_start, col_start), block in sorted(self._blocks.items())
        ]
        database.load_rows(table_name, rows)

    @classmethod
    def load(cls, database, table_name: str, num_rows: int, num_cols: int, block_size: int = 64) -> "BlockedMatrix":
        blocked = cls(num_rows, num_cols, block_size)
        for record in database.query_dicts(
            f"SELECT row_start, col_start, nrows, ncols, block FROM {table_name}"
        ):
            shape = (int(record["nrows"]), int(record["ncols"]))
            blocked._blocks[(int(record["row_start"]), int(record["col_start"]))] = np.asarray(
                record["block"], dtype=np.float64
            ).reshape(shape)
        return blocked
