"""repro — a reproduction of "The MADlib Analytics Library" (VLDB 2012).

The package is organised the way the paper describes the system:

* :mod:`repro.engine` — the database substrate (SQL parser, executor,
  user-defined aggregates, shared-nothing segments).
* :mod:`repro.abstraction` — the analog of MADlib's C++ abstraction layer
  (type bridging, array handles, linear-algebra integration).
* :mod:`repro.support` — support modules (sparse vectors, array operations,
  conjugate gradient).
* :mod:`repro.methods` — the Table 1 method suite (regression, classification,
  clustering, factorization, sketches, profiling, quantiles).
* :mod:`repro.convex` — the Wisconsin SGD/convex-optimization framework
  (Table 2 models).
* :mod:`repro.text` — the Florida/Berkeley statistical text analytics
  (Table 3 methods).
* :mod:`repro.driver` — macro-programming helpers: iteration controllers and
  templated-SQL generation.
* :mod:`repro.datasets` — synthetic workload generators used by examples,
  tests and the benchmark harness.
"""

from .engine import Database, connect

__version__ = "0.3.0"

__all__ = ["Database", "connect", "__version__"]
