"""The Python analog of MADlib's C++ abstraction layer (Section 3.3).

Three classes of functionality, as in the paper: *type bridging*
(:class:`AnyType`, :func:`composite`), *resource-management shims*
(:class:`ArrayHandle`, :class:`MutableArrayHandle`, :func:`allocate_array`)
and *math-library integration*
(:class:`SymmetricPositiveDefiniteEigenDecomposition` and friends), plus the
transition-state classes built on top of them.
"""

from .anytype import AnyType, composite
from .handles import ArrayHandle, MutableArrayHandle, allocate_array
from .linalg import (
    SymmetricPositiveDefiniteEigenDecomposition,
    condition_number,
    symmetrize_from_lower,
    triangular_rank_one_update,
)
from .state import LinRegrTransitionState, LogRegrIRLSState, TransitionState

__all__ = [
    "AnyType",
    "composite",
    "ArrayHandle",
    "MutableArrayHandle",
    "allocate_array",
    "SymmetricPositiveDefiniteEigenDecomposition",
    "condition_number",
    "symmetrize_from_lower",
    "triangular_rank_one_update",
    "TransitionState",
    "LinRegrTransitionState",
    "LogRegrIRLSState",
]
