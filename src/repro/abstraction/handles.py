"""Array handles: immutable vs mutable views over backend-managed arrays.

The paper stresses that the C++ abstraction layer "only pays for copies when
modifying immutable structures" (Section 6, in the rebuttal of SciDB's
claims).  :class:`ArrayHandle` is a read-only view; :class:`MutableArrayHandle`
allows in-place updates; ``copy-on-write`` happens exactly once, when a
read-only handle is promoted to a mutable one.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import FunctionError

__all__ = ["ArrayHandle", "MutableArrayHandle", "allocate_array"]


class ArrayHandle:
    """A read-only view over a ``double precision[]`` value."""

    def __init__(self, data: Union[np.ndarray, Sequence[float]]) -> None:
        array = np.asarray(data, dtype=np.float64)
        array.setflags(write=False)
        self._array = array
        self._copies = 0

    @property
    def array(self) -> np.ndarray:
        """The underlying (read-only) NumPy array."""
        return self._array

    @property
    def copies_made(self) -> int:
        """How many defensive copies this handle has paid for (testing hook)."""
        return self._copies

    def __len__(self) -> int:
        return int(self._array.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self._array.tolist())

    def __getitem__(self, index) -> Any:
        return self._array[index]

    def to_mutable(self) -> "MutableArrayHandle":
        """Promote to a mutable handle; this is the single place a copy happens."""
        self._copies += 1
        return MutableArrayHandle(np.array(self._array, dtype=np.float64, copy=True))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArrayHandle(size={self._array.size})"


class MutableArrayHandle(ArrayHandle):
    """A writable view; mutations happen in place, with no further copies."""

    def __init__(self, data: Union[np.ndarray, Sequence[float]]) -> None:
        array = np.asarray(data, dtype=np.float64)
        if not array.flags.writeable:
            array = np.array(array, dtype=np.float64, copy=True)
        self._array = array
        self._copies = 0

    @property
    def array(self) -> np.ndarray:
        return self._array

    def __setitem__(self, index, value) -> None:
        self._array[index] = value

    def fill(self, value: float) -> None:
        self._array.fill(value)

    def to_mutable(self) -> "MutableArrayHandle":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MutableArrayHandle(size={self._array.size})"


def allocate_array(size: int, *, fill: float = 0.0) -> MutableArrayHandle:
    """Backend array allocation (Listing 2's ``allocateArray<double>``)."""
    if size < 0:
        raise FunctionError("cannot allocate a negative-sized array")
    return MutableArrayHandle(np.full(int(size), fill, dtype=np.float64))
