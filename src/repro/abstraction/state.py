"""Transition-state classes shared by the aggregate-based methods.

MADlib stores aggregate transition states as flat double-precision arrays so
that states can be shipped between segments and stored in tables; the C++
layer then wraps those arrays in typed views (``LinRegrTransitionState`` in
Listing 1).  We keep the same discipline: every state class can serialize to
and from a flat NumPy vector, which is what makes states storable in the
engine's ``double precision[]`` columns and mergeable across segments.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Type, TypeVar

import numpy as np

from ..errors import FunctionError

__all__ = ["TransitionState", "LinRegrTransitionState", "LogRegrIRLSState"]

S = TypeVar("S", bound="TransitionState")


class TransitionState:
    """Base class: a state that can round-trip through a flat double array."""

    def to_array(self) -> np.ndarray:
        raise NotImplementedError

    @classmethod
    def from_array(cls: Type[S], array: np.ndarray) -> S:
        raise NotImplementedError

    def merge(self: S, other: S) -> S:
        raise NotImplementedError


class LinRegrTransitionState(TransitionState):
    """State for ordinary-least-squares linear regression (Section 4.1).

    Holds the running sums the single-pass aggregate needs:
    ``n``, ``sum(y)``, ``sum(y^2)``, ``X^T y`` and the lower triangle of
    ``X^T X``.
    """

    def __init__(self, width: int = 0) -> None:
        self.num_rows = 0
        self.width_of_x = width
        self.y_sum = 0.0
        self.y_square_sum = 0.0
        self.x_transp_y = np.zeros(width, dtype=np.float64)
        self.x_transp_x = np.zeros((width, width), dtype=np.float64)

    def initialize(self, width: int) -> None:
        """Size the state from the first row (Listing 1 lines 16-19)."""
        self.width_of_x = width
        self.x_transp_y = np.zeros(width, dtype=np.float64)
        self.x_transp_x = np.zeros((width, width), dtype=np.float64)

    @property
    def is_initialized(self) -> bool:
        return self.width_of_x > 0

    def merge(self, other: "LinRegrTransitionState") -> "LinRegrTransitionState":
        if not other.is_initialized or other.num_rows == 0:
            return self
        if not self.is_initialized or self.num_rows == 0:
            return other
        if self.width_of_x != other.width_of_x:
            raise FunctionError(
                "cannot merge linear-regression states with different widths "
                f"({self.width_of_x} vs {other.width_of_x})"
            )
        merged = LinRegrTransitionState(self.width_of_x)
        merged.num_rows = self.num_rows + other.num_rows
        merged.y_sum = self.y_sum + other.y_sum
        merged.y_square_sum = self.y_square_sum + other.y_square_sum
        merged.x_transp_y = self.x_transp_y + other.x_transp_y
        merged.x_transp_x = self.x_transp_x + other.x_transp_x
        return merged

    def to_array(self) -> np.ndarray:
        width = self.width_of_x
        header = np.array(
            [float(self.num_rows), float(width), self.y_sum, self.y_square_sum], dtype=np.float64
        )
        return np.concatenate([header, self.x_transp_y, self.x_transp_x.ravel()])

    @classmethod
    def from_array(cls, array: np.ndarray) -> "LinRegrTransitionState":
        array = np.asarray(array, dtype=np.float64)
        if array.size < 4:
            raise FunctionError("linear-regression state array is too short")
        width = int(array[1])
        expected = 4 + width + width * width
        if array.size != expected:
            raise FunctionError(
                f"linear-regression state array has size {array.size}, expected {expected}"
            )
        state = cls(width)
        state.num_rows = int(array[0])
        state.y_sum = float(array[2])
        state.y_square_sum = float(array[3])
        state.x_transp_y = array[4:4 + width].copy()
        state.x_transp_x = array[4 + width:].reshape(width, width).copy()
        return state


class LogRegrIRLSState(TransitionState):
    """Per-iteration state for logistic regression via IRLS (Section 4.2).

    One iteration of iteratively-reweighted least squares accumulates the
    weighted normal equations ``X^T D X`` and ``X^T D z`` plus the
    log-likelihood used for the convergence test.
    """

    def __init__(self, width: int = 0, coef: Optional[np.ndarray] = None) -> None:
        self.num_rows = 0
        self.width_of_x = width
        self.coef = np.zeros(width, dtype=np.float64) if coef is None else np.asarray(coef, float)
        self.x_trans_d_x = np.zeros((width, width), dtype=np.float64)
        self.x_trans_d_z = np.zeros(width, dtype=np.float64)
        self.log_likelihood = 0.0

    def initialize(self, width: int, coef: Optional[np.ndarray] = None) -> None:
        self.width_of_x = width
        self.coef = np.zeros(width, dtype=np.float64) if coef is None else np.asarray(coef, float)
        self.x_trans_d_x = np.zeros((width, width), dtype=np.float64)
        self.x_trans_d_z = np.zeros(width, dtype=np.float64)

    @property
    def is_initialized(self) -> bool:
        return self.width_of_x > 0

    def merge(self, other: "LogRegrIRLSState") -> "LogRegrIRLSState":
        if not other.is_initialized or other.num_rows == 0:
            return self
        if not self.is_initialized or self.num_rows == 0:
            return other
        if self.width_of_x != other.width_of_x:
            raise FunctionError("cannot merge IRLS states with different widths")
        merged = LogRegrIRLSState(self.width_of_x, self.coef)
        merged.num_rows = self.num_rows + other.num_rows
        merged.x_trans_d_x = self.x_trans_d_x + other.x_trans_d_x
        merged.x_trans_d_z = self.x_trans_d_z + other.x_trans_d_z
        merged.log_likelihood = self.log_likelihood + other.log_likelihood
        return merged

    def to_array(self) -> np.ndarray:
        width = self.width_of_x
        header = np.array([float(self.num_rows), float(width), self.log_likelihood], dtype=np.float64)
        return np.concatenate(
            [header, self.coef, self.x_trans_d_z, self.x_trans_d_x.ravel()]
        )

    @classmethod
    def from_array(cls, array: np.ndarray) -> "LogRegrIRLSState":
        array = np.asarray(array, dtype=np.float64)
        if array.size < 3:
            raise FunctionError("IRLS state array is too short")
        width = int(array[1])
        expected = 3 + 2 * width + width * width
        if array.size != expected:
            raise FunctionError(f"IRLS state array has size {array.size}, expected {expected}")
        state = cls(width)
        state.num_rows = int(array[0])
        state.log_likelihood = float(array[2])
        state.coef = array[3:3 + width].copy()
        state.x_trans_d_z = array[3 + width:3 + 2 * width].copy()
        state.x_trans_d_x = array[3 + 2 * width:].reshape(width, width).copy()
        return state
