"""Linear-algebra integration: the Eigen role in the abstraction layer.

MADlib v0.3's linear-regression final function uses a
``SymmetricPositiveDefiniteEigenDecomposition`` wrapper around Eigen to get a
pseudo-inverse and a condition number (Listing 2).  This module provides the
same wrapper backed by NumPy/SciPy, plus the triangular-update helper that the
transition function uses to exploit the symmetry of ``X^T X`` — the
optimization the paper credits for much of the v0.2.1beta → v0.3 speedup
(Section 4.4).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import SingularMatrixError

__all__ = [
    "SymmetricPositiveDefiniteEigenDecomposition",
    "triangular_rank_one_update",
    "symmetrize_from_lower",
    "condition_number",
]


def triangular_rank_one_update(matrix: np.ndarray, vector: np.ndarray, weight: float = 1.0) -> None:
    """In-place ``matrix += weight * vector vector^T`` touching only the lower triangle.

    This mirrors Listing 1's
    ``triangularView<Lower>(state.X_transp_X) += x * trans(x)``: because
    ``X^T X`` is symmetric, only ``d(d+1)/2`` entries need to be maintained
    during the scan, and the full matrix is reconstituted once at finalization.
    """
    d = vector.shape[0]
    # Row-wise lower-triangle update: row i gets vector[i] * vector[:i+1].
    for i in range(d):
        matrix[i, : i + 1] += weight * vector[i] * vector[: i + 1]


def symmetrize_from_lower(matrix: np.ndarray) -> np.ndarray:
    """Reconstruct a full symmetric matrix from its lower triangle."""
    lower = np.tril(matrix)
    return lower + lower.T - np.diag(np.diag(lower))


def condition_number(eigenvalues: np.ndarray) -> float:
    """Ratio of the largest to the smallest (non-trivial) eigenvalue magnitude."""
    magnitudes = np.abs(eigenvalues)
    largest = float(magnitudes.max(initial=0.0))
    smallest = float(magnitudes.min(initial=0.0))
    if smallest == 0.0:
        return float("inf")
    return largest / smallest


class SymmetricPositiveDefiniteEigenDecomposition:
    """Eigendecomposition of a symmetric (ideally positive-definite) matrix.

    Provides the two services Listing 2 uses: ``pseudo_inverse()`` and
    ``condition_no()``.  Eigenvalues below ``rcond * max(eigenvalue)`` are
    treated as zero, so rank-deficient inputs (collinear regressors) yield the
    Moore–Penrose pseudo-inverse rather than an error — the paper notes that
    the full-rank assumption "is not a requirement for MADlib".
    """

    def __init__(self, matrix: np.ndarray, *, rcond: float = 1e-10) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise SingularMatrixError("eigendecomposition requires a square matrix")
        # Guard against an asymmetric lower-triangle-only input.
        if not np.allclose(matrix, matrix.T, rtol=1e-8, atol=1e-12):
            matrix = symmetrize_from_lower(matrix)
        self._matrix = matrix
        self._rcond = rcond
        self._eigenvalues, self._eigenvectors = np.linalg.eigh(matrix)

    @property
    def eigenvalues(self) -> np.ndarray:
        return self._eigenvalues

    def condition_no(self) -> float:
        """Condition number of the input matrix (infinite when effectively singular)."""
        if self._eigenvalues.size == 0:
            return float("inf")
        largest = float(np.abs(self._eigenvalues).max())
        smallest = float(self._eigenvalues.min())
        cutoff = self._rcond * max(largest, 1.0)
        if smallest <= cutoff:
            return float("inf")
        return largest / smallest

    def pseudo_inverse(self) -> np.ndarray:
        """Moore–Penrose pseudo-inverse computed from the eigendecomposition."""
        eigenvalues = self._eigenvalues
        cutoff = self._rcond * max(float(np.abs(eigenvalues).max(initial=0.0)), 1.0)
        keep = np.abs(eigenvalues) > cutoff
        inverted = np.zeros_like(eigenvalues)
        np.divide(1.0, eigenvalues, out=inverted, where=keep)
        return (self._eigenvectors * inverted) @ self._eigenvectors.T

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` in the least-squares sense via the pseudo-inverse."""
        return self.pseudo_inverse() @ np.asarray(rhs, dtype=np.float64)

    def is_positive_definite(self, *, tolerance: float = 0.0) -> bool:
        return bool(np.all(self._eigenvalues > tolerance))
