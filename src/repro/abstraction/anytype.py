"""``AnyType``: the value-bridging type of MADlib's C++ abstraction layer.

Listings 1 and 2 in the paper show UDFs receiving an ``AnyType& args``
parameter and indexing it (``args[0]``, ``args[1].getAs<double>()``,
``args[2].getAs<MappedColumnVector>()``), then returning either a single value
or a composite built with ``tuple << coef << conditionNo``.  This module
reproduces that interface so the method implementations read like the paper's
listings while running on the Python engine.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Type, Union

import numpy as np

from ..errors import FunctionError, TypeMismatchError

__all__ = ["AnyType", "composite"]


_CASTS: Dict[type, Callable[[Any], Any]] = {
    float: float,
    int: int,
    bool: bool,
    str: str,
}


class AnyType:
    """A positional bundle of argument values with typed accessors.

    ``AnyType`` wraps either a sequence of values (an argument pack) or a
    single value.  ``args[i]`` returns an ``AnyType`` wrapping the i-th value;
    ``get_as(float)`` / ``get_as(np.ndarray)`` performs the type bridging the
    C++ layer does with ``getAs<T>()``.
    """

    def __init__(self, value: Any = None, *, is_composite: bool = False) -> None:
        self._value = value
        self._is_composite = is_composite or isinstance(value, (list, tuple))

    # -- construction ---------------------------------------------------------

    @classmethod
    def args(cls, *values: Any) -> "AnyType":
        """Build an argument pack (what the engine passes to a UDF)."""
        return cls(list(values), is_composite=True)

    # -- indexing -------------------------------------------------------------

    def __len__(self) -> int:
        if not self._is_composite:
            return 1
        return len(self._value)

    def __getitem__(self, index: int) -> "AnyType":
        if not self._is_composite:
            raise FunctionError("cannot index a scalar AnyType")
        try:
            return AnyType(self._value[index])
        except IndexError:
            raise FunctionError(
                f"argument {index} requested but only {len(self._value)} provided"
            ) from None

    def __iter__(self) -> Iterator["AnyType"]:
        for i in range(len(self)):
            yield self[i]

    # -- value access ----------------------------------------------------------

    @property
    def value(self) -> Any:
        return self._value

    def is_null(self) -> bool:
        return self._value is None

    def get_as(self, target: Union[type, str]) -> Any:
        """Bridge the wrapped value to ``target`` (``float``, ``int``, ``bool``,
        ``str``, ``np.ndarray`` or the string aliases used in the paper's
        listings: ``"double"``, ``"MappedColumnVector"``, ``"Matrix"``)."""
        value = self._value
        if value is None:
            return None
        if isinstance(target, str):
            alias = target.lower()
            if alias in ("double", "float", "float8"):
                target = float
            elif alias in ("int", "integer", "bigint"):
                target = int
            elif alias in ("bool", "boolean"):
                target = bool
            elif alias in ("text", "str", "string"):
                target = str
            elif alias in ("mappedcolumnvector", "columnvector", "vector", "array"):
                target = np.ndarray
            elif alias in ("matrix", "mappedmatrix"):
                return np.atleast_2d(np.asarray(value, dtype=np.float64))
            else:
                raise TypeMismatchError(f"unknown getAs target {target!r}")
        if target is np.ndarray:
            return np.asarray(value, dtype=np.float64)
        if target in _CASTS:
            try:
                return _CASTS[target](value)
            except (TypeError, ValueError) as exc:
                raise TypeMismatchError(f"cannot bridge {value!r} to {target.__name__}") from exc
        if isinstance(value, target):
            return value
        raise TypeMismatchError(f"cannot bridge {type(value).__name__} to {target}")

    # -- composite building (the ``tuple << x << y`` idiom) ----------------------

    def __lshift__(self, value: Any) -> "AnyType":
        """Append a field to a composite return value (Listing 2's ``tuple << coef``)."""
        if self._value is None and not self._is_composite:
            return AnyType([value], is_composite=True)
        if not self._is_composite:
            return AnyType([self._value, value], is_composite=True)
        return AnyType(list(self._value) + [value], is_composite=True)

    def to_python(self) -> Any:
        """Unwrap to a plain Python value (lists stay lists for composites)."""
        if self._is_composite:
            return list(self._value)
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AnyType({self._value!r})"


def composite(**fields: Any) -> Dict[str, Any]:
    """Build a named composite value (PostgreSQL composite/record type analog).

    The linear-regression UDA's final function returns a record with ``coef``,
    ``r2``, ``std_err``, ``t_stats``, ``p_values`` and ``condition_no`` fields;
    in this reproduction such records are plain dictionaries.
    """
    return dict(fields)
