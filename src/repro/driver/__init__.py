"""Macro-programming helpers: driver iteration and templated SQL (Section 3.1)."""

from .iteration import IterationController, IterationTrace
from .templating import (
    QueryTemplate,
    is_valid_identifier,
    quote_identifier,
    quote_literal,
    validate_column_type,
    validate_columns_exist,
    validate_identifier,
    validate_table_absent,
    validate_table_exists,
)

__all__ = [
    "IterationController",
    "IterationTrace",
    "QueryTemplate",
    "quote_identifier",
    "quote_literal",
    "is_valid_identifier",
    "validate_identifier",
    "validate_table_exists",
    "validate_table_absent",
    "validate_columns_exist",
    "validate_column_type",
]
