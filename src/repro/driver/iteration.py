"""Driver-function iteration with temp-table state (Figure 3 of the paper).

The paper's pattern for multipass iterative algorithms (Section 3.1.2): a
Python driver UDF

1. creates a temporary table for inter-iteration states,
2. repeatedly runs generated SQL that computes the next state (one
   user-defined-aggregate pass over the data per iteration) and appends it to
   the temp table, and
3. checks a convergence predicate, finally converting the last state into the
   return value —

with "no data movement between the driver function and the database engine":
only the (small) model state crosses the boundary.

:class:`IterationController` packages that pattern for the iterative methods
in this library (logistic regression, k-means, SVM, LDA, SGD, ...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ConvergenceError, ValidationError

__all__ = ["IterationController", "IterationTrace"]


@dataclass
class IterationTrace:
    """Record of one driver iteration (used for overhead accounting)."""

    iteration: int
    seconds: float
    state_summary: Optional[float] = None
    #: True when the iteration's aggregate pass ran on the worker pool —
    #: with picklable UDA kernels (IGD, k-means) this is per-iteration
    #: parallel model averaging; False means the in-process fold served it.
    executed_parallel: bool = False


class IterationController:
    """Runs the CREATE TEMP TABLE / INSERT ... SELECT / converged? loop.

    Parameters
    ----------
    database:
        The engine the generated SQL runs against.
    initial_state:
        State stored for iteration 0.
    max_iterations:
        Hard iteration budget; exceeding it raises :class:`ConvergenceError`
        unless ``fail_on_max_iterations=False``.
    temp_prefix:
        Prefix for the inter-iteration state table name.
    keep_state_table:
        Keep the temp table after completion (useful for debugging and the
        ablation benchmarks); by default it is dropped.
    """

    def __init__(
        self,
        database,
        *,
        initial_state: Any = None,
        max_iterations: int = 100,
        temp_prefix: str = "madlib_iterative",
        fail_on_max_iterations: bool = True,
        keep_state_table: bool = False,
    ) -> None:
        if max_iterations < 1:
            raise ValidationError("max_iterations must be at least 1")
        self.database = database
        self.max_iterations = max_iterations
        self.fail_on_max_iterations = fail_on_max_iterations
        self.keep_state_table = keep_state_table
        self.state_table = database.unique_temp_name(temp_prefix)
        self.iteration = 0
        self.traces: List[IterationTrace] = []
        self._finished = False
        # Warm the parallel worker pool (if the database has one) before the
        # first timed iteration: iterative methods reuse one persistent pool
        # across all their aggregate passes instead of respawning processes,
        # and the spawn cost never lands inside an IterationTrace.
        warm = getattr(database, "ensure_parallel_workers", None)
        if callable(warm):
            warm()
        # CREATE TEMPORARY TABLE iterative_algorithm AS SELECT 0 AS iteration, NULL AS state
        database.create_table(
            self.state_table,
            [("iteration", "integer"), ("state", "any")],
            temporary=True,
        )
        database.load_rows(self.state_table, [(0, initial_state)])

    # -- state access --------------------------------------------------------------

    @property
    def state(self) -> Any:
        """The most recent inter-iteration state."""
        return self.database.query_scalar(
            f"SELECT state FROM {self.state_table} WHERE iteration = %(it)s",
            {"it": self.iteration},
        )

    def state_at(self, iteration: int) -> Any:
        return self.database.query_scalar(
            f"SELECT state FROM {self.state_table} WHERE iteration = %(it)s",
            {"it": iteration},
        )

    def history(self) -> List[Any]:
        """All stored states in iteration order."""
        result = self.database.execute(
            f"SELECT state FROM {self.state_table} ORDER BY iteration"
        )
        return [row[0] for row in result.rows]

    # -- iteration ----------------------------------------------------------------------

    def update(self, sql: str, parameters: Optional[Dict[str, Any]] = None) -> Any:
        """Run one iteration.

        ``sql`` must be a SELECT producing exactly one value: the new state.
        It may reference the bind parameters ``%(previous_state)s`` and
        ``%(iteration)s`` in addition to anything in ``parameters``, and the
        literal placeholder ``{state_table}`` for joining against the state
        table directly (the exact shape used in Figure 3).
        """
        if self._finished:
            raise ValidationError("iteration controller already finished")
        bound = dict(parameters or {})
        bound.setdefault("previous_state", self.state)
        bound.setdefault("iteration", self.iteration)
        rendered = sql.replace("{state_table}", self.state_table)
        start = time.perf_counter()
        result = self.database.execute(rendered, bound)
        new_state = result.scalar()
        elapsed = time.perf_counter() - start
        self.iteration += 1
        self.database.execute(
            f"INSERT INTO {self.state_table} (iteration, state) VALUES (%(it)s, %(state)s)",
            {"it": self.iteration, "state": new_state},
        )
        executed_parallel = bool(result.stats is not None and result.stats.executed_parallel)
        self.traces.append(
            IterationTrace(self.iteration, elapsed, executed_parallel=executed_parallel)
        )
        return new_state

    def run(
        self,
        update_sql: str,
        *,
        converged: Callable[[Any, Any], bool],
        parameters: Optional[Dict[str, Any]] = None,
        min_iterations: int = 1,
    ) -> Any:
        """Iterate ``update_sql`` until ``converged(previous, current)`` or the budget runs out."""
        previous = self.state
        for _ in range(self.max_iterations):
            current = self.update(update_sql, parameters)
            if self.iteration >= min_iterations and converged(previous, current):
                return self.finish()
            previous = current
        if self.fail_on_max_iterations:
            self.cleanup()
            raise ConvergenceError(
                f"did not converge within {self.max_iterations} iterations"
            )
        return self.finish()

    # -- lifecycle -------------------------------------------------------------------------

    def finish(self) -> Any:
        """Return the final state and drop the temp table (unless kept)."""
        final_state = self.state
        self._finished = True
        self.cleanup()
        return final_state

    def cleanup(self) -> None:
        if not self.keep_state_table:
            self.database.drop_table(self.state_table, if_exists=True)

    def __enter__(self) -> "IterationController":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cleanup()

    # -- accounting -----------------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(trace.seconds for trace in self.traces)

    @property
    def per_iteration_seconds(self) -> List[float]:
        return [trace.seconds for trace in self.traces]
