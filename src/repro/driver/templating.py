"""Templated SQL: catalog-driven query synthesis with up-front validation.

Section 3.1.3 of the paper: driver UDFs "interrogate the database catalog for
details of input tables, and then synthesize customized SQL queries based on
templates".  Because the backend only discovers syntax errors when the
generated SQL runs — "often leading to error messages that are enigmatic to
the user" — MADlib validates identifiers before templating.  This module is
the "Python library that ships with MADlib and provides useful programmer
APIs and user feedback" the paper says it plans to provide.
"""

from __future__ import annotations

import re
import string
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ValidationError

__all__ = [
    "quote_identifier",
    "quote_literal",
    "is_valid_identifier",
    "validate_identifier",
    "validate_table_exists",
    "validate_table_absent",
    "validate_columns_exist",
    "validate_column_type",
    "QueryTemplate",
]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def is_valid_identifier(name: str) -> bool:
    """Whether ``name`` is a plain SQL identifier (no quoting required)."""
    return bool(isinstance(name, str) and _IDENTIFIER_RE.match(name))


def validate_identifier(name: str, *, what: str = "identifier") -> str:
    """Return ``name`` if it is a safe identifier; raise :class:`ValidationError` otherwise."""
    if not is_valid_identifier(name):
        raise ValidationError(f"invalid {what}: {name!r}")
    return name


def quote_identifier(name: str) -> str:
    """Quote an identifier for inclusion in generated SQL."""
    validate_identifier(name)
    return name


def quote_literal(value: Any) -> str:
    """Render a Python value as a SQL literal (strings are escaped)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise ValidationError(f"cannot render {type(value).__name__} as a SQL literal")


def validate_table_exists(database, table_name: str) -> None:
    validate_identifier(table_name, what="table name")
    if not database.has_table(table_name):
        raise ValidationError(f"source table {table_name!r} does not exist")


def validate_table_absent(database, table_name: str) -> None:
    validate_identifier(table_name, what="table name")
    if database.has_table(table_name):
        raise ValidationError(f"output table {table_name!r} already exists")


def validate_columns_exist(database, table_name: str, columns: Iterable[str]) -> None:
    validate_table_exists(database, table_name)
    schema = database.catalog.table_schema(table_name)
    for column in columns:
        validate_identifier(column, what="column name")
        if not schema.has_column(column):
            raise ValidationError(
                f"column {column!r} does not exist in table {table_name!r} "
                f"(available: {', '.join(schema.names)})"
            )


def validate_column_type(database, table_name: str, column: str, *, expect_array: Optional[bool] = None,
                         expect_numeric: Optional[bool] = None) -> None:
    validate_columns_exist(database, table_name, [column])
    sql_type = database.catalog.table_schema(table_name).type_of(column)
    if expect_array is not None and sql_type.is_array != expect_array:
        expected = "an array" if expect_array else "a scalar"
        raise ValidationError(f"column {column!r} of {table_name!r} must be {expected}, is {sql_type}")
    if expect_numeric and not (sql_type.is_numeric or sql_type.is_array or sql_type.name == "any"):
        raise ValidationError(f"column {column!r} of {table_name!r} must be numeric, is {sql_type}")


class QueryTemplate:
    """A SQL template whose ``{placeholders}`` are identifiers, validated on render.

    Only identifier-shaped values may be substituted; data values must be
    passed as bind parameters instead.  This separation (identifiers templated
    and validated, values bound) is the error-handling discipline the paper
    calls for.
    """

    def __init__(self, template: str) -> None:
        self.template = template
        self.placeholders = self._find_placeholders(template)

    @staticmethod
    def _find_placeholders(template: str) -> List[str]:
        formatter = string.Formatter()
        names = []
        for _, field_name, _, _ in formatter.parse(template):
            if field_name:
                names.append(field_name)
        return names

    def render(self, **identifiers: str) -> str:
        missing = [name for name in self.placeholders if name not in identifiers]
        if missing:
            raise ValidationError(f"missing template identifiers: {', '.join(missing)}")
        for name, value in identifiers.items():
            if name not in self.placeholders:
                raise ValidationError(f"unknown template identifier {name!r}")
            # Allow dotted and comma-separated identifier lists (column lists).
            parts = re.split(r"[,\s.]+", str(value).strip())
            for part in parts:
                if part:
                    validate_identifier(part, what=f"substitution for {name!r}")
        return self.template.format(**identifiers)
