"""Exception hierarchy shared by the engine and the analytics library.

The original MADlib code distinguishes between errors raised by the database
backend (syntax errors, catalog lookups, type mismatches) and errors raised by
the analytics methods themselves (bad hyper-parameters, non-converging
solvers, ill-conditioned inputs).  We keep the same split so that driver code
can catch engine errors separately from method errors, which mirrors how the
paper's Python driver UDFs perform "additional validation and error handling
up front" (Section 3.1.3).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Engine-side errors (the "DBMS backend" in the paper's terminology)
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for errors raised by the SQL engine substrate."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CatalogError(EngineError):
    """A table, column, function or aggregate was not found (or already exists)."""


class TypeMismatchError(EngineError):
    """A value could not be coerced to the declared SQL type."""


class ExecutionError(EngineError):
    """A runtime failure while executing a query plan."""


class FunctionError(EngineError):
    """A user-defined function or aggregate raised or was misused."""


# ---------------------------------------------------------------------------
# Library-side errors (the analytics methods)
# ---------------------------------------------------------------------------


class MethodError(ReproError):
    """Base class for errors raised by analytics methods."""


class ValidationError(MethodError):
    """User-supplied arguments failed up-front validation.

    Templated SQL only surfaces syntax errors when the generated query runs,
    which the paper calls out as a usability hazard; methods therefore
    validate table and column names against the catalog before generating
    SQL, and raise this error with a human-readable message instead.
    """


class ConvergenceError(MethodError):
    """An iterative method exhausted its iteration budget without converging."""


class SingularMatrixError(MethodError):
    """A matrix required to be (pseudo-)invertible was effectively singular."""
