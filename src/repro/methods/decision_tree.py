"""Decision trees (C4.5) — Table 1, supervised learning.

MADlib's decision-tree module grows the tree level by level: at each node the
class histograms needed to score candidate splits are computed by grouped SQL
aggregation over the node's partition of the data, and only the (small) split
statistics come back to the driver.  This implementation follows that
discipline: every split evaluation is a ``GROUP BY`` query; the driver holds
only node metadata, never the data.

C4.5 specifics implemented: information-gain-ratio split scoring, categorical
multi-way splits, numeric binary splits on midpoints, a minimum-rows-per-node
stopping rule, and optional pessimistic-error pruning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..driver import quote_literal, validate_columns_exist, validate_table_exists
from ..errors import ValidationError

__all__ = ["TreeNode", "DecisionTreeModel", "train", "FeatureSpec"]


@dataclass
class FeatureSpec:
    """Declares one input feature: its column and whether it is categorical."""

    column: str
    categorical: bool = False


@dataclass
class TreeNode:
    """A node of the fitted tree."""

    prediction: object
    num_rows: int
    class_counts: Dict[object, int]
    depth: int
    split_feature: Optional[str] = None
    split_categorical: bool = False
    split_threshold: Optional[float] = None
    #: For categorical splits: value -> child; for numeric: {"le": child, "gt": child}.
    children: Dict[object, "TreeNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children.values())

    def depth_below(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(child.depth_below() for child in self.children.values())


@dataclass
class DecisionTreeModel:
    """A fitted C4.5 tree plus the feature declarations used to grow it."""

    root: TreeNode
    features: List[FeatureSpec]
    class_column: str

    def predict_one(self, row: Dict[str, object]) -> object:
        node = self.root
        while not node.is_leaf:
            value = row.get(node.split_feature)
            if node.split_categorical:
                child = node.children.get(value)
                if child is None:
                    return node.prediction
                node = child
            else:
                if value is None:
                    return node.prediction
                key = "le" if float(value) <= node.split_threshold else "gt"
                node = node.children[key]
        return node.prediction

    def predict(self, rows: Sequence[Dict[str, object]]) -> List[object]:
        return [self.predict_one(row) for row in rows]

    def num_nodes(self) -> int:
        return self.root.node_count()

    def depth(self) -> int:
        return self.root.depth_below()


# ---------------------------------------------------------------------------
# Split scoring (entropy / gain ratio)
# ---------------------------------------------------------------------------


def _entropy(counts: Sequence[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            result -= p * math.log2(p)
    return result


def _gain_ratio(parent_counts: Dict[object, int], partitions: List[Dict[object, int]]) -> float:
    total = sum(parent_counts.values())
    if total == 0:
        return 0.0
    parent_entropy = _entropy(list(parent_counts.values()))
    weighted_entropy = 0.0
    split_info = 0.0
    for partition in partitions:
        size = sum(partition.values())
        if size == 0:
            continue
        weight = size / total
        weighted_entropy += weight * _entropy(list(partition.values()))
        split_info -= weight * math.log2(weight)
    gain = parent_entropy - weighted_entropy
    if split_info <= 1e-12:
        return 0.0
    return gain / split_info


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------


def _class_histogram(database, table: str, class_column: str, predicate: str) -> Dict[object, int]:
    where = f"WHERE {predicate}" if predicate else ""
    rows = database.query_dicts(
        f"SELECT {class_column} AS class, count(*) AS n FROM {table} {where} GROUP BY {class_column}"
    )
    return {row["class"]: int(row["n"]) for row in rows}


def _categorical_partitions(
    database, table: str, class_column: str, feature: str, predicate: str
) -> Dict[object, Dict[object, int]]:
    where = f"WHERE {predicate}" if predicate else ""
    rows = database.query_dicts(
        f"SELECT {feature} AS value, {class_column} AS class, count(*) AS n "
        f"FROM {table} {where} GROUP BY {feature}, {class_column}"
    )
    partitions: Dict[object, Dict[object, int]] = {}
    for row in rows:
        partitions.setdefault(row["value"], {})[row["class"]] = int(row["n"])
    return partitions


def _numeric_candidates(database, table: str, feature: str, predicate: str, max_candidates: int) -> List[float]:
    where = f"WHERE {predicate}" if predicate else ""
    values = [
        float(row["value"])
        for row in database.query_dicts(
            f"SELECT DISTINCT {feature} AS value FROM {table} {where} ORDER BY {feature}"
        )
        if row["value"] is not None
    ]
    if len(values) < 2:
        return []
    midpoints = [(a + b) / 2.0 for a, b in zip(values, values[1:])]
    if len(midpoints) > max_candidates:
        step = len(midpoints) / max_candidates
        midpoints = [midpoints[int(i * step)] for i in range(max_candidates)]
    return midpoints


def _numeric_partitions(
    database, table: str, class_column: str, feature: str, threshold: float, predicate: str
) -> List[Dict[object, int]]:
    base = f"{predicate} AND " if predicate else ""
    left = _class_histogram(database, table, class_column, f"{base}{feature} <= {threshold!r}")
    right = _class_histogram(database, table, class_column, f"{base}{feature} > {threshold!r}")
    return [left, right]


def _predicate_for(feature: FeatureSpec, value, threshold: Optional[float], side: Optional[str]) -> str:
    if feature.categorical:
        return f"{feature.column} = {quote_literal(value)}"
    operator = "<=" if side == "le" else ">"
    return f"{feature.column} {operator} {threshold!r}"


def train(
    database,
    source_table: str,
    class_column: str,
    features: Sequence[Union[FeatureSpec, str]],
    *,
    max_depth: int = 6,
    min_split_rows: int = 4,
    min_gain_ratio: float = 1e-4,
    max_numeric_candidates: int = 32,
    prune: bool = False,
) -> DecisionTreeModel:
    """Grow a C4.5 tree over a table; all counting happens in SQL."""
    validate_table_exists(database, source_table)
    specs = [f if isinstance(f, FeatureSpec) else FeatureSpec(f) for f in features]
    validate_columns_exist(database, source_table, [class_column, *[s.column for s in specs]])
    if max_depth < 1:
        raise ValidationError("max_depth must be at least 1")

    def grow(predicate: str, depth: int) -> TreeNode:
        counts = _class_histogram(database, source_table, class_column, predicate)
        total = sum(counts.values())
        prediction = max(counts, key=counts.get) if counts else None
        node = TreeNode(prediction, total, counts, depth)
        if depth >= max_depth or total < min_split_rows or len(counts) <= 1:
            return node

        best: Optional[Tuple[float, FeatureSpec, Optional[float], object]] = None
        for spec in specs:
            if spec.categorical:
                partitions = _categorical_partitions(
                    database, source_table, class_column, spec.column, predicate
                )
                if len(partitions) < 2:
                    continue
                score = _gain_ratio(counts, list(partitions.values()))
                if best is None or score > best[0]:
                    best = (score, spec, None, partitions)
            else:
                for threshold in _numeric_candidates(
                    database, source_table, spec.column, predicate, max_numeric_candidates
                ):
                    partitions_list = _numeric_partitions(
                        database, source_table, class_column, spec.column, threshold, predicate
                    )
                    if any(sum(p.values()) == 0 for p in partitions_list):
                        continue
                    score = _gain_ratio(counts, partitions_list)
                    if best is None or score > best[0]:
                        best = (score, spec, threshold, None)

        if best is None or best[0] < min_gain_ratio:
            return node
        _, spec, threshold, categorical_partitions = best
        node.split_feature = spec.column
        node.split_categorical = spec.categorical
        node.split_threshold = threshold
        if spec.categorical:
            for value in categorical_partitions:
                child_predicate = _predicate_for(spec, value, None, None)
                if predicate:
                    child_predicate = f"{predicate} AND {child_predicate}"
                node.children[value] = grow(child_predicate, depth + 1)
        else:
            for side in ("le", "gt"):
                child_predicate = _predicate_for(spec, None, threshold, side)
                if predicate:
                    child_predicate = f"{predicate} AND {child_predicate}"
                node.children[side] = grow(child_predicate, depth + 1)
        return node

    root = grow("", 0)
    model = DecisionTreeModel(root, specs, class_column)
    if prune:
        _prune(model.root)
    return model


def _prune(node: TreeNode, *, z: float = 0.674) -> float:
    """Pessimistic-error pruning (C4.5's default); returns the subtree's estimated errors."""
    total = max(node.num_rows, 1)
    leaf_errors = total - node.class_counts.get(node.prediction, 0)
    leaf_estimate = leaf_errors + z * math.sqrt(leaf_errors * (1 - leaf_errors / total) + 0.25)
    if node.is_leaf:
        return leaf_estimate
    subtree_estimate = sum(_prune(child, z=z) for child in node.children.values())
    if leaf_estimate <= subtree_estimate:
        node.children = {}
        node.split_feature = None
        node.split_threshold = None
        return leaf_estimate
    return subtree_estimate
