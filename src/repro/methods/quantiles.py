"""Quantiles (Table 1, descriptive statistics).

Two implementations:

* :func:`exact_quantile` — the straightforward ORDER BY / OFFSET approach
  (one sort of the column inside the engine, linear interpolation between the
  two straddling rows, matching PostgreSQL's ``percentile_cont`` semantics).
* :func:`approximate_quantiles` — a mergeable reservoir-sample aggregate so
  the whole quantile vector is computed in a single streaming pass; this is
  the pattern MADlib uses for big tables where a full sort is too expensive.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = ["exact_quantile", "exact_quantiles", "approximate_quantiles", "install_quantile_aggregate"]


def _validate_fraction(fraction: float) -> None:
    if not (0.0 <= fraction <= 1.0):
        raise ValidationError(f"quantile fraction must be in [0, 1], got {fraction}")


def exact_quantile(database, table: str, column: str, fraction: float) -> float:
    """Exact quantile via an in-engine sort (percentile_cont semantics)."""
    validate_table_exists(database, table)
    validate_columns_exist(database, table, [column])
    _validate_fraction(fraction)
    values = database.execute(
        f"SELECT {column} FROM {table} WHERE {column} IS NOT NULL ORDER BY {column}"
    ).column(column)
    if not values:
        raise ValidationError(f"column {column!r} of {table!r} has no non-null values")
    position = fraction * (len(values) - 1)
    lower = int(np.floor(position))
    upper = int(np.ceil(position))
    if lower == upper:
        return float(values[lower])
    weight = position - lower
    return float(values[lower]) * (1 - weight) + float(values[upper]) * weight


def exact_quantiles(database, table: str, column: str, fractions: Sequence[float]) -> List[float]:
    """Several exact quantiles sharing one sorted scan."""
    validate_table_exists(database, table)
    validate_columns_exist(database, table, [column])
    for fraction in fractions:
        _validate_fraction(fraction)
    values = database.execute(
        f"SELECT {column} FROM {table} WHERE {column} IS NOT NULL ORDER BY {column}"
    ).column(column)
    if not values:
        raise ValidationError(f"column {column!r} of {table!r} has no non-null values")
    array = np.asarray(values, dtype=np.float64)
    return [float(np.quantile(array, fraction)) for fraction in fractions]


# ---------------------------------------------------------------------------
# Streaming (mergeable reservoir) quantiles
# ---------------------------------------------------------------------------


def install_quantile_aggregate(database, *, reservoir_size: int = 2048, seed: int = 7,
                               name: str = "quantile_reservoir") -> None:
    """Register a mergeable reservoir-sampling aggregate.

    The state is ``(count_seen, [(priority, value), ...])`` keeping the
    ``reservoir_size`` items with the largest random priorities; keeping
    max-priority items makes the merge of two reservoirs another reservoir of
    the union, so the aggregate parallelizes across segments correctly.
    """
    rng = np.random.default_rng(seed)

    def transition(state, value):
        if state is None:
            state = {"n": 0, "sample": []}
        state["n"] += 1
        priority = float(rng.random())
        if len(state["sample"]) < reservoir_size:
            heapq.heappush(state["sample"], (priority, float(value)))
        elif priority > state["sample"][0][0]:
            heapq.heapreplace(state["sample"], (priority, float(value)))
        return state

    def merge(a, b):
        if a is None:
            return b
        if b is None:
            return a
        merged = list(heapq.merge(a["sample"], b["sample"]))
        merged = heapq.nlargest(reservoir_size, merged)
        heapq.heapify(merged)
        return {"n": a["n"] + b["n"], "sample": merged}

    def final(state):
        if state is None or not state["sample"]:
            return None
        values = sorted(value for _, value in state["sample"])
        return {"n": state["n"], "values": values}

    database.catalog.register_aggregate(
        AggregateDefinition(name, transition, merge=merge, final=final, initial_state=None, strict=True)
    )


def approximate_quantiles(
    database,
    table: str,
    column: str,
    fractions: Sequence[float],
    *,
    reservoir_size: int = 2048,
    seed: int = 7,
) -> List[float]:
    """Approximate quantiles from one streaming aggregate pass."""
    validate_table_exists(database, table)
    validate_columns_exist(database, table, [column])
    for fraction in fractions:
        _validate_fraction(fraction)
    install_quantile_aggregate(database, reservoir_size=reservoir_size, seed=seed)
    record = database.query_scalar(f"SELECT quantile_reservoir({column}) FROM {table}")
    if record is None:
        raise ValidationError(f"column {column!r} of {table!r} has no non-null values")
    sample = np.asarray(record["values"], dtype=np.float64)
    return [float(np.quantile(sample, fraction)) for fraction in fractions]
