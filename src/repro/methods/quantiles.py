"""Quantiles (Table 1, descriptive statistics).

Two implementations:

* :func:`exact_quantile` — the straightforward ORDER BY / OFFSET approach
  (one sort of the column inside the engine, linear interpolation between the
  two straddling rows, matching PostgreSQL's ``percentile_cont`` semantics).
* :func:`approximate_quantiles` — a mergeable reservoir-sample aggregate so
  the whole quantile vector is computed in a single streaming pass; this is
  the pattern MADlib uses for big tables where a full sort is too expensive.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = [
    "ReservoirQuantileKernel",
    "exact_quantile",
    "exact_quantiles",
    "approximate_quantiles",
    "install_quantile_aggregate",
]


def _validate_fraction(fraction: float) -> None:
    if not (0.0 <= fraction <= 1.0):
        raise ValidationError(f"quantile fraction must be in [0, 1], got {fraction}")


def exact_quantile(database, table: str, column: str, fraction: float) -> float:
    """Exact quantile via an in-engine sort (percentile_cont semantics)."""
    validate_table_exists(database, table)
    validate_columns_exist(database, table, [column])
    _validate_fraction(fraction)
    values = database.execute(
        f"SELECT {column} FROM {table} WHERE {column} IS NOT NULL ORDER BY {column}"
    ).column(column)
    if not values:
        raise ValidationError(f"column {column!r} of {table!r} has no non-null values")
    position = fraction * (len(values) - 1)
    lower = int(np.floor(position))
    upper = int(np.ceil(position))
    if lower == upper:
        return float(values[lower])
    weight = position - lower
    return float(values[lower]) * (1 - weight) + float(values[upper]) * weight


def exact_quantiles(database, table: str, column: str, fractions: Sequence[float]) -> List[float]:
    """Several exact quantiles sharing one sorted scan."""
    validate_table_exists(database, table)
    validate_columns_exist(database, table, [column])
    for fraction in fractions:
        _validate_fraction(fraction)
    values = database.execute(
        f"SELECT {column} FROM {table} WHERE {column} IS NOT NULL ORDER BY {column}"
    ).column(column)
    if not values:
        raise ValidationError(f"column {column!r} of {table!r} has no non-null values")
    array = np.asarray(values, dtype=np.float64)
    return [float(np.quantile(array, fraction)) for fraction in fractions]


# ---------------------------------------------------------------------------
# Streaming (mergeable reservoir) quantiles
# ---------------------------------------------------------------------------


class ReservoirQuantileKernel:
    """Picklable kernel of the mergeable reservoir-sampling aggregate.

    The state is ``{"n": count_seen, "h": prefix_digest, "sample":
    [(priority, value), ...]}`` keeping the ``reservoir_size`` items with the
    largest priorities; keeping max-priority items makes the merge of two
    reservoirs another reservoir of the union, so the aggregate parallelizes
    across segments correctly.

    Priorities are **deterministic hashes** rather than draws from a shared
    random generator: a shared generator is process-local mutable state, so a
    worker's fold would see a different random stream than the coordinator's
    and the parallel tier would return a different (if equally valid) sample.
    Hash priorities make every per-segment fold a pure function of its input
    stream, which is what keeps the three execution tiers byte-identical.
    Each row's priority is derived from the running digest of the *entire
    stream prefix* (not just the row's position), so two segments only
    produce correlated priorities when their prefixes are byte-identical —
    hashing ``(position, value)`` alone would couple the selection of equal
    rows at equal positions across segments and bias the merged sample on
    low-cardinality data.
    """

    def __init__(self, reservoir_size: int = 2048, seed: int = 7) -> None:
        if reservoir_size < 1:
            raise ValidationError("reservoir_size must be at least 1")
        self.reservoir_size = reservoir_size
        self.seed = seed

    def _digest(self, prefix: int, value: float) -> int:
        payload = hashlib.blake2b(
            f"{self.seed}:{prefix}:{value!r}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(payload, "little")

    def transition(self, state, value):
        if state is None:
            state = {"n": 0, "h": 0, "sample": []}
        value = float(value)
        digest = self._digest(state["h"], value)
        priority = digest / 2.0 ** 64
        state["h"] = digest  # chain: the next priority depends on the whole prefix
        state["n"] += 1
        if len(state["sample"]) < self.reservoir_size:
            heapq.heappush(state["sample"], (priority, value))
        elif priority > state["sample"][0][0]:
            heapq.heapreplace(state["sample"], (priority, value))
        return state

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        merged = heapq.nlargest(self.reservoir_size, a["sample"] + b["sample"])
        heapq.heapify(merged)
        return {"n": a["n"] + b["n"], "h": a["h"] ^ b["h"], "sample": merged}

    def final(self, state):
        if state is None or not state["sample"]:
            return None
        values = sorted(value for _, value in state["sample"])
        return {"n": state["n"], "values": values}


def install_quantile_aggregate(database, *, reservoir_size: int = 2048, seed: int = 7,
                               name: str = "quantile_reservoir") -> None:
    """Register the mergeable reservoir-sampling aggregate.

    Built from :class:`ReservoirQuantileKernel`, whose bound methods pickle —
    so with ``Database(parallel=N)`` the per-segment sampling folds run in
    worker processes and only reservoirs cross the process boundary.
    """
    kernel = ReservoirQuantileKernel(reservoir_size=reservoir_size, seed=seed)
    database.catalog.register_aggregate(
        AggregateDefinition(
            name,
            kernel.transition,
            merge=kernel.merge,
            final=kernel.final,
            initial_state=None,
            strict=True,
        )
    )


def approximate_quantiles(
    database,
    table: str,
    column: str,
    fractions: Sequence[float],
    *,
    reservoir_size: int = 2048,
    seed: int = 7,
) -> List[float]:
    """Approximate quantiles from one streaming aggregate pass."""
    validate_table_exists(database, table)
    validate_columns_exist(database, table, [column])
    for fraction in fractions:
        _validate_fraction(fraction)
    install_quantile_aggregate(database, reservoir_size=reservoir_size, seed=seed)
    record = database.query_scalar(f"SELECT quantile_reservoir({column}) FROM {table}")
    if record is None:
        raise ValidationError(f"column {column!r} of {table!r} has no non-null values")
    sample = np.asarray(record["values"], dtype=np.float64)
    return [float(np.quantile(sample, fraction)) for fraction in fractions]
