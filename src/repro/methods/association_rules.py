"""Association rules via Apriori (Table 1, unsupervised learning).

Baskets live in a relational ``(basket_id, item)`` table.  Candidate support
counting is done with SQL aggregation: 1-itemset supports are a plain
``GROUP BY item``, and k-itemset supports are counted by a user-defined
aggregate that folds each basket's item set against the current candidate
list.  Rule generation (confidence / lift filtering) happens in the driver on
the — small — frequent-itemset table, per the paper's driver-function rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = ["AssociationRule", "FrequentItemset", "mine"]


@dataclass(frozen=True)
class FrequentItemset:
    """An itemset together with its support (fraction of baskets containing it)."""

    items: Tuple[int, ...]
    support: float
    count: int


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent -> consequent`` with its quality measures."""

    antecedent: Tuple[int, ...]
    consequent: Tuple[int, ...]
    support: float
    confidence: float
    lift: float


def _candidate_count_transition(state, items, candidates):
    """Count, for one basket, which candidate itemsets it contains."""
    if state is None:
        state = [0] * len(candidates)
    basket = set(int(i) for i in items)
    for index, candidate in enumerate(candidates):
        if basket.issuperset(candidate):
            state[index] += 1
    return state


def _candidate_count_merge(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return [x + y for x, y in zip(a, b)]


def mine(
    database,
    baskets_table: str,
    *,
    basket_column: str = "basket_id",
    item_column: str = "item",
    min_support: float = 0.1,
    min_confidence: float = 0.5,
    max_itemset_size: int = 4,
) -> Tuple[List[FrequentItemset], List[AssociationRule]]:
    """Run Apriori over a baskets table; returns (frequent itemsets, rules)."""
    validate_table_exists(database, baskets_table)
    validate_columns_exist(database, baskets_table, [basket_column, item_column])
    if not (0.0 < min_support <= 1.0):
        raise ValidationError("min_support must be in (0, 1]")
    if not (0.0 < min_confidence <= 1.0):
        raise ValidationError("min_confidence must be in (0, 1]")

    num_baskets = int(
        database.query_scalar(f"SELECT count(DISTINCT {basket_column}) FROM {baskets_table}")
    )
    if num_baskets == 0:
        raise ValidationError(f"baskets table {baskets_table!r} is empty")
    min_count = min_support * num_baskets

    # Level 1: plain GROUP BY.
    level_rows = database.query_dicts(
        f"SELECT {item_column} AS item, count(DISTINCT {basket_column}) AS n "
        f"FROM {baskets_table} GROUP BY {item_column}"
    )
    supports: Dict[FrozenSet[int], int] = {}
    frequent_level: List[FrozenSet[int]] = []
    for row in level_rows:
        count = int(row["n"])
        if count >= min_count:
            itemset = frozenset([int(row["item"])])
            supports[itemset] = count
            frequent_level.append(itemset)

    # Stage baskets as item arrays once (CREATE TEMP TABLE ... AS SELECT array_agg).
    with database.temporary_table("apriori_baskets") as baskets_arrays:
        database.execute(
            f"CREATE TEMP TABLE {baskets_arrays} AS "
            f"SELECT {basket_column} AS basket_id, array_agg({item_column}) AS items "
            f"FROM {baskets_table} GROUP BY {basket_column}"
        )
        database.catalog.register_aggregate(
            AggregateDefinition(
                "apriori_candidate_counts",
                _candidate_count_transition,
                merge=_candidate_count_merge,
                initial_state=None,
                strict=True,
            )
        )

        size = 1
        while frequent_level and size < max_itemset_size:
            size += 1
            candidates = _generate_candidates(frequent_level, size)
            if not candidates:
                break
            candidate_list = [tuple(sorted(candidate)) for candidate in candidates]
            counts = database.query_scalar(
                f"SELECT apriori_candidate_counts(items, %(candidates)s) FROM {baskets_arrays}",
                {"candidates": candidate_list},
            )
            frequent_level = []
            for candidate, count in zip(candidates, counts or []):
                if count >= min_count:
                    supports[candidate] = int(count)
                    frequent_level.append(candidate)

    itemsets = [
        FrequentItemset(tuple(sorted(items)), count / num_baskets, count)
        for items, count in sorted(supports.items(), key=lambda kv: (len(kv[0]), kv[0] and sorted(kv[0])))
    ]
    rules = _generate_rules(supports, num_baskets, min_confidence)
    return itemsets, rules


def _generate_candidates(previous_level: List[FrozenSet[int]], size: int) -> List[FrozenSet[int]]:
    """Join step + prune step of Apriori."""
    candidates = set()
    previous = set(previous_level)
    items = sorted({item for itemset in previous_level for item in itemset})
    for itemset in previous_level:
        for item in items:
            if item not in itemset:
                candidate = frozenset(itemset | {item})
                if len(candidate) == size and all(
                    frozenset(subset) in previous for subset in combinations(candidate, size - 1)
                ):
                    candidates.add(candidate)
    return sorted(candidates, key=lambda c: sorted(c))


def _generate_rules(
    supports: Dict[FrozenSet[int], int], num_baskets: int, min_confidence: float
) -> List[AssociationRule]:
    rules: List[AssociationRule] = []
    for itemset, count in supports.items():
        if len(itemset) < 2:
            continue
        support = count / num_baskets
        for split_size in range(1, len(itemset)):
            for antecedent in combinations(sorted(itemset), split_size):
                antecedent_set = frozenset(antecedent)
                consequent_set = itemset - antecedent_set
                antecedent_count = supports.get(antecedent_set)
                consequent_count = supports.get(consequent_set)
                if not antecedent_count or not consequent_count:
                    continue
                confidence = count / antecedent_count
                if confidence < min_confidence:
                    continue
                lift = confidence / (consequent_count / num_baskets)
                rules.append(
                    AssociationRule(
                        antecedent=tuple(sorted(antecedent_set)),
                        consequent=tuple(sorted(consequent_set)),
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, rule.antecedent))
    return rules
