"""Latent Dirichlet Allocation (Table 1, unsupervised learning).

MADlib's LDA is trained by collapsed Gibbs sampling: documents live in a
``(doc_id, word_id, count)`` table, the sampler's sufficient statistics
(topic-word and document-topic counts) are the model state, and a driver
function runs sampling sweeps until the iteration budget is exhausted.  Here
each sweep streams the corpus out of the engine in document order and updates
the count matrices; the per-document topic assignments are staged back into a
temp table between sweeps so the driver only ever holds the (small) count
matrices — the paper's rule about keeping bulk data in the database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError

__all__ = ["LDAModel", "load_corpus_table", "train"]


@dataclass
class LDAModel:
    """Fitted LDA model: topic-word and document-topic distributions."""

    topic_word_counts: np.ndarray      # (num_topics, vocabulary_size)
    document_topic_counts: np.ndarray  # (num_documents, num_topics)
    alpha: float
    beta: float
    num_iterations: int
    log_likelihood_history: List[float]

    @property
    def num_topics(self) -> int:
        return self.topic_word_counts.shape[0]

    @property
    def vocabulary_size(self) -> int:
        return self.topic_word_counts.shape[1]

    def topic_word_distribution(self) -> np.ndarray:
        counts = self.topic_word_counts + self.beta
        return counts / counts.sum(axis=1, keepdims=True)

    def document_topic_distribution(self) -> np.ndarray:
        counts = self.document_topic_counts + self.alpha
        return counts / counts.sum(axis=1, keepdims=True)

    def top_words(self, topic: int, num_words: int = 10) -> List[int]:
        """Word ids with the highest probability under one topic."""
        distribution = self.topic_word_distribution()[topic]
        return [int(i) for i in np.argsort(distribution)[::-1][:num_words]]


def load_corpus_table(database, table_name: str, documents: Sequence[Sequence[int]], *, replace: bool = True) -> None:
    """Load bag-of-words documents as ``(doc_id, word_id, count)`` rows."""
    database.create_table(
        table_name,
        [("doc_id", "integer"), ("word_id", "integer"), ("count", "integer")],
        replace=replace,
    )
    rows = []
    for doc_id, document in enumerate(documents):
        counts: Dict[int, int] = {}
        for word in document:
            counts[int(word)] = counts.get(int(word), 0) + 1
        for word_id, count in sorted(counts.items()):
            rows.append((doc_id, word_id, count))
    database.load_rows(table_name, rows)


def train(
    database,
    corpus_table: str,
    *,
    num_topics: int = 5,
    vocabulary_size: Optional[int] = None,
    alpha: float = 0.1,
    beta: float = 0.01,
    num_iterations: int = 30,
    seed: Optional[int] = None,
) -> LDAModel:
    """Collapsed Gibbs sampling over a ``(doc_id, word_id, count)`` corpus table."""
    validate_table_exists(database, corpus_table)
    validate_columns_exist(database, corpus_table, ["doc_id", "word_id", "count"])
    if num_topics < 1:
        raise ValidationError("num_topics must be at least 1")
    if num_iterations < 1:
        raise ValidationError("num_iterations must be at least 1")

    rows = database.query_dicts(
        f"SELECT doc_id, word_id, count FROM {corpus_table} ORDER BY doc_id, word_id"
    )
    if not rows:
        raise ValidationError(f"corpus table {corpus_table!r} is empty")
    num_documents = max(int(row["doc_id"]) for row in rows) + 1
    if vocabulary_size is None:
        vocabulary_size = max(int(row["word_id"]) for row in rows) + 1

    rng = np.random.default_rng(seed)
    # Expand to token instances with an initial random topic assignment.
    tokens: List[Tuple[int, int]] = []
    for row in rows:
        for _ in range(int(row["count"])):
            tokens.append((int(row["doc_id"]), int(row["word_id"])))
    assignments = rng.integers(0, num_topics, size=len(tokens))

    topic_word = np.zeros((num_topics, vocabulary_size), dtype=np.float64)
    doc_topic = np.zeros((num_documents, num_topics), dtype=np.float64)
    topic_totals = np.zeros(num_topics, dtype=np.float64)
    for (doc, word), topic in zip(tokens, assignments):
        topic_word[topic, word] += 1
        doc_topic[doc, topic] += 1
        topic_totals[topic] += 1

    # Inter-iteration state (token assignments) staged in a temp table, per the
    # driver-function pattern: the driver keeps only the count matrices.
    state_table = database.unique_temp_name("lda_assignments")
    database.create_table(
        state_table, [("token_id", "integer"), ("topic", "integer")], temporary=True
    )
    database.load_rows(state_table, [(i, int(t)) for i, t in enumerate(assignments)])

    log_likelihood_history: List[float] = []
    for _ in range(num_iterations):
        stored = database.execute(
            f"SELECT topic FROM {state_table} ORDER BY token_id"
        ).column("topic")
        assignments = np.asarray(stored, dtype=np.int64)
        for index, (doc, word) in enumerate(tokens):
            topic = int(assignments[index])
            topic_word[topic, word] -= 1
            doc_topic[doc, topic] -= 1
            topic_totals[topic] -= 1
            weights = (
                (topic_word[:, word] + beta)
                / (topic_totals + beta * vocabulary_size)
                * (doc_topic[doc] + alpha)
            )
            weights /= weights.sum()
            topic = int(rng.choice(num_topics, p=weights))
            assignments[index] = topic
            topic_word[topic, word] += 1
            doc_topic[doc, topic] += 1
            topic_totals[topic] += 1
        database.execute(f"DELETE FROM {state_table}")
        database.load_rows(state_table, [(i, int(t)) for i, t in enumerate(assignments)])
        log_likelihood_history.append(_corpus_log_likelihood(tokens, topic_word, doc_topic,
                                                             topic_totals, alpha, beta,
                                                             vocabulary_size))

    database.drop_table(state_table, if_exists=True)
    return LDAModel(
        topic_word_counts=topic_word,
        document_topic_counts=doc_topic,
        alpha=alpha,
        beta=beta,
        num_iterations=num_iterations,
        log_likelihood_history=log_likelihood_history,
    )


def _corpus_log_likelihood(tokens, topic_word, doc_topic, topic_totals, alpha, beta, vocabulary_size) -> float:
    """Per-token predictive log likelihood under the current counts (monitoring only)."""
    log_likelihood = 0.0
    num_topics = topic_word.shape[0]
    for doc, word in tokens:
        word_given_topic = (topic_word[:, word] + beta) / (topic_totals + beta * vocabulary_size)
        topic_given_doc = (doc_topic[doc] + alpha) / (doc_topic[doc].sum() + alpha * num_topics)
        log_likelihood += float(np.log(max(float(word_given_topic @ topic_given_doc), 1e-300)))
    return log_likelihood
