"""Sketch-based descriptive statistics: Count-Min and Flajolet–Martin."""

from .countmin import CountMinSketch, install_countmin, sketch_column
from .fm import FMSketch, count_distinct, install_fm

__all__ = [
    "CountMinSketch",
    "install_countmin",
    "sketch_column",
    "FMSketch",
    "install_fm",
    "count_distinct",
]
