"""Sketch-based descriptive statistics: Count-Min and Flajolet–Martin."""

from .countmin import CountMinKernel, CountMinSketch, install_countmin, sketch_column
from .fm import FMSketch, FMSketchKernel, count_distinct, install_fm

__all__ = [
    "CountMinKernel",
    "CountMinSketch",
    "install_countmin",
    "sketch_column",
    "FMSketch",
    "FMSketchKernel",
    "install_fm",
    "count_distinct",
]
