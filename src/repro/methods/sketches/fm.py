"""Flajolet–Martin distinct-count sketch (Table 1, descriptive statistics).

The classic probabilistic counter: hash every value, record the position of
the lowest set bit in a bitmap per hash function, and estimate the number of
distinct values from the position of the lowest *unset* bit, averaged over
``num_maps`` independent hash functions and corrected by the 0.77351 constant
from the original paper.  Like Count-Min, the sketch is a mergeable aggregate
(bitwise OR), so it parallelizes over segments for free.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ...errors import ValidationError
from ...engine.aggregates import AggregateDefinition

__all__ = ["FMSketch", "FMSketchKernel", "install_fm", "count_distinct"]

_PHI = 0.77351
_BITMAP_BITS = 64


def _hash(value: Any, map_index: int) -> int:
    digest = hashlib.blake2b(f"{map_index}:{value!r}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _lowest_set_bit(value: int) -> int:
    if value == 0:
        return _BITMAP_BITS - 1
    return (value & -value).bit_length() - 1


@dataclass
class FMSketch:
    """A set of FM bitmaps (one per hash function)."""

    bitmaps: np.ndarray  # shape (num_maps,), dtype uint64

    @classmethod
    def empty(cls, num_maps: int = 64) -> "FMSketch":
        if num_maps < 1:
            raise ValidationError("num_maps must be at least 1")
        return cls(np.zeros(num_maps, dtype=np.uint64))

    @property
    def num_maps(self) -> int:
        return self.bitmaps.shape[0]

    def add(self, value: Any) -> "FMSketch":
        for map_index in range(self.num_maps):
            bit = _lowest_set_bit(_hash(value, map_index))
            self.bitmaps[map_index] |= np.uint64(1 << bit)
        return self

    def merge(self, other: "FMSketch") -> "FMSketch":
        if self.num_maps != other.num_maps:
            raise ValidationError("cannot merge FM sketches with different sizes")
        return FMSketch(self.bitmaps | other.bitmaps)

    def estimate(self) -> float:
        """Estimated number of distinct values."""
        total_rank = 0
        for bitmap in self.bitmaps.tolist():
            rank = 0
            while rank < _BITMAP_BITS and (bitmap >> rank) & 1:
                rank += 1
            total_rank += rank
        mean_rank = total_rank / self.num_maps
        return (2.0 ** mean_rank) / _PHI


class FMSketchKernel:
    """Picklable transition/merge kernel for the ``fmsketch`` aggregate.

    Hash-based and order-insensitive (bitwise OR), so per-segment folds in
    worker processes are byte-identical to the in-process fold; only the
    (fixed-size) bitmap array crosses the process boundary.
    """

    def __init__(self, num_maps: int = 64) -> None:
        if num_maps < 1:
            raise ValidationError("num_maps must be at least 1")
        self.num_maps = num_maps

    def transition(self, state: Optional[FMSketch], value: Any) -> FMSketch:
        if state is None:
            state = FMSketch.empty(self.num_maps)
        return state.add(value)

    def merge(self, a: Optional[FMSketch], b: Optional[FMSketch]):
        if a is None:
            return b
        if b is None:
            return a
        return a.merge(b)


def install_fm(database, *, num_maps: int = 64, name: str = "fmsketch") -> None:
    """Register an ``fmsketch(value)`` aggregate returning an :class:`FMSketch`."""
    kernel = FMSketchKernel(num_maps=num_maps)
    database.catalog.register_aggregate(
        AggregateDefinition(
            name, kernel.transition, merge=kernel.merge, initial_state=None, strict=True
        )
    )


def count_distinct(database, table: str, column: str, *, num_maps: int = 64) -> float:
    """Approximate ``COUNT(DISTINCT column)`` with one aggregate pass."""
    install_fm(database, num_maps=num_maps)
    sketch = database.query_scalar(f"SELECT fmsketch({column}) FROM {table}")
    if sketch is None:
        return 0.0
    return float(sketch.estimate())
