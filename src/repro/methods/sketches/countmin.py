"""Count-Min sketch (Table 1, descriptive statistics).

A mergeable frequency sketch: the transition function hashes one value into
``depth`` rows of a ``depth x width`` counter matrix, the merge function adds
two matrices, and point queries return the minimum counter — giving frequency
estimates that overestimate by at most ``eps * N`` with probability
``1 - delta`` for ``width = ceil(e / eps)`` and ``depth = ceil(ln(1/delta))``.
Because the sketch is a classic transition/merge/final aggregate it runs on
the parallel (segmented) path unchanged.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from ...errors import ValidationError
from ...engine.aggregates import AggregateDefinition

__all__ = ["CountMinSketch", "CountMinKernel", "install_countmin", "sketch_column"]


def _hash(value: Any, row: int, width: int) -> int:
    digest = hashlib.blake2b(f"{row}:{value!r}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % width


@dataclass
class CountMinSketch:
    """The sketch itself: a counter matrix plus the total item count."""

    counters: np.ndarray
    total: int = 0

    @classmethod
    def empty(cls, *, eps: float = 0.01, delta: float = 0.01) -> "CountMinSketch":
        if not (0 < eps < 1) or not (0 < delta < 1):
            raise ValidationError("eps and delta must be in (0, 1)")
        width = int(math.ceil(math.e / eps))
        depth = int(math.ceil(math.log(1.0 / delta)))
        return cls(np.zeros((max(depth, 1), max(width, 1)), dtype=np.int64))

    @property
    def depth(self) -> int:
        return self.counters.shape[0]

    @property
    def width(self) -> int:
        return self.counters.shape[1]

    def add(self, value: Any, count: int = 1) -> "CountMinSketch":
        for row in range(self.depth):
            self.counters[row, _hash(value, row, self.width)] += count
        self.total += count
        return self

    def estimate(self, value: Any) -> int:
        """Point frequency estimate (never underestimates)."""
        return int(
            min(self.counters[row, _hash(value, row, self.width)] for row in range(self.depth))
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        if self.counters.shape != other.counters.shape:
            raise ValidationError("cannot merge sketches with different shapes")
        return CountMinSketch(self.counters + other.counters, self.total + other.total)

    def error_bound(self) -> float:
        """The additive error eps*N implied by the sketch width and item count."""
        return math.e / self.width * self.total


class CountMinKernel:
    """Picklable transition/merge kernel for the ``cmsketch`` aggregate.

    Hash-based counter addition — order-insensitive and associative — so the
    parallel tier returns exactly the in-process sketch; only the counter
    matrix crosses the process boundary.
    """

    def __init__(self, eps: float = 0.01, delta: float = 0.01) -> None:
        if not (0 < eps < 1) or not (0 < delta < 1):
            raise ValidationError("eps and delta must be in (0, 1)")
        self.eps = eps
        self.delta = delta

    def transition(self, state: Optional[CountMinSketch], value: Any) -> CountMinSketch:
        if state is None:
            state = CountMinSketch.empty(eps=self.eps, delta=self.delta)
        return state.add(value)

    def merge(self, a: Optional[CountMinSketch], b: Optional[CountMinSketch]):
        if a is None:
            return b
        if b is None:
            return a
        return a.merge(b)


def install_countmin(database, *, eps: float = 0.01, delta: float = 0.01, name: str = "cmsketch") -> None:
    """Register a ``cmsketch(value)`` aggregate returning a :class:`CountMinSketch`."""
    kernel = CountMinKernel(eps=eps, delta=delta)
    database.catalog.register_aggregate(
        AggregateDefinition(
            name, kernel.transition, merge=kernel.merge, initial_state=None, strict=True
        )
    )


def sketch_column(database, table: str, column: str, *, eps: float = 0.01, delta: float = 0.01) -> CountMinSketch:
    """Build a Count-Min sketch of one column with a single aggregate query."""
    install_countmin(database, eps=eps, delta=delta)
    sketch = database.query_scalar(f"SELECT cmsketch({column}) FROM {table}")
    if sketch is None:
        return CountMinSketch.empty(eps=eps, delta=delta)
    return sketch
