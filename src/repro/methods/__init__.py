"""The MADlib method suite (Table 1 of the paper).

Supervised learning: linear regression, logistic regression, naive Bayes,
decision trees (C4.5), support vector machines.  Unsupervised learning:
k-means, SVD matrix factorization, latent Dirichlet allocation, association
rules.  Descriptive statistics: Count-Min sketch, Flajolet–Martin sketch,
data profiling, quantiles.
"""

from . import (
    association_rules,
    bootstrap,
    decision_tree,
    kmeans,
    lda,
    linear_regression,
    logistic_regression,
    naive_bayes,
    profile,
    quantiles,
    sketches,
    svd,
    svm,
)
from .linear_regression import LinearRegressionResult
from .logistic_regression import LogisticRegressionResult
from .kmeans import KMeansResult
from .svm import SVMModel

__all__ = [
    "bootstrap",
    "linear_regression",
    "logistic_regression",
    "naive_bayes",
    "decision_tree",
    "svm",
    "kmeans",
    "svd",
    "lda",
    "association_rules",
    "sketches",
    "profile",
    "quantiles",
    "LinearRegressionResult",
    "LogisticRegressionResult",
    "KMeansResult",
    "SVMModel",
]
