"""Ordinary-least-squares linear regression (Section 4.1).

Linear regression is the paper's canonical *single-pass* method: the model is
computed by one user-defined aggregate whose transition function accumulates
``X^T X`` and ``X^T y`` (sums of per-row outer products), whose merge function
adds partial states from different segments, and whose final function solves
the normal equations and derives the usual statistics (Listings 1 and 2).

Three transition *kernels* are provided, mirroring the implementation
generations compared in Section 4.4 / Figure 4:

``naive``
    The v0.1alpha analog: a bare implementation with no abstraction-layer
    wrapping or finiteness checks, updating the Gram matrix row by row with an
    explicit loop (the paper's "simple nested loop" in C).  Cheap for narrow
    models, increasingly expensive as the number of variables grows.
``unoptimized``
    The v0.2.1beta analog: routes every row through the abstraction layer
    (``AnyType`` unwrap, handle promotion), computes the outer product through
    a row-vector expression that allocates temporaries, and pays a defensive
    copy of the state on every row — the behaviours the paper blames for that
    version's slowdown.
``optimized``
    The v0.3 analog: vectorized rank-1 update of the Gram matrix, symmetric
    structure exploited at finalization, minimal per-row overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np
from scipy import stats as scipy_stats

from ..abstraction import (
    AnyType,
    LinRegrTransitionState,
    SymmetricPositiveDefiniteEigenDecomposition,
)
from ..driver import validate_column_type, validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = [
    "LinearRegressionResult",
    "KERNELS",
    "make_linregr_aggregate",
    "install_linear_regression",
    "train",
    "predict",
]


@dataclass
class LinearRegressionResult:
    """The composite record returned by ``linregr`` (Section 4.1.1 example output)."""

    coef: np.ndarray
    r2: float
    std_err: np.ndarray
    t_stats: np.ndarray
    p_values: np.ndarray
    condition_no: float
    num_rows: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "coef": self.coef,
            "r2": self.r2,
            "std_err": self.std_err,
            "t_stats": self.t_stats,
            "p_values": self.p_values,
            "condition_no": self.condition_no,
            "num_rows": self.num_rows,
        }

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted coefficients to new feature rows."""
        return np.atleast_2d(np.asarray(features, dtype=np.float64)) @ self.coef


# ---------------------------------------------------------------------------
# Transition kernels
# ---------------------------------------------------------------------------


def _transition_optimized(state: LinRegrTransitionState, y: float, x) -> LinRegrTransitionState:
    """v0.3-style transition: vectorized rank-1 update, minimal overhead."""
    vector = np.asarray(x, dtype=np.float64)
    if not state.is_initialized:
        state.initialize(vector.shape[0])
    state.num_rows += 1
    state.y_sum += y
    state.y_square_sum += y * y
    state.x_transp_y += vector * y
    state.x_transp_x += np.outer(vector, vector)
    return state


def _transition_unoptimized(state: LinRegrTransitionState, y: float, x) -> LinRegrTransitionState:
    """v0.2.1beta-style transition: abstraction overhead plus copy-heavy math.

    Every row goes through an ``AnyType`` argument pack, the feature vector is
    re-bridged to a column vector, the outer product is formed through an
    explicit row-vector/column-vector matmul (two temporaries), and the Gram
    matrix is replaced rather than updated in place — the defensive-copy
    behaviour of the first C++ abstraction layer.
    """
    args = AnyType.args(state, y, x)
    y_value = args[1].get_as(float)
    vector = args[2].get_as("MappedColumnVector")
    if not math.isfinite(y_value) or not np.all(np.isfinite(vector)):
        return state
    if not state.is_initialized:
        state.initialize(vector.shape[0])
    state.num_rows += 1
    state.y_sum += y_value
    state.y_square_sum += y_value * y_value
    state.x_transp_y = state.x_transp_y + vector * y_value
    row = vector.reshape(1, -1)
    outer = row.T @ row
    state.x_transp_x = state.x_transp_x + outer
    return state


def _transition_naive(state: LinRegrTransitionState, y: float, x) -> LinRegrTransitionState:
    """v0.1alpha-style transition: no checks, explicit per-row loop over the triangle."""
    vector = np.asarray(x, dtype=np.float64)
    if not state.is_initialized:
        state.initialize(vector.shape[0])
    state.num_rows += 1
    state.y_sum += y
    state.y_square_sum += y * y
    state.x_transp_y += vector * y
    gram = state.x_transp_x
    for i in range(vector.shape[0]):
        gram[i, : i + 1] += vector[i] * vector[: i + 1]
    return state


def _batch_transition_optimized(
    state: LinRegrTransitionState, y_column, x_column
) -> LinRegrTransitionState:
    """Batched v0.3 transition: one BLAS-backed Gram update per segment.

    Semantically a fold of :func:`_transition_optimized` over the segment's
    rows — ``X^T X`` and ``X^T y`` accumulated for the whole batch in single
    matrix products instead of one rank-1 update per row.  Registered as the
    optimized kernel's ``batch_transition``; the engine falls back to the
    row-at-a-time fold if this raises (e.g. ragged feature vectors).
    """
    matrix = np.asarray(x_column, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("linregr batch update needs uniform-width feature vectors")
    responses = np.asarray(y_column, dtype=np.float64)
    if not state.is_initialized:
        state.initialize(matrix.shape[1])
    state.num_rows += matrix.shape[0]
    state.y_sum += float(responses.sum())
    state.y_square_sum += float(responses @ responses)
    state.x_transp_y += matrix.T @ responses
    state.x_transp_x += matrix.T @ matrix
    return state


KERNELS: Dict[str, Callable] = {
    "optimized": _transition_optimized,
    "unoptimized": _transition_unoptimized,
    "naive": _transition_naive,
}

#: Batch (whole-segment) kernels; only the v0.3 analog has one — the older
#: generations are deliberately row-at-a-time, that is what Figure 4 measures.
BATCH_KERNELS: Dict[str, Callable] = {
    "optimized": _batch_transition_optimized,
}

#: Map of paper version labels to kernel names (used by the Figure 4 harness).
VERSION_KERNELS = {"v0.3": "optimized", "v0.2.1beta": "unoptimized", "v0.1alpha": "naive"}


def _merge(a: LinRegrTransitionState, b: LinRegrTransitionState) -> LinRegrTransitionState:
    return a.merge(b)


def _finalize(state: LinRegrTransitionState) -> Optional[Dict[str, object]]:
    if state is None or not state.is_initialized or state.num_rows == 0:
        return None
    width = state.width_of_x
    n = state.num_rows
    # The naive kernel maintains only the lower triangle; reconstruct the full
    # symmetric matrix before decomposing (harmless for the other kernels).
    gram = state.x_transp_x
    if not np.allclose(gram, gram.T):
        lower = np.tril(gram)
        gram = lower + lower.T - np.diag(np.diag(lower))
    decomposition = SymmetricPositiveDefiniteEigenDecomposition(gram)
    inverse = decomposition.pseudo_inverse()
    coef = inverse @ state.x_transp_y

    ss_total = state.y_square_sum - state.y_sum * state.y_sum / n
    ss_residual = max(state.y_square_sum - float(coef @ state.x_transp_y), 0.0)
    r2 = 1.0 - ss_residual / ss_total if ss_total > 0 else 1.0

    degrees_of_freedom = max(n - width, 1)
    variance = ss_residual / degrees_of_freedom
    std_err = np.sqrt(np.clip(np.diag(inverse) * variance, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_stats = np.where(std_err > 0, coef / std_err, np.inf * np.sign(coef))
    p_values = 2.0 * scipy_stats.t.sf(np.abs(t_stats), degrees_of_freedom)

    return {
        "coef": coef,
        "r2": float(r2),
        "std_err": std_err,
        "t_stats": t_stats,
        "p_values": p_values,
        "condition_no": float(decomposition.condition_no()),
        "num_rows": int(n),
    }


def make_linregr_aggregate(kernel: str = "optimized", name: str = "linregr") -> AggregateDefinition:
    """Build the ``linregr`` aggregate definition for a given kernel."""
    if kernel not in KERNELS:
        raise ValidationError(f"unknown linregr kernel {kernel!r}; choose from {sorted(KERNELS)}")
    return AggregateDefinition(
        name,
        KERNELS[kernel],
        merge=_merge,
        final=_finalize,
        initial_state=LinRegrTransitionState,
        strict=True,
        batch_transition=BATCH_KERNELS.get(kernel),
    )


def install_linear_regression(database, *, kernel: str = "optimized", name: str = "linregr") -> None:
    """Register the ``linregr`` user-defined aggregate on a database."""
    definition = make_linregr_aggregate(kernel, name)
    database.catalog.register_aggregate(definition)


def train(
    database,
    source_table: str,
    dependent_column: str = "y",
    independent_column: str = "x",
    *,
    kernel: str = "optimized",
) -> LinearRegressionResult:
    """Fit OLS linear regression over a table: ``SELECT linregr(y, x) FROM source``.

    Parameters mirror the SQL interface in the paper: the data lives in
    ``source_table`` with the response in ``dependent_column`` (double
    precision) and the feature vector in ``independent_column``
    (double precision[]).
    """
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    validate_column_type(database, source_table, independent_column, expect_array=True)
    install_linear_regression(database, kernel=kernel)
    record = database.query_scalar(
        f"SELECT linregr({dependent_column}, {independent_column}) FROM {source_table}"
    )
    if record is None:
        raise ValidationError(f"table {source_table!r} has no usable rows")
    return LinearRegressionResult(
        coef=np.asarray(record["coef"], dtype=np.float64),
        r2=float(record["r2"]),
        std_err=np.asarray(record["std_err"], dtype=np.float64),
        t_stats=np.asarray(record["t_stats"], dtype=np.float64),
        p_values=np.asarray(record["p_values"], dtype=np.float64),
        condition_no=float(record["condition_no"]),
        num_rows=int(record["num_rows"]),
    )


def predict(
    database,
    model: LinearRegressionResult,
    source_table: str,
    independent_column: str = "x",
    *,
    output_column: str = "prediction",
    id_column: str = "id",
) -> List[dict]:
    """Score a table with a fitted model inside the database.

    Registers a scoring UDF bound to the model coefficients and evaluates it in
    SQL so the scan happens in the engine.
    """
    validate_columns_exist(database, source_table, [independent_column, id_column])
    coef = model.coef

    def score(x) -> float:
        return float(np.dot(np.asarray(x, dtype=np.float64), coef))

    database.create_function("linregr_predict", score, return_type="double precision")
    return database.query_dicts(
        f"SELECT {id_column}, linregr_predict({independent_column}) AS {output_column} "
        f"FROM {source_table} ORDER BY {id_column}"
    )
