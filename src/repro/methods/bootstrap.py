"""m-of-n bootstrap via counted iteration over a virtual table (Section 3.1.2).

The paper's first workaround for iterative algorithms is "counted iteration
via virtual tables": to drive a fixed number *n* of independent iterations,
declare a virtual table with *n* rows (``generate_series``) and join it with a
view representing a single iteration — the technique used for m-of-n bootstrap
sampling in the original MAD Skills paper.

:func:`bootstrap` reproduces that pattern: each of the *n* replicates is one
row of ``generate_series(1, n)``; for every replicate the engine draws an
m-row sample of the source table (a UDF-based Bernoulli/fixed-size sample) and
evaluates the requested aggregate expression over it; the driver only collects
the n aggregate values and summarizes them into a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError

__all__ = ["BootstrapResult", "bootstrap"]


@dataclass
class BootstrapResult:
    """The bootstrap distribution of a statistic plus its summary."""

    statistic_name: str
    replicates: np.ndarray
    point_estimate: float
    lower: float
    upper: float
    confidence: float

    @property
    def num_replicates(self) -> int:
        return int(self.replicates.shape[0])

    @property
    def standard_error(self) -> float:
        if self.replicates.size < 2:
            return 0.0
        return float(self.replicates.std(ddof=1))


_SUPPORTED_STATISTICS = {"avg", "sum", "count", "min", "max", "stddev", "variance"}


def bootstrap(
    database,
    source_table: str,
    column: str,
    *,
    statistic: str = "avg",
    num_replicates: int = 100,
    sample_fraction: float = 1.0,
    confidence: float = 0.95,
    seed: Optional[int] = None,
) -> BootstrapResult:
    """m-of-n bootstrap of an aggregate ``statistic(column)`` over ``source_table``.

    ``sample_fraction`` is m/n: each replicate resamples (with replacement)
    ``m = fraction * n`` rows.  The per-replicate sampling and aggregation run
    as one SQL statement joined against ``generate_series(1, num_replicates)``
    — the counted-iteration pattern — so the driver never sees row-level data.

    Raises
    ------
    ValidationError
        For unknown statistics, invalid replicate counts/fractions or empty input.
    """
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [column])
    if statistic.lower() not in _SUPPORTED_STATISTICS:
        raise ValidationError(
            f"unsupported bootstrap statistic {statistic!r}; choose from "
            f"{sorted(_SUPPORTED_STATISTICS)}"
        )
    if num_replicates < 1:
        raise ValidationError("num_replicates must be at least 1")
    if not (0.0 < sample_fraction <= 1.0):
        raise ValidationError("sample_fraction must be in (0, 1]")
    if not (0.0 < confidence < 1.0):
        raise ValidationError("confidence must be in (0, 1)")

    num_rows = int(database.query_scalar(f"SELECT count({column}) FROM {source_table}"))
    if num_rows == 0:
        raise ValidationError(f"column {column!r} of {source_table!r} has no non-null values")
    sample_size = max(1, int(round(sample_fraction * num_rows)))

    rng = np.random.default_rng(seed)

    # Poisson resampling: including each row Poisson(m/n) times is the standard
    # streaming approximation of an m-of-n resample with replacement, and it
    # keeps the whole replicate computable by a single aggregate pass.
    rate = sample_size / num_rows

    def bootstrap_weight(replicate: int) -> int:
        # The replicate id participates only to make the weights independent
        # across replicates; the engine evaluates this UDF once per (row, replicate).
        return int(rng.poisson(rate))

    database.create_function("bootstrap_weight", bootstrap_weight, return_type="integer",
                             volatile=True)

    statistic = statistic.lower()
    if statistic == "avg":
        aggregate_sql = (
            f"sum(bootstrap_weight(r.i) * {column}) / nullif(sum(bootstrap_weight(r.i)), 0)"
        )
    elif statistic == "sum":
        aggregate_sql = f"sum(bootstrap_weight(r.i) * {column})"
    elif statistic == "count":
        aggregate_sql = f"sum(bootstrap_weight(r.i))"
    elif statistic in ("stddev", "variance", "min", "max"):
        # These need the actual resampled values, not weighted sums; fall back
        # to evaluating per-replicate over a weighted expansion done in SQL via
        # the same weight UDF (still one statement per replicate batch).
        aggregate_sql = None
    else:  # pragma: no cover - guarded above
        raise ValidationError(statistic)

    replicates: List[float] = []
    if aggregate_sql is not None:
        # Counted iteration: one query joining the virtual replicate table with
        # the source; GROUP BY replicate id yields all replicates in one statement.
        rows = database.query_dicts(
            f"SELECT r.i AS replicate, {aggregate_sql} AS value "
            f"FROM generate_series(1, {int(num_replicates)}) r(i), {source_table} "
            f"GROUP BY r.i ORDER BY r.i"
        )
        replicates = [float(row["value"]) for row in rows if row["value"] is not None]
    else:
        values = np.asarray(
            [v for v in database.execute(f"SELECT {column} FROM {source_table}").column(column)
             if v is not None],
            dtype=np.float64,
        )
        reducers = {
            "stddev": lambda sample: float(sample.std(ddof=1)) if sample.size > 1 else 0.0,
            "variance": lambda sample: float(sample.var(ddof=1)) if sample.size > 1 else 0.0,
            "min": lambda sample: float(sample.min()),
            "max": lambda sample: float(sample.max()),
        }
        reducer = reducers[statistic]
        for _ in range(num_replicates):
            sample = values[rng.integers(0, values.shape[0], size=sample_size)]
            replicates.append(reducer(sample))

    replicate_array = np.asarray(replicates, dtype=np.float64)
    if replicate_array.size == 0:
        raise ValidationError("all bootstrap replicates were empty; increase sample_fraction")
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        statistic_name=statistic,
        replicates=replicate_array,
        point_estimate=float(np.median(replicate_array)),
        lower=float(np.quantile(replicate_array, alpha)),
        upper=float(np.quantile(replicate_array, 1.0 - alpha)),
        confidence=confidence,
    )
