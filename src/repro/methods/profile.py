"""Data profiling (Table 1, descriptive statistics).

The ``profile`` module is the paper's running example of a *templated query*
(Section 3.1.3): it "takes an arbitrary table as input, producing univariate
summary statistics for each of its columns.  The input schema to this module
is not fixed, and the output schema is a function of the input schema."

The implementation therefore interrogates the catalog for the input table's
columns and types, synthesizes one aggregation query per column from
templates, and validates everything up front so users get readable errors
rather than engine-level failures from generated SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..driver import QueryTemplate, validate_table_exists
from ..errors import ValidationError
from .sketches.fm import count_distinct

__all__ = ["ColumnProfile", "TableProfile", "profile"]


_NUMERIC_TEMPLATE = QueryTemplate(
    "SELECT count({column}) AS non_null_count, "
    "min({column}) AS min_value, max({column}) AS max_value, "
    "avg({column}) AS mean, stddev({column}) AS stddev "
    "FROM {table}"
)

_TEXT_TEMPLATE = QueryTemplate(
    "SELECT count({column}) AS non_null_count, "
    "min(length({column})) AS min_length, max(length({column})) AS max_length "
    "FROM {table}"
)


@dataclass
class ColumnProfile:
    """Summary statistics for one column."""

    name: str
    sql_type: str
    row_count: int
    non_null_count: int
    distinct_count: float
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    mean: Optional[float] = None
    stddev: Optional[float] = None
    min_length: Optional[int] = None
    max_length: Optional[int] = None

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return 1.0 - self.non_null_count / self.row_count


@dataclass
class TableProfile:
    """Profiles for every column of a table."""

    table: str
    row_count: int
    columns: List[ColumnProfile] = field(default_factory=list)

    def column(self, name: str) -> ColumnProfile:
        for column_profile in self.columns:
            if column_profile.name.lower() == name.lower():
                return column_profile
        raise ValidationError(f"no profile for column {name!r}")

    def as_rows(self) -> List[Dict[str, object]]:
        """Flatten to a list of dictionaries (one per column), for display."""
        rows = []
        for column_profile in self.columns:
            rows.append(
                {
                    "column": column_profile.name,
                    "type": column_profile.sql_type,
                    "non_null": column_profile.non_null_count,
                    "distinct": round(column_profile.distinct_count, 1),
                    "min": column_profile.min_value,
                    "max": column_profile.max_value,
                    "mean": column_profile.mean,
                    "stddev": column_profile.stddev,
                }
            )
        return rows


def profile(
    database,
    table: str,
    *,
    approximate_distinct: bool = True,
    skip_array_columns: bool = True,
) -> TableProfile:
    """Profile every column of ``table``.

    ``approximate_distinct`` uses the Flajolet–Martin sketch for distinct
    counts (one streaming pass) instead of exact ``COUNT(DISTINCT ...)``.
    Array-typed columns are skipped by default (only their null counts are
    reported) since univariate statistics are not defined for them.
    """
    validate_table_exists(database, table)
    schema = database.catalog.table_schema(table)
    row_count = int(database.query_scalar(f"SELECT count(*) FROM {table}"))
    result = TableProfile(table=table, row_count=row_count)

    for column in schema:
        name = column.name
        sql_type = column.sql_type
        if sql_type.is_array:
            if skip_array_columns:
                non_null = int(database.query_scalar(f"SELECT count({name}) FROM {table}"))
                result.columns.append(
                    ColumnProfile(name, str(sql_type), row_count, non_null, float("nan"))
                )
                continue
        if row_count == 0:
            result.columns.append(ColumnProfile(name, str(sql_type), 0, 0, 0.0))
            continue

        if approximate_distinct:
            distinct = count_distinct(database, table, name)
        else:
            distinct = float(
                database.query_scalar(f"SELECT count(DISTINCT {name}) FROM {table}")
            )

        if sql_type.is_numeric:
            sql = _NUMERIC_TEMPLATE.render(table=table, column=name)
            record = database.query_dicts(sql)[0]
            result.columns.append(
                ColumnProfile(
                    name,
                    str(sql_type),
                    row_count,
                    int(record["non_null_count"]),
                    distinct,
                    min_value=record["min_value"],
                    max_value=record["max_value"],
                    mean=record["mean"],
                    stddev=record["stddev"],
                )
            )
        elif sql_type.name == "text":
            sql = _TEXT_TEMPLATE.render(table=table, column=name)
            record = database.query_dicts(sql)[0]
            result.columns.append(
                ColumnProfile(
                    name,
                    str(sql_type),
                    row_count,
                    int(record["non_null_count"]),
                    distinct,
                    min_length=record["min_length"],
                    max_length=record["max_length"],
                )
            )
        else:
            non_null = int(database.query_scalar(f"SELECT count({name}) FROM {table}"))
            minimum = database.query_scalar(f"SELECT min({name}) FROM {table}")
            maximum = database.query_scalar(f"SELECT max({name}) FROM {table}")
            result.columns.append(
                ColumnProfile(
                    name, str(sql_type), row_count, non_null, distinct,
                    min_value=minimum, max_value=maximum,
                )
            )
    return result
