"""Binary logistic regression via iteratively-reweighted least squares (Section 4.2).

This is the paper's canonical *multi-pass* method: each IRLS iteration is one
user-defined-aggregate pass over the data (``logregr_irls_step``), and a
Python driver function owns the outer loop, staging inter-iteration state in a
temporary table exactly as in Figure 3.  A stochastic-gradient solver is also
provided (the same update later generalized by the convex framework of
Section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy import stats as scipy_stats

from ..abstraction import LogRegrIRLSState, SymmetricPositiveDefiniteEigenDecomposition
from ..driver import IterationController, validate_column_type, validate_columns_exist, validate_table_exists
from ..errors import ConvergenceError, ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = [
    "LogisticRegressionResult",
    "install_logistic_regression",
    "train",
    "predict",
]


def _sigma(z: np.ndarray) -> np.ndarray:
    """The logistic function sigma(z) = 1 / (1 + exp(-z)), numerically clipped."""
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


@dataclass
class LogisticRegressionResult:
    """Fitted logistic-regression model with the usual inference statistics."""

    coef: np.ndarray
    log_likelihood: float
    std_err: np.ndarray
    z_stats: np.ndarray
    p_values: np.ndarray
    odds_ratios: np.ndarray
    condition_no: float
    num_rows: int
    num_iterations: int
    converged: bool

    def predict_probability(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return _sigma(features @ self.coef)

    def predict(self, features: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_probability(features) >= threshold).astype(np.int64)


# ---------------------------------------------------------------------------
# The per-iteration aggregate (one IRLS step)
# ---------------------------------------------------------------------------


def _irls_transition(state: LogRegrIRLSState, y: float, x, previous_coef) -> LogRegrIRLSState:
    vector = np.asarray(x, dtype=np.float64)
    if not state.is_initialized:
        coef = None if previous_coef is None else np.asarray(previous_coef, dtype=np.float64)
        state.initialize(vector.shape[0], coef)
    label = 1.0 if y else 0.0
    xb = float(vector @ state.coef)
    mu = float(_sigma(np.asarray([xb]))[0])
    weight = max(mu * (1.0 - mu), 1e-12)
    # Working response z = x.b + (y - mu) / w ; accumulate X^T D X and X^T D z.
    z = xb + (label - mu) / weight
    state.num_rows += 1
    state.x_trans_d_x += weight * np.outer(vector, vector)
    state.x_trans_d_z += weight * z * vector
    # Log-likelihood of the *previous* coefficients, used for convergence tests.
    state.log_likelihood += label * math.log(max(mu, 1e-300)) + (1.0 - label) * math.log(
        max(1.0 - mu, 1e-300)
    )
    return state


def _irls_merge(a: LogRegrIRLSState, b: LogRegrIRLSState) -> LogRegrIRLSState:
    return a.merge(b)


def _irls_final(state: LogRegrIRLSState) -> Optional[Dict[str, object]]:
    if state is None or not state.is_initialized or state.num_rows == 0:
        return None
    decomposition = SymmetricPositiveDefiniteEigenDecomposition(state.x_trans_d_x)
    inverse = decomposition.pseudo_inverse()
    new_coef = inverse @ state.x_trans_d_z
    return {
        "coef": new_coef,
        "previous_coef": state.coef,
        "log_likelihood": float(state.log_likelihood),
        "covariance_diag": np.diag(inverse),
        "condition_no": float(decomposition.condition_no()),
        "num_rows": int(state.num_rows),
    }


def install_logistic_regression(database, *, name: str = "logregr_irls_step") -> None:
    """Register the per-iteration IRLS aggregate (strict in y and x, not in the state)."""

    def transition(state, y, x, previous_coef):
        if y is None or x is None:
            return state
        return _irls_transition(state, y, x, previous_coef)

    definition = AggregateDefinition(
        name,
        transition,
        merge=_irls_merge,
        final=_irls_final,
        initial_state=LogRegrIRLSState,
        strict=False,
    )
    database.catalog.register_aggregate(definition)


# ---------------------------------------------------------------------------
# Driver function (the Figure 3 control flow)
# ---------------------------------------------------------------------------


def train(
    database,
    source_table: str,
    dependent_column: str = "y",
    independent_column: str = "x",
    *,
    max_iterations: int = 30,
    tolerance: float = 1e-6,
    fail_on_max_iterations: bool = False,
) -> LogisticRegressionResult:
    """Fit binary logistic regression with the IRLS driver pattern.

    The driver creates a temp table for inter-iteration state, runs
    ``SELECT logregr_irls_step(y, x, previous_coef) FROM source`` once per
    iteration, and stops when the coefficient update is below ``tolerance``
    (relative L2 norm) — the "did_converge" test of Figure 3.
    """
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    validate_column_type(database, source_table, independent_column, expect_array=True)
    install_logistic_regression(database)

    update_sql = (
        f"SELECT logregr_irls_step({dependent_column}, {independent_column}, %(previous_coef)s) "
        f"FROM {source_table}"
    )

    controller = IterationController(
        database,
        initial_state=None,
        max_iterations=max_iterations,
        temp_prefix="logregr_state",
        fail_on_max_iterations=fail_on_max_iterations,
    )
    previous_coef: Optional[np.ndarray] = None
    converged = False
    final_record: Optional[Dict[str, object]] = None
    with controller:
        for _ in range(max_iterations):
            record = controller.update(
                update_sql,
                {"previous_coef": None if previous_coef is None else previous_coef},
            )
            if record is None:
                raise ValidationError(f"table {source_table!r} has no usable rows")
            final_record = record
            new_coef = np.asarray(record["coef"], dtype=np.float64)
            if previous_coef is not None:
                denominator = max(float(np.linalg.norm(previous_coef)), 1e-12)
                if float(np.linalg.norm(new_coef - previous_coef)) / denominator < tolerance:
                    previous_coef = new_coef
                    converged = True
                    break
            previous_coef = new_coef
        iterations_run = controller.iteration

    if final_record is None:  # pragma: no cover - max_iterations >= 1 always yields one record
        raise ConvergenceError("no IRLS iterations were run")
    if not converged and fail_on_max_iterations:
        raise ConvergenceError(
            f"logistic regression did not converge in {max_iterations} iterations"
        )

    coef = np.asarray(final_record["coef"], dtype=np.float64)
    covariance_diag = np.asarray(final_record["covariance_diag"], dtype=np.float64)
    std_err = np.sqrt(np.clip(covariance_diag, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        z_stats = np.where(std_err > 0, coef / std_err, np.inf * np.sign(coef))
    p_values = 2.0 * scipy_stats.norm.sf(np.abs(z_stats))
    return LogisticRegressionResult(
        coef=coef,
        log_likelihood=float(final_record["log_likelihood"]),
        std_err=std_err,
        z_stats=z_stats,
        p_values=p_values,
        odds_ratios=np.exp(coef),
        condition_no=float(final_record["condition_no"]),
        num_rows=int(final_record["num_rows"]),
        num_iterations=iterations_run,
        converged=converged,
    )


def predict(
    database,
    model: LogisticRegressionResult,
    source_table: str,
    independent_column: str = "x",
    *,
    id_column: str = "id",
    threshold: float = 0.5,
) -> List[dict]:
    """Score a table in-database: probability and thresholded label per row."""
    validate_columns_exist(database, source_table, [independent_column, id_column])
    coef = model.coef

    def probability(x) -> float:
        return float(_sigma(np.asarray([np.dot(np.asarray(x, dtype=np.float64), coef)]))[0])

    database.create_function("logregr_probability", probability, return_type="double precision")
    return database.query_dicts(
        f"SELECT {id_column}, logregr_probability({independent_column}) AS probability, "
        f"logregr_probability({independent_column}) >= {threshold} AS prediction "
        f"FROM {source_table} ORDER BY {id_column}"
    )
