"""Support vector machines (Table 1, supervised learning).

MADlib's SVM is trained with incremental gradient descent — the same
aggregate-friendly online pattern the Wisconsin convex framework generalizes
(Section 5.1).  Each epoch is one user-defined-aggregate pass over the data
that folds the hinge-loss subgradient update into the model state; the driver
loops epochs and checks convergence.  Both linear classification and a simple
epsilon-insensitive regression variant are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..driver import IterationController, validate_column_type, validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = ["SVMModel", "install_svm", "train_classifier", "train_regressor", "predict"]


@dataclass
class SVMModel:
    """A linear SVM model: weights, bias and the training trace."""

    weights: np.ndarray
    bias: float
    num_iterations: int
    converged: bool
    loss_history: List[float] = field(default_factory=list)
    task: str = "classification"

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        if self.task == "classification":
            return np.where(scores >= 0.0, 1.0, -1.0)
        return scores


# ---------------------------------------------------------------------------
# Per-epoch aggregate: fold IGD updates over the rows of one scan
# ---------------------------------------------------------------------------


def _svm_epoch_transition(state, y, x, model_in, stepsize, regularization, epsilon):
    vector = np.asarray(x, dtype=np.float64)
    if state is None:
        if model_in is None:
            weights = np.zeros(vector.shape[0], dtype=np.float64)
            bias = 0.0
        else:
            model = np.asarray(model_in, dtype=np.float64)
            weights, bias = model[:-1].copy(), float(model[-1])
        state = {"weights": weights, "bias": bias, "n": 0, "loss": 0.0}
    weights, bias = state["weights"], state["bias"]
    label = float(y)
    margin = label * (float(vector @ weights) + bias)
    # Subgradient of (1/2)*lambda*||w||^2 + hinge loss for this example.
    step = float(stepsize)
    regularization = float(regularization)
    weights *= (1.0 - step * regularization)
    if epsilon is None:
        # Classification: hinge loss.
        if margin < 1.0:
            weights += step * label * vector
            state["bias"] = bias + step * label
            state["loss"] += 1.0 - margin
    else:
        # Regression: epsilon-insensitive loss.
        error = (float(vector @ weights) + bias) - label
        if abs(error) > float(epsilon):
            sign = 1.0 if error > 0 else -1.0
            weights -= step * sign * vector
            state["bias"] = bias - step * sign
            state["loss"] += abs(error) - float(epsilon)
    state["weights"] = weights
    state["n"] += 1
    return state


def _svm_epoch_merge(a, b):
    """Model averaging across segments (the parallelized-SGD scheme of [47])."""
    if a is None:
        return b
    if b is None:
        return a
    total = a["n"] + b["n"]
    if total == 0:
        return a
    weight_a = a["n"] / total
    weight_b = b["n"] / total
    a["weights"] = weight_a * a["weights"] + weight_b * b["weights"]
    a["bias"] = weight_a * a["bias"] + weight_b * b["bias"]
    a["loss"] += b["loss"]
    a["n"] = total
    return a


def _svm_epoch_final(state):
    if state is None:
        return None
    return {
        "model": np.concatenate([state["weights"], [state["bias"]]]),
        "loss": float(state["loss"]),
        "n": int(state["n"]),
    }


def install_svm(database) -> None:
    """Register the per-epoch IGD aggregate."""

    def transition(state, y, x, model_in, stepsize, regularization, epsilon):
        if y is None or x is None:
            return state
        return _svm_epoch_transition(state, y, x, model_in, stepsize, regularization, epsilon)

    database.catalog.register_aggregate(
        AggregateDefinition(
            "svm_igd_epoch",
            transition,
            merge=_svm_epoch_merge,
            final=_svm_epoch_final,
            initial_state=None,
            strict=False,
        )
    )


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _train(
    database,
    source_table: str,
    dependent_column: str,
    independent_column: str,
    *,
    epsilon: Optional[float],
    max_iterations: int,
    stepsize: float,
    regularization: float,
    decay: float,
    tolerance: float,
) -> SVMModel:
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    validate_column_type(database, source_table, independent_column, expect_array=True)
    install_svm(database)

    update_sql = (
        f"SELECT svm_igd_epoch({dependent_column}, {independent_column}, "
        f"%(model)s, %(stepsize)s, %(regularization)s, %(epsilon)s) FROM {source_table}"
    )
    model: Optional[np.ndarray] = None
    loss_history: List[float] = []
    converged = False
    iterations = 0
    current_step = stepsize
    controller = IterationController(
        database, max_iterations=max_iterations, temp_prefix="svm_state",
        fail_on_max_iterations=False,
    )
    with controller:
        previous_loss = None
        for _ in range(max_iterations):
            record = controller.update(
                update_sql,
                {
                    "model": model,
                    "stepsize": current_step,
                    "regularization": regularization,
                    "epsilon": epsilon,
                },
            )
            if record is None:
                raise ValidationError(f"table {source_table!r} has no usable rows")
            model = np.asarray(record["model"], dtype=np.float64)
            loss = float(record["loss"]) / max(int(record["n"]), 1)
            loss_history.append(loss)
            iterations += 1
            current_step *= decay
            if previous_loss is not None and abs(previous_loss - loss) < tolerance:
                converged = True
                break
            previous_loss = loss

    return SVMModel(
        weights=model[:-1],
        bias=float(model[-1]),
        num_iterations=iterations,
        converged=converged,
        loss_history=loss_history,
        task="classification" if epsilon is None else "regression",
    )


def train_classifier(
    database,
    source_table: str,
    dependent_column: str = "y",
    independent_column: str = "x",
    *,
    max_iterations: int = 30,
    stepsize: float = 0.1,
    regularization: float = 1e-3,
    decay: float = 0.9,
    tolerance: float = 1e-4,
) -> SVMModel:
    """Train a linear SVM classifier (labels must be -1 / +1)."""
    return _train(
        database, source_table, dependent_column, independent_column,
        epsilon=None, max_iterations=max_iterations, stepsize=stepsize,
        regularization=regularization, decay=decay, tolerance=tolerance,
    )


def train_regressor(
    database,
    source_table: str,
    dependent_column: str = "y",
    independent_column: str = "x",
    *,
    epsilon: float = 0.1,
    max_iterations: int = 30,
    stepsize: float = 0.05,
    regularization: float = 1e-3,
    decay: float = 0.9,
    tolerance: float = 1e-4,
) -> SVMModel:
    """Train an epsilon-insensitive linear SVM regressor."""
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    return _train(
        database, source_table, dependent_column, independent_column,
        epsilon=epsilon, max_iterations=max_iterations, stepsize=stepsize,
        regularization=regularization, decay=decay, tolerance=tolerance,
    )


def predict(
    database,
    model: SVMModel,
    source_table: str,
    independent_column: str = "x",
    *,
    id_column: str = "id",
) -> List[dict]:
    """Score a table in-database with a fitted SVM model."""
    validate_columns_exist(database, source_table, [independent_column, id_column])
    weights, bias = model.weights, model.bias

    def score(x) -> float:
        return float(np.dot(np.asarray(x, dtype=np.float64), weights) + bias)

    database.create_function("svm_score", score, return_type="double precision")
    return database.query_dicts(
        f"SELECT {id_column}, svm_score({independent_column}) AS score, "
        f"CASE WHEN svm_score({independent_column}) >= 0 THEN 1 ELSE -1 END AS prediction "
        f"FROM {source_table} ORDER BY {id_column}"
    )
