"""Naive Bayes classification (Table 1, supervised learning).

MADlib's naive Bayes trains by pure SQL aggregation: class priors are a
``GROUP BY`` on the class column, and per-feature statistics are grouped
aggregates.  This module supports Gaussian features (numeric vectors stored in
a ``double precision[]`` column) and categorical features (text columns),
with Laplace smoothing for the categorical case.  Training is executed as SQL
against the engine; scoring installs a UDF so classification also happens
in-database.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..driver import validate_column_type, validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = ["GaussianNaiveBayesModel", "CategoricalNaiveBayesModel", "train_gaussian", "train_categorical"]


@dataclass
class GaussianNaiveBayesModel:
    """Per-class priors, feature means and variances for numeric features."""

    classes: List[object]
    priors: np.ndarray
    means: np.ndarray      # shape (num_classes, num_features)
    variances: np.ndarray  # shape (num_classes, num_features)

    def log_likelihoods(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        scores = np.zeros((features.shape[0], len(self.classes)))
        for class_index in range(len(self.classes)):
            mean = self.means[class_index]
            variance = np.clip(self.variances[class_index], 1e-9, None)
            log_pdf = -0.5 * (np.log(2 * np.pi * variance) + (features - mean) ** 2 / variance)
            scores[:, class_index] = np.log(self.priors[class_index]) + log_pdf.sum(axis=1)
        return scores

    def predict(self, features: np.ndarray) -> List[object]:
        scores = self.log_likelihoods(features)
        return [self.classes[int(index)] for index in np.argmax(scores, axis=1)]

    def predict_one(self, feature_vector) -> object:
        return self.predict(np.atleast_2d(np.asarray(feature_vector, dtype=np.float64)))[0]


@dataclass
class CategoricalNaiveBayesModel:
    """Priors and smoothed conditional probabilities for categorical features."""

    classes: List[object]
    priors: Dict[object, float]
    #: conditional[(feature_name, feature_value, class)] = P(value | class)
    conditional: Dict[Tuple[str, object, object], float]
    feature_names: List[str]
    smoothing: float
    #: Number of distinct values per feature (for unseen-value smoothing).
    value_counts: Dict[str, int] = field(default_factory=dict)
    class_counts: Dict[object, int] = field(default_factory=dict)

    def predict_one(self, feature_values: Dict[str, object]) -> object:
        best_class, best_score = None, -math.inf
        for cls in self.classes:
            score = math.log(self.priors[cls])
            for feature in self.feature_names:
                value = feature_values.get(feature)
                probability = self.conditional.get((feature, value, cls))
                if probability is None:
                    distinct = self.value_counts.get(feature, 1)
                    probability = self.smoothing / (
                        self.class_counts.get(cls, 0) + self.smoothing * (distinct + 1)
                    )
                score += math.log(probability)
            if score > best_score:
                best_class, best_score = cls, score
        return best_class

    def predict(self, rows: Sequence[Dict[str, object]]) -> List[object]:
        return [self.predict_one(row) for row in rows]


# ---------------------------------------------------------------------------
# Gaussian training (array feature column)
# ---------------------------------------------------------------------------


def _gauss_transition(state, x):
    vector = np.asarray(x, dtype=np.float64)
    if state is None:
        state = {"n": 0, "sum": np.zeros_like(vector), "sum_sq": np.zeros_like(vector)}
    state["n"] += 1
    state["sum"] += vector
    state["sum_sq"] += vector * vector
    return state


def _gauss_merge(a, b):
    if a is None:
        return b
    if b is None:
        return a
    a["n"] += b["n"]
    a["sum"] += b["sum"]
    a["sum_sq"] += b["sum_sq"]
    return a


def train_gaussian(
    database,
    source_table: str,
    class_column: str = "y",
    features_column: str = "x",
    *,
    variance_floor: float = 1e-9,
) -> GaussianNaiveBayesModel:
    """Train Gaussian naive Bayes with one grouped aggregate pass."""
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [class_column, features_column])
    validate_column_type(database, source_table, features_column, expect_array=True)
    database.catalog.register_aggregate(
        AggregateDefinition(
            "nb_gauss_stats",
            _gauss_transition,
            merge=_gauss_merge,
            initial_state=None,
            strict=True,
        )
    )
    records = database.query_dicts(
        f"SELECT {class_column} AS class, count(*) AS n, nb_gauss_stats({features_column}) AS stats "
        f"FROM {source_table} GROUP BY {class_column} ORDER BY {class_column}"
    )
    if not records:
        raise ValidationError(f"table {source_table!r} has no rows")
    total = sum(int(record["n"]) for record in records)
    classes = [record["class"] for record in records]
    num_features = len(np.asarray(records[0]["stats"]["sum"]))
    priors = np.zeros(len(classes))
    means = np.zeros((len(classes), num_features))
    variances = np.zeros((len(classes), num_features))
    for index, record in enumerate(records):
        n = int(record["n"])
        stats = record["stats"]
        priors[index] = n / total
        means[index] = np.asarray(stats["sum"]) / n
        variances[index] = np.clip(
            np.asarray(stats["sum_sq"]) / n - means[index] ** 2, variance_floor, None
        )
    return GaussianNaiveBayesModel(classes, priors, means, variances)


# ---------------------------------------------------------------------------
# Categorical training (one text/integer column per feature)
# ---------------------------------------------------------------------------


def train_categorical(
    database,
    source_table: str,
    class_column: str,
    feature_columns: Sequence[str],
    *,
    smoothing: float = 1.0,
) -> CategoricalNaiveBayesModel:
    """Train categorical naive Bayes with Laplace smoothing, all counting in SQL."""
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [class_column, *feature_columns])
    if smoothing < 0:
        raise ValidationError("smoothing must be non-negative")

    class_rows = database.query_dicts(
        f"SELECT {class_column} AS class, count(*) AS n FROM {source_table} "
        f"GROUP BY {class_column} ORDER BY {class_column}"
    )
    if not class_rows:
        raise ValidationError(f"table {source_table!r} has no rows")
    total = sum(int(row["n"]) for row in class_rows)
    classes = [row["class"] for row in class_rows]
    class_counts = {row["class"]: int(row["n"]) for row in class_rows}
    priors = {cls: count / total for cls, count in class_counts.items()}

    conditional: Dict[Tuple[str, object, object], float] = {}
    value_counts: Dict[str, int] = {}
    for feature in feature_columns:
        distinct = int(
            database.query_scalar(f"SELECT count(DISTINCT {feature}) FROM {source_table}")
        )
        value_counts[feature] = distinct
        rows = database.query_dicts(
            f"SELECT {class_column} AS class, {feature} AS value, count(*) AS n "
            f"FROM {source_table} GROUP BY {class_column}, {feature}"
        )
        for row in rows:
            cls = row["class"]
            numerator = int(row["n"]) + smoothing
            denominator = class_counts[cls] + smoothing * distinct
            conditional[(feature, row["value"], cls)] = numerator / denominator

    return CategoricalNaiveBayesModel(
        classes=classes,
        priors=priors,
        conditional=conditional,
        feature_names=list(feature_columns),
        smoothing=smoothing,
        value_counts=value_counts,
        class_counts=class_counts,
    )
