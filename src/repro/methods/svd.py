"""SVD matrix factorization (Table 1, unsupervised learning).

Two entry points, matching how MADlib exposes factorization:

* :func:`truncated_svd` — rank-r SVD of a matrix stored as blocked chunks in
  a table (the Section 3.1 "macro-programming" representation), computed by
  block power iteration with deflation so only block-vector products are ever
  formed.
* :func:`factorize_ratings` — low-rank factorization of a sparse ratings
  table by alternating least squares (the "Recommendation" objective of
  Table 2 solved directly), useful as the collaborative-filtering workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ConvergenceError, ValidationError
from ..support.matrix_ops import BlockedMatrix

__all__ = ["SVDResult", "FactorizationResult", "truncated_svd", "truncated_svd_table", "factorize_ratings"]


@dataclass
class SVDResult:
    """Rank-r singular value decomposition ``A ~= U diag(s) V^T``."""

    u: np.ndarray
    singular_values: np.ndarray
    v: np.ndarray
    iterations: int

    def reconstruct(self) -> np.ndarray:
        return self.u @ np.diag(self.singular_values) @ self.v.T

    def relative_error(self, matrix: np.ndarray) -> float:
        matrix = np.asarray(matrix, dtype=np.float64)
        return float(np.linalg.norm(matrix - self.reconstruct()) / max(np.linalg.norm(matrix), 1e-12))


@dataclass
class FactorizationResult:
    """Low-rank factors for a sparse ratings matrix."""

    user_factors: np.ndarray
    item_factors: np.ndarray
    train_rmse: float
    iterations: int

    def predict(self, user: int, item: int) -> float:
        return float(self.user_factors[user] @ self.item_factors[item])


def truncated_svd(
    matrix: np.ndarray,
    rank: int,
    *,
    block_size: int = 64,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
    seed: Optional[int] = None,
) -> SVDResult:
    """Rank-``rank`` SVD via block power iteration with deflation.

    The matrix is partitioned into blocks (the in-memory analog of the
    chunked table representation); only block-vector products are computed.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("truncated_svd expects a 2-D matrix")
    if rank < 1 or rank > min(matrix.shape):
        raise ValidationError("rank must be between 1 and min(matrix.shape)")
    blocked = BlockedMatrix.from_dense(matrix, block_size)
    blocked_t = blocked.transpose()
    rng = np.random.default_rng(seed)

    singular_values: List[float] = []
    left_vectors: List[np.ndarray] = []
    right_vectors: List[np.ndarray] = []
    total_iterations = 0
    for _ in range(rank):
        v = rng.normal(size=matrix.shape[1])
        v /= np.linalg.norm(v)
        sigma_previous = 0.0
        for iteration in range(max_iterations):
            total_iterations += 1
            # Deflate previously-found components.
            for s, u_vec, v_vec in zip(singular_values, left_vectors, right_vectors):
                v -= (v_vec @ v) * v_vec
            u = blocked.multiply_vector(v)
            for s, u_vec, v_vec in zip(singular_values, left_vectors, right_vectors):
                u -= (u_vec @ u) * u_vec
            sigma = float(np.linalg.norm(u))
            if sigma <= 1e-14:
                break
            u /= sigma
            v_new = blocked_t.multiply_vector(u)
            sigma = float(np.linalg.norm(v_new))
            if sigma <= 1e-14:
                break
            v = v_new / sigma
            if abs(sigma - sigma_previous) <= tolerance * max(sigma, 1.0):
                break
            sigma_previous = sigma
        singular_values.append(sigma)
        left_vectors.append(u)
        right_vectors.append(v)

    return SVDResult(
        u=np.column_stack(left_vectors),
        singular_values=np.asarray(singular_values, dtype=np.float64),
        v=np.column_stack(right_vectors),
        iterations=total_iterations,
    )


def truncated_svd_table(
    database,
    table_name: str,
    num_rows: int,
    num_cols: int,
    rank: int,
    *,
    block_size: int = 64,
    **kwargs,
) -> SVDResult:
    """Rank-r SVD of a matrix stored as blocks in a database table.

    The table must have been written by :meth:`BlockedMatrix.store`; blocks are
    streamed out of the table and the factorization runs over them, which is
    the chunked dataflow the macro-programming section describes.
    """
    validate_table_exists(database, table_name)
    blocked = BlockedMatrix.load(database, table_name, num_rows, num_cols, block_size)
    return truncated_svd(blocked.to_dense(), rank, block_size=block_size, **kwargs)


def factorize_ratings(
    database,
    ratings_table: str,
    *,
    rank: int = 8,
    regularization: float = 0.05,
    max_iterations: int = 20,
    tolerance: float = 1e-4,
    user_column: str = "user_id",
    item_column: str = "item_id",
    rating_column: str = "rating",
    seed: Optional[int] = None,
) -> FactorizationResult:
    """Alternating least squares over a sparse ``(user, item, rating)`` table."""
    validate_table_exists(database, ratings_table)
    validate_columns_exist(database, ratings_table, [user_column, item_column, rating_column])
    rows = database.query_dicts(
        f"SELECT {user_column} AS u, {item_column} AS i, {rating_column} AS r FROM {ratings_table}"
    )
    if not rows:
        raise ValidationError(f"ratings table {ratings_table!r} is empty")
    num_users = max(int(row["u"]) for row in rows) + 1
    num_items = max(int(row["i"]) for row in rows) + 1
    rng = np.random.default_rng(seed)
    user_factors = rng.normal(scale=0.1, size=(num_users, rank))
    item_factors = rng.normal(scale=0.1, size=(num_items, rank))

    by_user: dict = {}
    by_item: dict = {}
    for row in rows:
        by_user.setdefault(int(row["u"]), []).append((int(row["i"]), float(row["r"])))
        by_item.setdefault(int(row["i"]), []).append((int(row["u"]), float(row["r"])))

    identity = regularization * np.eye(rank)
    previous_rmse = None
    rmse = float("inf")
    iterations = 0
    for iteration in range(max_iterations):
        iterations = iteration + 1
        for user, items in by_user.items():
            item_matrix = item_factors[[i for i, _ in items]]
            targets = np.asarray([r for _, r in items])
            user_factors[user] = np.linalg.solve(
                item_matrix.T @ item_matrix + identity, item_matrix.T @ targets
            )
        for item, users in by_item.items():
            user_matrix = user_factors[[u for u, _ in users]]
            targets = np.asarray([r for _, r in users])
            item_factors[item] = np.linalg.solve(
                user_matrix.T @ user_matrix + identity, user_matrix.T @ targets
            )
        squared_error = 0.0
        for row in rows:
            prediction = float(user_factors[int(row["u"])] @ item_factors[int(row["i"])])
            squared_error += (prediction - float(row["r"])) ** 2
        rmse = float(np.sqrt(squared_error / len(rows)))
        if previous_rmse is not None and abs(previous_rmse - rmse) < tolerance:
            break
        previous_rmse = rmse

    return FactorizationResult(user_factors, item_factors, rmse, iterations)
