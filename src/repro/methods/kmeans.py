"""k-means clustering (Section 4.3): large-state iteration.

Lloyd's algorithm implemented the way the paper describes: a driver function
iterates, and each iteration is one pass of a user-defined aggregate whose
transition function finds the closest centroid for a point (using the
*inter*-iteration state — the previous centroids) and updates that centroid's
running barycenter in the *intra*-iteration state.  Two assignment strategies
are provided, matching the Section 4.3.1 discussion:

``implicit``
    Assignments are never stored; the convergence test recomputes the closest
    centroid under both the old and the new positions (two closest-centroid
    computations per point per iteration).
``explicit``
    A ``centroid_id`` column on the points table is refreshed each iteration
    with ``UPDATE points SET centroid_id = closest_column(centroids, coords)``,
    halving the closest-centroid computations at the cost of a second pass
    over the data (PostgreSQL processes statements one at a time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..driver import validate_column_type, validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..engine.aggregates import AggregateDefinition

__all__ = ["KMeansResult", "install_kmeans", "train", "assign"]


@dataclass
class KMeansResult:
    """Fitted centroids plus the per-iteration trace."""

    centroids: np.ndarray
    objective: float
    num_iterations: int
    converged: bool
    assignment_strategy: str
    objective_history: List[float] = field(default_factory=list)
    reassignments_history: List[int] = field(default_factory=list)

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


def _closest(centroids: np.ndarray, point: np.ndarray) -> int:
    diffs = centroids - point
    return int(np.argmin(np.einsum("ij,ij->i", diffs, diffs)))


def _kmeans_step_transition(state, coords, centroids_flat, k):
    """Accumulate per-centroid sums and counts for one point."""
    point = np.asarray(coords, dtype=np.float64)
    k = int(k)
    centroids = np.asarray(centroids_flat, dtype=np.float64).reshape(k, point.shape[0])
    if state is None:
        state = {
            "sums": np.zeros((k, point.shape[0]), dtype=np.float64),
            "counts": np.zeros(k, dtype=np.int64),
            "objective": 0.0,
        }
    index = _closest(centroids, point)
    state["sums"][index] += point
    state["counts"][index] += 1
    difference = point - centroids[index]
    state["objective"] += float(difference @ difference)
    return state


def _kmeans_step_merge(a, b):
    if a is None:
        return b
    if b is None:
        return a
    a["sums"] += b["sums"]
    a["counts"] += b["counts"]
    a["objective"] += b["objective"]
    return a


def _kmeans_step_final(state):
    if state is None:
        return None
    return {
        "sums": state["sums"],
        "counts": state["counts"],
        "objective": float(state["objective"]),
    }


def install_kmeans(database) -> None:
    """Register the per-iteration aggregate and the ``closest_column`` helper UDF."""
    database.catalog.register_aggregate(
        AggregateDefinition(
            "kmeans_step",
            _kmeans_step_transition,
            merge=_kmeans_step_merge,
            final=_kmeans_step_final,
            initial_state=None,
            strict=True,
        )
    )
    # closest_column(a, b) is installed among the engine builtins already; the
    # variant here takes the centroid matrix flattened row-major plus k.
    def closest_row(centroids_flat, k, point) -> int:
        point = np.asarray(point, dtype=np.float64)
        centroids = np.asarray(centroids_flat, dtype=np.float64).reshape(int(k), point.shape[0])
        return _closest(centroids, point)

    database.create_function("kmeans_closest_centroid", closest_row, return_type="integer")


# ---------------------------------------------------------------------------
# Seeding
# ---------------------------------------------------------------------------


def _seed_centroids(points: np.ndarray, k: int, method: str, rng: np.random.Generator) -> np.ndarray:
    if method == "random":
        indices = rng.choice(points.shape[0], size=k, replace=False)
        return points[indices].copy()
    if method == "kmeans++":
        centroids = [points[int(rng.integers(points.shape[0]))]]
        for _ in range(1, k):
            distances = np.min(
                np.stack([np.einsum("ij,ij->i", points - c, points - c) for c in centroids]),
                axis=0,
            )
            total = float(distances.sum())
            if total <= 0:
                centroids.append(points[int(rng.integers(points.shape[0]))])
                continue
            probabilities = distances / total
            centroids.append(points[int(rng.choice(points.shape[0], p=probabilities))])
        return np.asarray(centroids, dtype=np.float64)
    raise ValidationError(f"unknown seeding method {method!r}; use 'random' or 'kmeans++'")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def train(
    database,
    source_table: str,
    coords_column: str = "coords",
    *,
    k: int = 3,
    max_iterations: int = 50,
    min_reassignment_fraction: float = 0.001,
    seeding: str = "kmeans++",
    assignment_strategy: str = "implicit",
    centroid_id_column: str = "centroid_id",
    seed: Optional[int] = None,
) -> KMeansResult:
    """Run Lloyd's algorithm over a points table.

    ``assignment_strategy`` selects between the implicit (recompute) and
    explicit (UPDATE a ``centroid_id`` column) variants discussed in
    Section 4.3.1.
    """
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, [coords_column])
    validate_column_type(database, source_table, coords_column, expect_array=True)
    if assignment_strategy not in ("implicit", "explicit"):
        raise ValidationError("assignment_strategy must be 'implicit' or 'explicit'")
    if k < 1:
        raise ValidationError("k must be at least 1")
    num_rows = database.query_scalar(f"SELECT count(*) FROM {source_table}")
    if num_rows < k:
        raise ValidationError(f"cannot fit {k} clusters to {num_rows} points")
    if assignment_strategy == "explicit":
        validate_columns_exist(database, source_table, [centroid_id_column])

    install_kmeans(database)
    rng = np.random.default_rng(seed)
    # Seeding phase runs on a sample pulled to the driver; the sample (and the
    # k centroids) are small, which is the paper's assumption that "we can
    # always comfortably store k centroids in main memory".
    sample = database.execute(
        f"SELECT {coords_column} FROM {source_table} LIMIT 10000"
    ).column(coords_column)
    points_sample = np.asarray([np.asarray(p, dtype=np.float64) for p in sample])
    centroids = _seed_centroids(points_sample, k, seeding, rng)
    dimension = centroids.shape[1]

    if assignment_strategy == "explicit":
        _refresh_assignments(database, source_table, coords_column, centroid_id_column, centroids)

    objective_history: List[float] = []
    reassignment_history: List[int] = []
    converged = False
    iterations = 0
    previous_assign_counts: Optional[np.ndarray] = None

    for iteration in range(max_iterations):
        iterations = iteration + 1
        record = database.query_scalar(
            f"SELECT kmeans_step({coords_column}, %(centroids)s, %(k)s) FROM {source_table}",
            {"centroids": centroids.ravel(), "k": k},
        )
        sums = np.asarray(record["sums"], dtype=np.float64)
        counts = np.asarray(record["counts"], dtype=np.int64)
        objective_history.append(float(record["objective"]))
        new_centroids = centroids.copy()
        for index in range(k):
            if counts[index] > 0:
                new_centroids[index] = sums[index] / counts[index]
            else:
                # Re-seed an empty centroid at a random sampled point.
                new_centroids[index] = points_sample[int(rng.integers(points_sample.shape[0]))]

        # Convergence: count reassignments.
        if assignment_strategy == "explicit":
            reassigned = _count_reassignments_explicit(
                database, source_table, coords_column, centroid_id_column, new_centroids
            )
            _refresh_assignments(
                database, source_table, coords_column, centroid_id_column, new_centroids
            )
        else:
            reassigned = _count_reassignments_implicit(
                database, source_table, coords_column, centroids, new_centroids
            )
        reassignment_history.append(reassigned)
        centroids = new_centroids
        if reassigned <= min_reassignment_fraction * num_rows:
            converged = True
            break

    final_record = database.query_scalar(
        f"SELECT kmeans_step({coords_column}, %(centroids)s, %(k)s) FROM {source_table}",
        {"centroids": centroids.ravel(), "k": k},
    )
    return KMeansResult(
        centroids=centroids,
        objective=float(final_record["objective"]),
        num_iterations=iterations,
        converged=converged,
        assignment_strategy=assignment_strategy,
        objective_history=objective_history,
        reassignments_history=reassignment_history,
    )


def _refresh_assignments(database, source_table, coords_column, centroid_id_column, centroids) -> None:
    """The explicit-strategy UPDATE from Section 4.3.1."""
    database.execute(
        f"UPDATE {source_table} SET {centroid_id_column} = "
        f"kmeans_closest_centroid(%(centroids)s, %(k)s, {coords_column})",
        {"centroids": centroids.ravel(), "k": centroids.shape[0]},
    )


def _count_reassignments_explicit(
    database, source_table, coords_column, centroid_id_column, new_centroids
) -> int:
    """One closest-centroid computation per point: compare with the stored id."""
    return int(
        database.query_scalar(
            f"SELECT count(*) FROM {source_table} WHERE {centroid_id_column} != "
            f"kmeans_closest_centroid(%(centroids)s, %(k)s, {coords_column})",
            {"centroids": new_centroids.ravel(), "k": new_centroids.shape[0]},
        )
    )


def _count_reassignments_implicit(
    database, source_table, coords_column, old_centroids, new_centroids
) -> int:
    """Two closest-centroid computations per point (old and new positions)."""
    return int(
        database.query_scalar(
            f"SELECT count(*) FROM {source_table} WHERE "
            f"kmeans_closest_centroid(%(old)s, %(k)s, {coords_column}) != "
            f"kmeans_closest_centroid(%(new)s, %(k)s, {coords_column})",
            {
                "old": old_centroids.ravel(),
                "new": new_centroids.ravel(),
                "k": new_centroids.shape[0],
            },
        )
    )


def assign(
    database,
    result: KMeansResult,
    source_table: str,
    coords_column: str = "coords",
    *,
    id_column: str = "id",
) -> List[dict]:
    """Return the cluster assignment of every row under a fitted model."""
    validate_columns_exist(database, source_table, [coords_column, id_column])
    install_kmeans(database)
    return database.query_dicts(
        f"SELECT {id_column}, kmeans_closest_centroid(%(centroids)s, %(k)s, {coords_column}) "
        f"AS cluster_id FROM {source_table} ORDER BY {id_column}",
        {"centroids": result.centroids.ravel(), "k": result.k},
    )
