"""A from-scratch, in-memory parallel SQL engine: the substrate MADlib runs on.

The engine plays the role PostgreSQL / Greenplum play in the paper: it parses
and executes a practical subset of SQL, supports user-defined scalar
functions and user-defined aggregates (transition / merge / final), stores
tables hash-distributed across shared-nothing *segments*, and exposes the
catalog introspection that templated queries need.
"""

from .aggregates import AggregateDefinition, AggregateRunner, builtin_aggregates
from .catalog import Catalog
from .database import Database, connect
from .faults import FaultInjector
from .functions import FunctionDefinition, builtin_functions
from .index import BaseIndex, HashIndex, SortedIndex
from .parallel import SegmentWorkerPool, WorkerPoolError
from .planner import ColumnStatistics, TableStatistics, collect_table_statistics
from .result import ResultSet
from .schema import Column, Schema
from .segments import AggregateTimings, ExecutionStats, JoinStep, ScanDetail, SegmentedAggregator
from .table import Table
from .types import (
    ANY,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    DOUBLE_ARRAY,
    INTEGER,
    INTEGER_ARRAY,
    TEXT,
    TEXT_ARRAY,
    SQLType,
    type_from_name,
)

__all__ = [
    "Database",
    "connect",
    "Catalog",
    "Table",
    "Schema",
    "Column",
    "ResultSet",
    "FunctionDefinition",
    "AggregateDefinition",
    "AggregateRunner",
    "SegmentedAggregator",
    "SegmentWorkerPool",
    "WorkerPoolError",
    "FaultInjector",
    "AggregateTimings",
    "ExecutionStats",
    "ScanDetail",
    "JoinStep",
    "BaseIndex",
    "HashIndex",
    "SortedIndex",
    "ColumnStatistics",
    "TableStatistics",
    "collect_table_statistics",
    "builtin_functions",
    "builtin_aggregates",
    "SQLType",
    "type_from_name",
    "ANY",
    "BIGINT",
    "BOOLEAN",
    "DOUBLE",
    "DOUBLE_ARRAY",
    "INTEGER",
    "INTEGER_ARRAY",
    "TEXT",
    "TEXT_ARRAY",
]
