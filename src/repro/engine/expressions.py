"""Expression AST and evaluator.

Expressions are shared between the SQL parser (which builds them from text)
and programmatic callers (driver code may build them directly).  Evaluation
happens against a :class:`RowContext` mapping column names to values plus the
catalog's function registry; aggregate calls are *not* evaluated here — the
executor replaces them with pre-computed values (see
:mod:`repro.engine.executor`), which mirrors how a database separates scalar
expression evaluation from aggregation.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError, FunctionError
from .types import is_null, values_equal

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "WindowCall",
    "WindowSpec",
    "CaseExpr",
    "ArrayLiteral",
    "Subscript",
    "Cast",
    "InList",
    "IsNull",
    "Between",
    "RowContext",
    "like_match",
    "like_regex",
]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, context: "RowContext") -> Any:
        raise NotImplementedError

    def children(self) -> List["Expression"]:
        return []

    def walk(self) -> Iterable["Expression"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def contains_aggregate(self, is_aggregate: Callable[[str], bool]) -> bool:
        """Whether any function call in the tree names a known aggregate."""
        for node in self.walk():
            if isinstance(node, FunctionCall) and is_aggregate(node.name):
                return True
        return False

    def column_references(self) -> List["ColumnRef"]:
        return [node for node in self.walk() if isinstance(node, ColumnRef)]


class RowContext:
    """Evaluation context: one row's values plus the function registry.

    Column values are looked up first by qualified name (``alias.column``)
    then by bare column name.  Aggregate results computed by the executor are
    injected under synthetic keys via :meth:`with_values`.
    """

    def __init__(
        self,
        values: Dict[str, Any],
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
        parameters: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.values = values
        self.functions = functions or {}
        self.parameters = parameters or {}

    def with_values(self, extra: Dict[str, Any]) -> "RowContext":
        merged = dict(self.values)
        merged.update(extra)
        return RowContext(merged, self.functions, self.parameters)

    def lookup(self, name: str, qualifier: Optional[str] = None) -> Any:
        if qualifier is not None:
            key = f"{qualifier.lower()}.{name.lower()}"
            if key in self.values:
                return self.values[key]
            raise ExecutionError(f"column {qualifier}.{name} not found in row")
        key = name.lower()
        if key in self.values:
            return self.values[key]
        # Fall back to any qualified match (unambiguous bare reference).
        matches = [k for k in self.values if k.endswith("." + key)]
        if len(matches) == 1:
            return self.values[matches[0]]
        if len(matches) > 1:
            raise ExecutionError(f"column reference {name!r} is ambiguous")
        raise ExecutionError(f"column {name!r} not found in row")

    def call(self, name: str, args: Sequence[Any]) -> Any:
        try:
            func = self.functions[name.lower()]
        except KeyError:
            raise FunctionError(f"function {name!r} does not exist") from None
        return func(*args)


# ---------------------------------------------------------------------------
# Leaf nodes
# ---------------------------------------------------------------------------


@dataclass
class Literal(Expression):
    value: Any

    def evaluate(self, context: RowContext) -> Any:
        return self.value


@dataclass
class ColumnRef(Expression):
    name: str
    qualifier: Optional[str] = None

    def evaluate(self, context: RowContext) -> Any:
        return context.lookup(self.name, self.qualifier)

    @property
    def qualified_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass
class Star(Expression):
    """``*`` or ``alias.*`` in a select list (expanded by the executor)."""

    qualifier: Optional[str] = None

    def evaluate(self, context: RowContext) -> Any:  # pragma: no cover - expanded earlier
        raise ExecutionError("'*' cannot be evaluated as a scalar expression")


@dataclass
class Parameter(Expression):
    """A named parameter (``%(name)s`` style) bound at execution time.

    Driver functions use parameters instead of string interpolation for
    values, which avoids quoting problems when templating SQL.
    """

    name: str

    def evaluate(self, context: RowContext) -> Any:
        if self.name not in context.parameters:
            raise ExecutionError(f"parameter {self.name!r} was not bound")
        return context.parameters[self.name]


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def _numeric_binary(op: Callable[[Any, Any], Any], symbol: str):
    def apply(left: Any, right: Any) -> Any:
        if is_null(left) or is_null(right):
            return None
        if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
            return op(np.asarray(left, dtype=np.float64), np.asarray(right, dtype=np.float64))
        try:
            return op(left, right)
        except TypeError as exc:
            raise ExecutionError(f"operator {symbol} not supported for {left!r}, {right!r}") from exc

    return apply


def _divide(left: Any, right: Any) -> Any:
    if is_null(left) or is_null(right):
        return None
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return np.asarray(left, dtype=np.float64) / np.asarray(right, dtype=np.float64)
    if right == 0:
        raise ExecutionError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        # PostgreSQL integer division truncates; methods that need a real
        # quotient cast one operand to double precision, and so do we.
        return left // right
    return left / right


def _comparison(op: Callable[[Any, Any], bool]):
    def apply(left: Any, right: Any) -> Optional[bool]:
        if is_null(left) or is_null(right):
            return None
        if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
            if op is operator.eq:
                return values_equal(left, right)
            if op is operator.ne:
                return not values_equal(left, right)
        return bool(op(left, right))

    return apply


def _logical_and(left: Any, right: Any) -> Optional[bool]:
    # SQL three-valued logic.
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _logical_or(left: Any, right: Any) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def like_regex(pattern: str) -> "re.Pattern":
    """Compiled regex for a SQL ``LIKE`` pattern (``%``/``_`` wildcards).

    Separate from :func:`like_match` so the expression compiler can hoist
    regex construction to plan time when the pattern is a literal.
    """
    import re

    regex = "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
    # re.escape escapes % and _ themselves; undo that.
    regex = regex.replace(re.escape("%"), ".*").replace(re.escape("_"), ".")
    return re.compile(regex)


def like_match(text: Any, pattern: Any) -> Optional[bool]:
    """SQL ``LIKE``: ``%``/``_`` wildcards, NULL-propagating.

    Shared by the interpreted evaluator and the compiled closures in
    :mod:`repro.engine.compile` so the two tiers cannot drift.
    """
    if is_null(text) or is_null(pattern):
        return None
    return like_regex(pattern).match(str(text)) is not None


def _concat_op(left: Any, right: Any) -> Any:
    if is_null(left) or is_null(right):
        return None
    if isinstance(left, (list, np.ndarray)) or isinstance(right, (list, np.ndarray)):
        return np.concatenate(
            [np.atleast_1d(np.asarray(left)), np.atleast_1d(np.asarray(right))]
        )
    return str(left) + str(right)


_BINARY_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _numeric_binary(operator.add, "+"),
    "-": _numeric_binary(operator.sub, "-"),
    "*": _numeric_binary(operator.mul, "*"),
    "/": _divide,
    "%": _numeric_binary(operator.mod, "%"),
    "^": _numeric_binary(operator.pow, "^"),
    "=": _comparison(operator.eq),
    "!=": _comparison(operator.ne),
    "<>": _comparison(operator.ne),
    "<": _comparison(operator.lt),
    "<=": _comparison(operator.le),
    ">": _comparison(operator.gt),
    ">=": _comparison(operator.ge),
    "and": _logical_and,
    "or": _logical_or,
    "||": _concat_op,
}


@dataclass
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def children(self) -> List[Expression]:
        return [self.left, self.right]

    def evaluate(self, context: RowContext) -> Any:
        op = self.op.lower()
        if op == "like":
            return self._like(context)
        try:
            func = _BINARY_OPS[op]
        except KeyError:
            raise ExecutionError(f"unsupported operator {self.op!r}") from None
        if op in ("and", "or"):
            return func(self.left.evaluate(context), self.right.evaluate(context))
        return func(self.left.evaluate(context), self.right.evaluate(context))

    def _like(self, context: RowContext) -> Optional[bool]:
        return like_match(self.left.evaluate(context), self.right.evaluate(context))


@dataclass
class UnaryOp(Expression):
    op: str
    operand: Expression

    def children(self) -> List[Expression]:
        return [self.operand]

    def evaluate(self, context: RowContext) -> Any:
        value = self.operand.evaluate(context)
        op = self.op.lower()
        if op == "-":
            return None if is_null(value) else -value
        if op == "+":
            return value
        if op == "not":
            if value is None:
                return None
            return not bool(value)
        raise ExecutionError(f"unsupported unary operator {self.op!r}")


@dataclass
class FunctionCall(Expression):
    name: str
    args: List[Expression] = field(default_factory=list)
    distinct: bool = False
    star: bool = False  # count(*)

    def children(self) -> List[Expression]:
        return list(self.args)

    def evaluate(self, context: RowContext) -> Any:
        # Aggregate calls are rewritten by the executor to Literal values
        # keyed into the context; reaching this point means a scalar call.
        key = f"__agg_{id(self)}"
        if key in context.values:
            return context.values[key]
        argument_values = [arg.evaluate(context) for arg in self.args]
        return context.call(self.name, argument_values)


@dataclass
class WindowSpec:
    partition_by: List[Expression] = field(default_factory=list)
    order_by: List[Tuple[Expression, bool]] = field(default_factory=list)  # (expr, ascending)


@dataclass
class WindowCall(Expression):
    """An aggregate or ranking function with an ``OVER (...)`` clause."""

    function: FunctionCall
    spec: WindowSpec

    def children(self) -> List[Expression]:
        children: List[Expression] = [self.function]
        children.extend(self.spec.partition_by)
        children.extend(expr for expr, _ in self.spec.order_by)
        return children

    def evaluate(self, context: RowContext) -> Any:
        key = f"__win_{id(self)}"
        if key in context.values:
            return context.values[key]
        raise ExecutionError(
            "window function evaluated outside of a windowed query context"
        )


@dataclass
class CaseExpr(Expression):
    whens: List[Tuple[Expression, Expression]]
    else_result: Optional[Expression] = None

    def children(self) -> List[Expression]:
        nodes: List[Expression] = []
        for condition, result in self.whens:
            nodes.extend([condition, result])
        if self.else_result is not None:
            nodes.append(self.else_result)
        return nodes

    def evaluate(self, context: RowContext) -> Any:
        for condition, result in self.whens:
            if condition.evaluate(context) is True:
                return result.evaluate(context)
        if self.else_result is not None:
            return self.else_result.evaluate(context)
        return None


@dataclass
class ArrayLiteral(Expression):
    items: List[Expression]

    def children(self) -> List[Expression]:
        return list(self.items)

    def evaluate(self, context: RowContext) -> Any:
        values = [item.evaluate(context) for item in self.items]
        if values and all(isinstance(v, str) for v in values):
            return values
        return np.asarray(values, dtype=np.float64)


@dataclass
class Subscript(Expression):
    """One-based array indexing, ``x[i]``, matching PostgreSQL semantics."""

    base: Expression
    index: Expression

    def children(self) -> List[Expression]:
        return [self.base, self.index]

    def evaluate(self, context: RowContext) -> Any:
        array = self.base.evaluate(context)
        position = self.index.evaluate(context)
        if is_null(array) or is_null(position):
            return None
        idx = int(position) - 1
        if idx < 0 or idx >= len(array):
            return None
        value = array[idx]
        if isinstance(value, np.generic):
            return value.item()
        return value


@dataclass
class Cast(Expression):
    operand: Expression
    type_name: str

    def children(self) -> List[Expression]:
        return [self.operand]

    def evaluate(self, context: RowContext) -> Any:
        from .types import coerce_value, type_from_name

        return coerce_value(self.operand.evaluate(context), type_from_name(self.type_name))


@dataclass
class InList(Expression):
    operand: Expression
    items: List[Expression]
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand] + list(self.items)

    def evaluate(self, context: RowContext) -> Any:
        value = self.operand.evaluate(context)
        if is_null(value):
            return None
        found = any(values_equal(value, item.evaluate(context)) for item in self.items)
        return (not found) if self.negated else found


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand]

    def evaluate(self, context: RowContext) -> Any:
        result = is_null(self.operand.evaluate(context))
        return (not result) if self.negated else result


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand, self.low, self.high]

    def evaluate(self, context: RowContext) -> Any:
        value = self.operand.evaluate(context)
        low = self.low.evaluate(context)
        high = self.high.evaluate(context)
        if is_null(value) or is_null(low) or is_null(high):
            return None
        result = low <= value <= high
        return (not result) if self.negated else result
