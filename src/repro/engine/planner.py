"""Cost-based planning: table statistics, access-path selection and EXPLAIN.

This module is the engine's analog of the PostgreSQL/Greenplum planner layer
the paper's driver functions lean on (Section 3.1): statistics collected by
``ANALYZE`` live in the catalog where templated queries can interrogate them,
and a cost model chooses between the sequential segment scan and an
index-probe access path (:mod:`repro.engine.index`) per WHERE clause.

Three pieces:

**Statistics** (:func:`collect_table_statistics`).  One ``ANALYZE`` pass per
table records, per column: row count, NULL fraction, an n-distinct estimate
from the existing Flajolet–Martin sketch kernel
(:class:`repro.methods.sketches.fm.FMSketchKernel` — the same mergeable UDA
the Table 1 methods use), min/max, and an equi-depth histogram over a
deterministic row sample.  The snapshot stores the table's mutation version,
so staleness is a cheap comparison — DML bumps the version, ANALYZE resets
it.

**Access paths** (:func:`choose_access_path`).  For a single-table WHERE, the
planner splits the clause into AND-conjuncts, finds equality and range
conjuncts over indexed columns whose comparison value is row-independent,
estimates each candidate's cardinality (statistics when analyzed, the index's
own key counts otherwise), and switches to an index probe only when

    ``INDEX_PROBE_COST + est_rows * INDEX_ROW_COST < table_rows * SEQ_ROW_COST``

i.e. when estimated selectivity beats the full scan.  Everything the probe
does not consume stays a residual predicate evaluated per candidate row, so
results are byte-identical to the sequential plan (probe results arrive in
(segment, position) order — exactly scan order).  The planner is
all-or-nothing like the join planner: unresolvable names, volatile or unknown
functions, uncompilable subtrees and cross-kind comparisons all return
``None`` so the scan path preserves legacy semantics, errors included.

**EXPLAIN** (:func:`explain_statement`).  Builds a plan tree (scan nodes with
access path and estimated rows, join nodes with strategy, aggregate / sort /
limit wrappers) from the same decision functions execution uses.  ``EXPLAIN
ANALYZE`` executes the statement and annotates the tree with the actual
touched/emitted row counts recorded in
:class:`~repro.engine.segments.ExecutionStats`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .compile import ColumnLayout, compile_expression, keys_for_columns
from .expressions import (
    ArrayLiteral,
    Between,
    BinaryOp,
    CaseExpr,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Parameter,
    Star,
    Subscript,
    UnaryOp,
    WindowCall,
)
from .index import BaseIndex, SortedIndex, _comparison_kind
from .join import conjoin, has_unshippable_calls, split_conjuncts
from .types import is_null

__all__ = [
    "ColumnStatistics",
    "TableStatistics",
    "collect_table_statistics",
    "AccessPath",
    "choose_access_path",
    "maybe_auto_analyze",
    "PlanNode",
    "explain_statement",
    "expression_sql",
    "SEQ_ROW_COST",
    "INDEX_ROW_COST",
    "INDEX_PROBE_COST",
]

# ---------------------------------------------------------------------------
# Cost model constants
# ---------------------------------------------------------------------------

#: Relative cost of touching one row in a sequential scan.
SEQ_ROW_COST = 1.0
#: Relative cost of fetching one row through an index probe (random access,
#: probe-result sort, residual evaluation).
INDEX_ROW_COST = 2.0
#: Fixed per-probe setup cost (bisect / bucket lookup, plan bookkeeping).
INDEX_PROBE_COST = 20.0

#: Fallback selectivities when neither statistics nor index counts exist.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: ANALYZE samples at most this many non-NULL values per column for the
#: n-distinct sketch and the histogram (row count / NULL fraction / min / max
#: always use the full column).
ANALYZE_SAMPLE_ROWS = 4096
#: FM sketch width used for the n-distinct estimate (paper's Table 1 kernel).
FM_NUM_MAPS = 16
#: Equi-depth histogram bucket count.
HISTOGRAM_BUCKETS = 20

#: auto_analyze re-analyzes once this many mutations accumulate since the
#: last snapshot (absolute floor, fraction of the analyzed row count).
AUTO_ANALYZE_MIN_MUTATIONS = 64
AUTO_ANALYZE_FRACTION = 0.2


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@dataclass
class ColumnStatistics:
    """Per-column statistics snapshot (the ``pg_stats`` row analog)."""

    name: str
    null_frac: float = 0.0
    n_distinct: float = 0.0
    min_value: Any = None
    max_value: Any = None
    #: Equi-depth histogram boundaries (``HISTOGRAM_BUCKETS + 1`` values,
    #: sorted), or None when the column's values are not mutually comparable.
    histogram: Optional[List[Any]] = None
    #: Comparison family of the column's non-NULL values: ``"num"``, ``"str"``
    #: or None (mixed / non-scalar — range estimation unavailable).
    kind: Optional[str] = None


@dataclass
class TableStatistics:
    """Per-table statistics snapshot stored in the catalog by ``ANALYZE``."""

    table_name: str
    row_count: int
    #: ``Table._data_version`` at collection time; any DML bumps the table's
    #: version, so ``data_version != table._data_version`` means stale.
    data_version: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())

    def is_stale(self, table) -> bool:
        return self.data_version != table._data_version

    def column_rows(self) -> List[Dict[str, Any]]:
        """``pg_stats``-style listing rows (one per column)."""
        rows = []
        for stats in self.columns.values():
            rows.append(
                {
                    "tablename": self.table_name,
                    "columnname": stats.name,
                    "row_count": self.row_count,
                    "null_frac": stats.null_frac,
                    "n_distinct": stats.n_distinct,
                    "min": stats.min_value,
                    "max": stats.max_value,
                    "histogram_buckets": len(stats.histogram) - 1 if stats.histogram else 0,
                }
            )
        return rows


def _column_sample(values: List[Any], limit: int) -> List[Any]:
    """Deterministic evenly-strided sample (no RNG: ANALYZE must be stable)."""
    if len(values) <= limit:
        return list(values)
    stride = max(1, len(values) // limit)
    return values[::stride][:limit]


def _estimate_distinct(sample: List[Any], population: int) -> float:
    """n-distinct estimate: FM sketch over the sample, scaled to the column.

    Uses the existing Flajolet–Martin kernel (mergeable UDA from the paper's
    Table 1 descriptive statistics).  Scaling follows the usual heuristic: a
    sample that looks mostly-unique scales linearly with the population,
    while a sample whose distinct count has saturated is taken as the
    column's true cardinality.
    """
    if not sample:
        return 0.0
    # Lazy import: methods build on the engine, so the engine must not import
    # the methods package at module load time.
    from ..methods.sketches.fm import FMSketchKernel

    kernel = FMSketchKernel(num_maps=FM_NUM_MAPS)
    state = None
    for value in sample:
        state = kernel.transition(state, value)
    estimate = float(state.estimate()) if state is not None else 0.0
    estimate = min(estimate, float(len(sample)))
    if population > len(sample) and estimate >= 0.75 * len(sample):
        estimate *= population / max(len(sample), 1)
    return max(1.0, min(estimate, float(population)))


def _equi_depth_histogram(sample: List[Any], buckets: int) -> Optional[List[Any]]:
    try:
        ordered = sorted(sample)
    except TypeError:
        return None
    if len(ordered) < 2:
        return None
    edges = []
    for j in range(buckets + 1):
        edges.append(ordered[round(j * (len(ordered) - 1) / buckets)])
    return edges


def collect_table_statistics(table) -> TableStatistics:
    """One ANALYZE pass over a table (full column scan + strided sample)."""
    statistics = TableStatistics(
        table_name=table.name,
        row_count=len(table),
        data_version=table._data_version,
    )
    for position, column in enumerate(table.schema):
        values: List[Any] = []
        for segment in range(table.num_segments):
            values.extend(table.segment_columns(segment)[position])
        non_null = [value for value in values if not is_null(value)]
        null_frac = 1.0 - (len(non_null) / len(values)) if values else 0.0
        stats = ColumnStatistics(name=column.name, null_frac=null_frac)
        kinds = {_comparison_kind(value) for value in non_null}
        if len(kinds) == 1 and None not in kinds:
            stats.kind = next(iter(kinds))
            stats.min_value = min(non_null)
            stats.max_value = max(non_null)
        sample = _column_sample(non_null, ANALYZE_SAMPLE_ROWS)
        stats.n_distinct = _estimate_distinct(sample, len(non_null))
        if stats.kind is not None:
            stats.histogram = _equi_depth_histogram(sample, HISTOGRAM_BUCKETS)
        statistics.columns[column.name.lower()] = stats
    return statistics


def maybe_auto_analyze(database, table) -> Optional[TableStatistics]:
    """Refresh a table's statistics when ``auto_analyze`` warrants it.

    Returns the current (possibly just-refreshed) statistics, or None when
    none exist and auto-analyze is off.  Re-analysis triggers on missing
    statistics or once mutations since the last snapshot exceed
    ``max(AUTO_ANALYZE_MIN_MUTATIONS, AUTO_ANALYZE_FRACTION * analyzed
    rows)`` — the autovacuum-style damping that keeps a mixed DML/query
    workload from paying O(n) analysis per statement.
    """
    catalog = database.catalog
    statistics = catalog.get_statistics(table.name)
    if not getattr(database, "auto_analyze", False):
        return statistics
    if statistics is not None:
        mutations = table._data_version - statistics.data_version
        threshold = max(
            AUTO_ANALYZE_MIN_MUTATIONS, AUTO_ANALYZE_FRACTION * statistics.row_count
        )
        if mutations <= threshold:
            return statistics
    statistics = collect_table_statistics(table)
    catalog.set_statistics(statistics)
    return statistics


# ---------------------------------------------------------------------------
# Selectivity estimation
# ---------------------------------------------------------------------------


def _histogram_position(stats: ColumnStatistics, value: Any) -> float:
    """Estimated fraction of non-NULL values strictly below ``value``."""
    histogram = stats.histogram
    try:
        if histogram and len(histogram) >= 2:
            buckets = len(histogram) - 1
            at = bisect_left(histogram, value)
            if at <= 0:
                return 0.0
            if at >= len(histogram):
                return 1.0
            low, high = histogram[at - 1], histogram[at]
            within = 0.5
            if stats.kind == "num" and isinstance(value, (int, float)) and high != low:
                within = min(1.0, max(0.0, (value - low) / (high - low)))
            return ((at - 1) + within) / buckets
        if (
            stats.kind == "num"
            and isinstance(value, (int, float))
            and stats.min_value is not None
            and stats.max_value is not None
            and stats.max_value != stats.min_value
        ):
            span = stats.max_value - stats.min_value
            return min(1.0, max(0.0, (value - stats.min_value) / span))
    except TypeError:
        pass
    return DEFAULT_RANGE_SELECTIVITY


def estimated_eq_rows(
    statistics: Optional[TableStatistics],
    column_name: str,
    index: BaseIndex,
    value: Any,
    table_rows: int,
) -> float:
    """Estimated matching rows for ``column = value``."""
    if statistics is not None:
        stats = statistics.column(column_name)
        if stats is not None and stats.n_distinct >= 1.0:
            return statistics.row_count * (1.0 - stats.null_frac) / stats.n_distinct
    exact = index.count_eq(value)
    if exact is not None:
        return float(exact)
    return table_rows * DEFAULT_EQ_SELECTIVITY


def estimated_range_rows(
    statistics: Optional[TableStatistics],
    column_name: str,
    index: SortedIndex,
    low: Any,
    high: Any,
    low_strict: bool,
    high_strict: bool,
    table_rows: int,
) -> float:
    """Estimated matching rows for a (possibly half-open) range predicate."""
    if statistics is not None:
        stats = statistics.column(column_name)
        if stats is not None and stats.kind is not None:
            low_pos = 0.0 if low is None else _histogram_position(stats, low)
            high_pos = 1.0 if high is None else _histogram_position(stats, high)
            fraction = max(0.0, high_pos - low_pos)
            return statistics.row_count * (1.0 - stats.null_frac) * fraction
    exact = index.count_range(low, high, low_strict=low_strict, high_strict=high_strict)
    if exact is not None:
        return float(exact)
    bounds = (low is not None) + (high is not None)
    fraction = DEFAULT_RANGE_SELECTIVITY ** max(bounds, 1)
    return table_rows * fraction


# ---------------------------------------------------------------------------
# Access-path selection
# ---------------------------------------------------------------------------


@dataclass
class AccessPath:
    """A chosen index probe replacing the sequential scan of one table."""

    index: BaseIndex
    kind: str  # "eq" | "range"
    value: Any = None
    low: Any = None
    high: Any = None
    low_strict: bool = False
    high_strict: bool = False
    #: The consumed conjuncts rendered as SQL (EXPLAIN's ``Index Cond``).
    condition_sql: str = ""
    #: Conjuncts the probe does not consume, evaluated per candidate row.
    residual: Optional[Expression] = None
    estimated_rows: float = 0.0
    table_rows: int = 0
    #: Set when a consumed conjunct compares against NULL: the predicate can
    #: never be TRUE, so the probe returns no rows without touching data.
    never_true: bool = False

    def probe(self) -> Optional[List[Tuple[int, int]]]:
        """Run the probe; ``None`` means fall back to the sequential scan."""
        if self.never_true:
            return []
        if self.kind == "eq":
            return self.index.probe_eq(self.value)
        return self.index.probe_range(
            self.low, self.high, low_strict=self.low_strict, high_strict=self.high_strict
        )


_SCALAR_TYPES = (int, float, str, bool)


def _constant_value(
    expression: Expression,
    layout: ColumnLayout,
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]],
    aggregate_names: frozenset,
) -> Tuple[bool, Any]:
    """Evaluate a row-independent expression at plan time; (ok, value)."""
    if layout.column_indices(expression) != frozenset():
        return False, None
    compiled = compile_expression(
        expression, ColumnLayout([]), functions, parameters, aggregate_names
    )
    if compiled is None:
        return False, None
    try:
        value = compiled(())
    except Exception:
        # A raising constant (e.g. 1/0) must raise on the scan path instead.
        return False, None
    if value is not None and not isinstance(value, _SCALAR_TYPES):
        return False, None
    return True, value


_RANGE_OPS = {"<": ("high", True), "<=": ("high", False), ">": ("low", True), ">=": ("low", False)}


def choose_access_path(
    table,
    alias: Optional[str],
    where: Expression,
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]],
    aggregate_names: frozenset,
    statistics: Optional[TableStatistics],
) -> Optional[AccessPath]:
    """Pick an index probe for a single-table WHERE, or ``None`` (→ scan).

    All-or-nothing safety gates mirror the join planner: the whole WHERE must
    compile against the table layout (so the residual is guaranteed to
    compile), no volatile/unknown function may appear anywhere in it, and
    probe values must be plan-time scalars.  The cost rule then compares the
    cheapest candidate probe against the sequential scan.
    """
    indexes = [index for index in getattr(table, "indexes", []) if index.usable]
    if not indexes or where is None:
        return None
    if has_unshippable_calls(where, functions):
        return None
    columns = [(alias, name) for name in table.schema.names]
    layout = ColumnLayout(keys_for_columns(columns))
    if compile_expression(where, layout, functions, parameters, aggregate_names) is None:
        return None

    by_column: Dict[str, List[BaseIndex]] = {}
    for index in indexes:
        by_column.setdefault(index.column_name.lower(), []).append(index)
    alias_lower = alias.lower() if alias else None

    def indexed_column(expression: Expression) -> Optional[str]:
        if not isinstance(expression, ColumnRef):
            return None
        if expression.qualifier is not None and (
            alias_lower is None or expression.qualifier.lower() != alias_lower
        ):
            return None
        name = expression.name.lower()
        return name if name in by_column else None

    conjuncts = split_conjuncts(where)
    consumed_flags = [False] * len(conjuncts)
    eq_candidates: List[Tuple[int, str, Any]] = []  # (conjunct idx, column, value)
    range_constraints: Dict[str, List[Tuple[int, str, bool, Any]]] = {}

    for position, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, Between) and not conjunct.negated:
            column = indexed_column(conjunct.operand)
            if column is None:
                continue
            ok_low, low = _constant_value(conjunct.low, layout, functions, parameters, aggregate_names)
            ok_high, high = _constant_value(conjunct.high, layout, functions, parameters, aggregate_names)
            if ok_low and ok_high:
                range_constraints.setdefault(column, []).append((position, "low", False, low))
                range_constraints.setdefault(column, []).append((position, "high", False, high))
            continue
        if not isinstance(conjunct, BinaryOp):
            continue
        op = conjunct.op
        if op not in ("=", "<", "<=", ">", ">="):
            continue
        column = indexed_column(conjunct.left)
        other = conjunct.right
        if column is None:
            column = indexed_column(conjunct.right)
            other = conjunct.left
            if column is None:
                continue
            # Flip the comparison: ``5 > col`` is ``col < 5``.
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
        ok, value = _constant_value(other, layout, functions, parameters, aggregate_names)
        if not ok:
            continue
        if op == "=":
            eq_candidates.append((position, column, value))
        else:
            bound, strict = _RANGE_OPS[op]
            range_constraints.setdefault(column, []).append((position, bound, strict, value))

    best: Optional[AccessPath] = None
    best_positions: List[int] = []

    table_rows = len(table)

    def consider(path: AccessPath, positions: List[int]) -> None:
        nonlocal best, best_positions
        if best is None or path.estimated_rows < best.estimated_rows:
            best = path
            best_positions = positions

    for position, column, value in eq_candidates:
        index_list = by_column[column]
        index = next((i for i in index_list if i.kind == "hash"), index_list[0])
        never_true = value is None or is_null(value)
        estimated = (
            0.0
            if never_true
            else estimated_eq_rows(statistics, column, index, value, table_rows)
        )
        consider(
            AccessPath(
                index=index,
                kind="eq",
                value=value,
                condition_sql=expression_sql(conjuncts[position]),
                estimated_rows=estimated,
                table_rows=table_rows,
                never_true=never_true,
            ),
            [position],
        )

    for column, constraints in range_constraints.items():
        index = next(
            (i for i in by_column[column] if i.supports_range()), None
        )
        if index is None:
            continue
        low = high = None
        low_strict = high_strict = False
        never_true = False
        positions: List[int] = []
        try:
            for position, bound, strict, value in constraints:
                positions.append(position)
                if value is None or is_null(value):
                    # ``col > NULL`` is never TRUE, so neither is the AND.
                    never_true = True
                    continue
                if bound == "low":
                    if low is None or value > low:
                        low, low_strict = value, strict
                    elif value == low and strict:
                        low_strict = True
                else:
                    if high is None or value < high:
                        high, high_strict = value, strict
                    elif value == high and strict:
                        high_strict = True
        except TypeError:
            continue
        if never_true:
            estimated = 0.0
        else:
            estimated = estimated_range_rows(
                statistics, column, index, low, high, low_strict, high_strict, table_rows
            )
        condition = " AND ".join(expression_sql(conjuncts[p]) for p in sorted(set(positions)))
        consider(
            AccessPath(
                index=index,
                kind="range",
                low=low,
                high=high,
                low_strict=low_strict,
                high_strict=high_strict,
                condition_sql=condition,
                estimated_rows=estimated,
                table_rows=table_rows,
                never_true=never_true,
            ),
            sorted(set(positions)),
        )

    if best is None:
        return None
    if INDEX_PROBE_COST + best.estimated_rows * INDEX_ROW_COST >= table_rows * SEQ_ROW_COST:
        return None
    for position in best_positions:
        consumed_flags[position] = True
    best.residual = conjoin(
        [conjunct for position, conjunct in enumerate(conjuncts) if not consumed_flags[position]]
    )
    return best


# ---------------------------------------------------------------------------
# EXPLAIN plan trees
# ---------------------------------------------------------------------------


@dataclass
class PlanNode:
    """One node of an EXPLAIN plan tree."""

    label: str
    detail: str = ""
    estimated_rows: Optional[float] = None
    actual_rows: Optional[int] = None
    lines: List[str] = field(default_factory=list)  # extra per-node lines
    children: List["PlanNode"] = field(default_factory=list)

    def format(self, indent: int = 0) -> List[str]:
        pad = "  " * indent
        head = self.label + (f" {self.detail}" if self.detail else "")
        annotations = []
        if self.estimated_rows is not None:
            annotations.append(f"rows={int(round(self.estimated_rows))}")
        if self.actual_rows is not None:
            annotations.append(f"actual_rows={self.actual_rows}")
        if annotations:
            head += "  (" + " ".join(annotations) + ")"
        prefix = "" if indent == 0 else "-> "
        out = [pad + prefix + head]
        body_pad = pad + ("  " if indent == 0 else "     ")
        for line in self.lines:
            out.append(body_pad + line)
        for child in self.children:
            out.extend(child.format(indent + 1))
        return out

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def expression_sql(expression: Optional[Expression]) -> str:
    """Best-effort SQL rendering of an expression tree for plan display."""
    if expression is None:
        return ""
    if isinstance(expression, Literal):
        if expression.value is None:
            return "NULL"
        if isinstance(expression.value, str):
            escaped = expression.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(expression.value)
    if isinstance(expression, ColumnRef):
        return expression.name if expression.qualifier is None else f"{expression.qualifier}.{expression.name}"
    if isinstance(expression, Parameter):
        return f"%({expression.name})s"
    if isinstance(expression, Star):
        return "*"
    if isinstance(expression, BinaryOp):
        return f"{expression_sql(expression.left)} {expression.op.upper()} {expression_sql(expression.right)}"
    if isinstance(expression, UnaryOp):
        return f"{expression.op.upper()} {expression_sql(expression.operand)}"
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{expression_sql(expression.operand)} {suffix}"
    if isinstance(expression, Between):
        word = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"{expression_sql(expression.operand)} {word} "
            f"{expression_sql(expression.low)} AND {expression_sql(expression.high)}"
        )
    if isinstance(expression, InList):
        items = ", ".join(expression_sql(item) for item in expression.items)
        word = "NOT IN" if expression.negated else "IN"
        return f"{expression_sql(expression.operand)} {word} ({items})"
    if isinstance(expression, FunctionCall):
        if expression.star:
            inner = "*"
        else:
            inner = ", ".join(expression_sql(arg) for arg in expression.args)
            if expression.distinct:
                inner = f"DISTINCT {inner}"
        return f"{expression.name}({inner})"
    if isinstance(expression, WindowCall):
        return f"{expression_sql(expression.function)} OVER (...)"
    if isinstance(expression, Cast):
        return f"{expression_sql(expression.operand)}::{expression.type_name}"
    if isinstance(expression, Subscript):
        return f"{expression_sql(expression.base)}[{expression_sql(expression.index)}]"
    if isinstance(expression, ArrayLiteral):
        return "ARRAY[" + ", ".join(expression_sql(item) for item in expression.items) + "]"
    if isinstance(expression, CaseExpr):
        return "CASE ... END"
    return type(expression).__name__


_JOIN_STRATEGY_LABELS = {
    "hash": "Hash Join",
    "hash_reversed": "Hash Join (build left)",
    "hash_broadcast": "Hash Join (broadcast)",
    "hash_colocated": "Hash Join (co-located)",
    "nested_loop": "Nested Loop",
    "cross": "Nested Loop (cross)",
}


class _ExplainBuilder:
    """Builds the plan tree for one statement, mirroring executor decisions."""

    def __init__(self, executor, parameters) -> None:
        self.executor = executor
        self.catalog = executor.catalog
        self.parameters = parameters
        self.functions = executor._function_registry()
        self.aggregate_names = frozenset(
            name.lower() for name in self.catalog.aggregate_names()
        )
        #: Scan and join nodes in execution (DFS) order, for annotation.
        #: Only nodes of the *outermost* statement belong here: subqueries,
        #: UNION branches and DML-embedded selects execute with their own
        #: ``ExecutionStats``, so their nodes must not consume the outer
        #: statement's scan/join details (see :meth:`_build_isolated`).
        self.scan_nodes: List[PlanNode] = []
        self.join_nodes: List[PlanNode] = []

    def _build_isolated(self, statement) -> PlanNode:
        """Build a nested statement's subtree without polluting the outer
        annotation lists — the nested statement records its row counts into
        its own stats object, which EXPLAIN ANALYZE cannot see."""
        saved_scans, saved_joins = self.scan_nodes, self.join_nodes
        self.scan_nodes, self.join_nodes = [], []
        try:
            return self.build(statement)
        finally:
            self.scan_nodes, self.join_nodes = saved_scans, saved_joins

    # -- helpers ------------------------------------------------------------

    def _table_estimate(self, name: str) -> Optional[float]:
        if not self.catalog.has_table(name):
            return None
        table = self.catalog.get_table(name)
        statistics = self.catalog.get_statistics(name)
        if statistics is not None and not statistics.is_stale(table):
            return float(statistics.row_count)
        return float(len(table))

    def _static_columns(self, item) -> Optional[List[Tuple[Optional[str], str]]]:
        from .parser.ast_nodes import Join, TableRef

        if isinstance(item, TableRef):
            if not self.catalog.has_table(item.name):
                return None
            table = self.catalog.get_table(item.name)
            return [(item.effective_alias, name) for name in table.schema.names]
        if isinstance(item, Join):
            left = self._static_columns(item.left)
            right = self._static_columns(item.right)
            if left is None or right is None:
                return None
            return left + right
        return None

    # -- FROM items ---------------------------------------------------------

    def _scan_node(self, item, single_table_path=None) -> PlanNode:
        from .parser.ast_nodes import FunctionSource, Join, SubquerySource, TableRef

        if isinstance(item, TableRef):
            display = item.name if item.alias is None else f"{item.name} {item.alias}"
            if not self.catalog.has_table(item.name) and self.catalog.has_matview(item.name):
                view = self.catalog.get_matview(item.name)
                estimate = (
                    float(view.last_row_count) if view.last_row_count is not None else None
                )
                node = PlanNode("MatView Scan", f"on {display}", estimated_rows=estimate)
                node.lines.append(
                    f"Freshness: {'stale' if view.is_stale(self.catalog) else 'fresh'}"
                )
                node.lines.append(f"Maintenance: {view.strategy}")
                self.scan_nodes.append(node)
                return node
            if single_table_path is not None:
                path = single_table_path
                node = PlanNode(
                    "Index Scan",
                    f"using {path.index.name} on {display}",
                    estimated_rows=path.estimated_rows,
                )
                node.lines.append(f"Index Cond: {path.condition_sql}")
                if path.residual is not None:
                    node.lines.append(f"Filter: {expression_sql(path.residual)}")
            else:
                node = PlanNode(
                    "Seq Scan", f"on {display}", estimated_rows=self._table_estimate(item.name)
                )
            self.scan_nodes.append(node)
            return node
        if isinstance(item, SubquerySource):
            child = self._build_isolated(item.select)
            node = PlanNode(
                "Subquery Scan",
                f"on {item.alias}",
                estimated_rows=child.estimated_rows,
                children=[child],
            )
            self.scan_nodes.append(node)
            return node
        if isinstance(item, FunctionSource):
            node = PlanNode("Function Scan", f"on {item.name} {item.alias}")
            self.scan_nodes.append(node)
            return node
        if isinstance(item, Join):
            return self._join_node(item)
        return PlanNode(type(item).__name__)

    def _join_node(self, join) -> PlanNode:
        from .join import plan_hash_join

        left = self._scan_node(join.left)
        right = self._scan_node(join.right)
        label = "Nested Loop"
        detail = ""
        if join.kind == "cross" or join.condition is None:
            label = "Nested Loop (cross)"
        elif self.executor._hash_joins_enabled():
            left_columns = self._static_columns(join.left)
            right_columns = self._static_columns(join.right)
            if left_columns is not None and right_columns is not None:
                plan = plan_hash_join(
                    left_columns,
                    right_columns,
                    join.kind,
                    join.condition,
                    self.functions,
                    self.parameters,
                    check_shippable=False,
                )
                if plan is not None:
                    label = "Hash Join"
        if join.condition is not None:
            detail = f"({join.kind})"
        node = PlanNode(label, detail, children=[left, right])
        if join.condition is not None:
            node.lines.append(f"Join Cond: {expression_sql(join.condition)}")
        estimates = [c.estimated_rows for c in (left, right) if c.estimated_rows is not None]
        if len(estimates) == 2 and label.startswith("Hash"):
            node.estimated_rows = max(estimates)
        self.join_nodes.append(node)
        return node

    # -- statements ---------------------------------------------------------

    def build(self, statement) -> PlanNode:
        from .parser.ast_nodes import (
            CreateTableAsStatement,
            DeleteStatement,
            InsertStatement,
            SelectStatement,
            UnionStatement,
            UpdateStatement,
        )

        if isinstance(statement, SelectStatement):
            return self._build_select(statement)
        if isinstance(statement, UnionStatement):
            children = [self._build_isolated(select) for select in statement.selects]
            return PlanNode(
                "Append", "(UNION ALL)" if statement.all else "(UNION)", children=children
            )
        if isinstance(statement, InsertStatement):
            children = (
                [self._build_isolated(statement.select)] if statement.select is not None else []
            )
            return PlanNode("Insert", f"on {statement.table}", children=children)
        if isinstance(statement, UpdateStatement):
            node = PlanNode("Update", f"on {statement.table}")
            if statement.where is not None:
                node.lines.append(f"Filter: {expression_sql(statement.where)}")
            return node
        if isinstance(statement, DeleteStatement):
            node = PlanNode("Delete", f"on {statement.table}")
            if statement.where is not None:
                node.lines.append(f"Filter: {expression_sql(statement.where)}")
            return node
        if isinstance(statement, CreateTableAsStatement):
            return PlanNode(
                "Create Table As",
                f"{statement.name}",
                children=[self._build_isolated(statement.select)],
            )
        kind = type(statement).__name__.removesuffix("Statement")
        return PlanNode(kind)

    def _build_select(self, statement) -> PlanNode:
        from .parser.ast_nodes import TableRef

        executor = self.executor
        single_path = None
        single_ref = (
            statement.from_items[0]
            if len(statement.from_items) == 1 and isinstance(statement.from_items[0], TableRef)
            else None
        )
        if single_ref is not None and statement.where is not None:
            chosen = executor._choose_single_table_path(statement, self.parameters)
            if chosen is not None:
                single_path = chosen[2]

        if not statement.from_items:
            node: PlanNode = PlanNode("Result", estimated_rows=1)
        elif len(statement.from_items) == 1:
            node = self._scan_node(statement.from_items[0], single_table_path=single_path)
            if (
                single_path is None
                and statement.where is not None
                and node.label in ("Seq Scan", "Subquery Scan", "Function Scan", "MatView Scan")
            ):
                node.lines.append(f"Filter: {expression_sql(statement.where)}")
        else:
            node = self._comma_join_chain(statement)

        aggregate_calls = executor._collect_aggregate_calls(
            [item.expression for item in statement.select_items]
            + ([statement.having] if statement.having is not None else [])
            + [order.expression for order in statement.order_by]
        )
        if aggregate_calls or statement.group_by:
            if statement.group_by:
                keys = ", ".join(expression_sql(key) for key in statement.group_by)
                agg = PlanNode("HashAggregate", f"keys: {keys}", children=[node])
                if (
                    len(statement.group_by) == 1
                    and isinstance(statement.group_by[0], ColumnRef)
                    and single_ref is not None
                ):
                    statistics = self.catalog.get_statistics(single_ref.name)
                    column = (
                        statistics.column(statement.group_by[0].name)
                        if statistics is not None
                        else None
                    )
                    if column is not None:
                        agg.estimated_rows = column.n_distinct
            else:
                agg = PlanNode("Aggregate", estimated_rows=1, children=[node])
            if statement.having is not None:
                agg.lines.append(f"Having: {expression_sql(statement.having)}")
            node = agg

        if statement.order_by:
            keys = ", ".join(
                expression_sql(order.expression) + ("" if order.ascending else " DESC")
                for order in statement.order_by
            )
            detail = f"key: {keys}"
            if statement.limit is not None and not statement.distinct:
                detail += " (top-k)"
            node = PlanNode("Sort", detail, children=[node])
        if statement.distinct:
            node = PlanNode("Unique", children=[node])
        if statement.limit is not None or statement.offset:
            pieces = []
            if statement.limit is not None:
                pieces.append(f"limit {statement.limit}")
            if statement.offset:
                pieces.append(f"offset {statement.offset}")
            node = PlanNode("Limit", " ".join(pieces), estimated_rows=statement.limit, children=[node])
        return node

    def _comma_join_chain(self, statement) -> PlanNode:
        from .join import classify_where_conjuncts

        items = statement.from_items
        static = [self._static_columns(item) for item in items]
        hash_positions = set()
        if (
            statement.where is not None
            and all(columns is not None for columns in static)
            and self.executor._hash_joins_enabled()
        ):
            all_columns = [column for columns in static for column in columns]
            source_of: List[int] = []
            for source, columns in enumerate(static):
                source_of.extend([source] * len(columns))
            classified = classify_where_conjuncts(
                statement.where, ColumnLayout.for_columns(all_columns), source_of, self.functions
            )
            if classified is not None:
                _prefilters, edges, _residual = classified
                for source_a, _expr_a, source_b, _expr_b in edges:
                    hash_positions.add(max(source_a, source_b))
        node = self._scan_node(items[0])
        for position in range(1, len(items)):
            right = self._scan_node(items[position])
            label = "Hash Join" if position in hash_positions else "Nested Loop (cross)"
            join = PlanNode(label, "(implicit)", children=[node, right])
            self.join_nodes.append(join)
            node = join
        if statement.where is not None:
            node.lines.append(f"Filter: {expression_sql(statement.where)}")
        return node


def explain_statement(executor, target, parameters, *, analyze: bool = False) -> List[str]:
    """Render the plan for a statement; EXPLAIN ANALYZE also executes it.

    The tree is built from the same decision functions the executor uses
    (access-path choice, hash-join planning), so a plain EXPLAIN shows the
    plan that *would* run.  With ``analyze=True`` the statement executes and
    the recorded :class:`~repro.engine.segments.ExecutionStats` annotate the
    tree with actual row counts and join strategies.
    """
    builder = _ExplainBuilder(executor, parameters)
    tree = builder.build(target)
    footer: List[str] = []
    if analyze:
        result = executor.execute(target, parameters)
        stats = result.stats
        tree.actual_rows = len(result.rows) if result.rows or result.columns else result.rowcount
        if stats is not None:
            for node, detail in zip(builder.scan_nodes, stats.scan_details):
                node.actual_rows = detail.rows_touched
                if detail.access == "index" and node.label != "Index Scan":
                    node.label = "Index Scan"
                    if detail.index_name:
                        node.detail = f"using {detail.index_name} {node.detail}"
                elif detail.access == "seq" and node.label == "Index Scan":
                    node.label = "Seq Scan"
                if detail.access == "seq" and node.label == "Seq Scan":
                    # Whether the WHERE ran as a bitmap over packed columns
                    # (columnar vectorized path) or as a per-row predicate.
                    node.lines.append(
                        "Vectorized: yes" if detail.vectorized else "Vectorized: no"
                    )
            for node, step in zip(builder.join_nodes, stats.join_steps):
                node.actual_rows = step.rows_emitted
                label = _JOIN_STRATEGY_LABELS.get(step.strategy)
                if label is not None:
                    node.label = label
            if stats.rows_matched is not None:
                footer.append(f"Rows matched by WHERE: {stats.rows_matched}")
            footer.append(f"Execution time: {stats.total_seconds * 1000.0:.3f} ms")
    return tree.format() + footer
