"""Plan caching: pay parse→compile→plan once per query *shape*.

"Architecture of a Database System" (Hellerstein, Stonebraker & Hamilton,
Section 4 and 6) describes the query-processing discipline every serious
server adopts: incoming SQL is *normalized* into a parameterized shape, the
parsed/optimized plan for that shape is kept in a shared plan cache, and
subsequent statements that differ only in their literal values reuse it.
This module is that machinery for our engine:

* :func:`normalize_statement` — tokenize a statement and replace literal
  tokens with synthetic parameters (``%(__c0)s``, ``%(__c1)s``, ...).  The
  rebuilt text is both the cache *fingerprint* (two statements with the same
  shape normalize to the same string) and the SQL that is actually parsed,
  so a cached AST serves every literal binding of the shape.
* :class:`PlanCache` — an LRU of :class:`CachedPlan` entries keyed on the
  fingerprint.  Every entry records the catalog's DDL version and the data
  version of each referenced table; a lookup revalidates both, so any DDL
  (CREATE/DROP/ALTER/ANALYZE/UDF registration) or enough DML drift replans
  the shape instead of trusting a stale plan.
* :class:`SimpleSelectPlan` — a *physical* plan for the hot serving shape
  (single-table projection with an optional indexable equality WHERE).  A
  cache hit on this shape skips the whole executor: probe the secondary
  index, materialize the matching rows, project.  Anything it cannot prove
  safe declines at build or run time and the generic executor runs instead,
  so results are byte-identical with the cache on or off.

Normalization subtleties (all covered by ``tests/serving/test_plancache.py``):

* Numbers after a ``GROUP``/``ORDER``/``LIMIT``/``OFFSET`` keyword are *not*
  parameterized: ``ORDER BY 2`` is an output-column ordinal and ``LIMIT 10``
  must be a literal per the grammar, so those literals stay part of the
  shape.  (String literals freeze there too, conservatively.)
* Identifier tokens are re-emitted quoted (``"name"``), which reproduces the
  original token stream exactly whether or not the source quoted them.
* Statements whose parameters could collide with the synthetic names (a user
  parameter starting with ``__c``) and non-DML/SELECT statements are simply
  not cached.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from .expressions import BinaryOp, ColumnRef, Literal, Parameter, Star
from .parser import parse_statement
from .parser.ast_nodes import (
    CreateTableAsStatement,
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    Join,
    SelectStatement,
    Statement,
    SubquerySource,
    TableRef,
    UnionStatement,
    UpdateStatement,
)
from .parser.lexer import tokenize
from .planner import AUTO_ANALYZE_FRACTION, AUTO_ANALYZE_MIN_MUTATIONS
from .result import ResultSet
from .segments import ExecutionStats, ScanDetail

__all__ = [
    "normalize_statement",
    "NormalizedStatement",
    "referenced_tables",
    "statement_is_read_only",
    "CachedPlan",
    "PlanCache",
    "SimpleSelectPlan",
]


#: Prefix of the synthetic parameter names normalization introduces.  A user
#: statement that already binds a parameter with this prefix bypasses the
#: cache entirely rather than risk a collision.
SYNTHETIC_PREFIX = "__c"

#: Statement-leading keywords eligible for caching.  DDL is rare and cheap to
#: parse; EXPLAIN wants the *uncached* planning path by definition.
_CACHEABLE_FIRST_KEYWORDS = {"select", "insert", "update", "delete"}

#: After one of these keywords is seen, literal tokens stop being
#: parameterized: ``ORDER BY 2`` is an ordinal, ``LIMIT``/``OFFSET`` require
#: literal numbers in the grammar, and GROUP BY ordinals ride along.
_FREEZE_KEYWORDS = {"group", "order", "limit", "offset"}


class NormalizedStatement:
    """The outcome of normalizing one SQL string.

    ``fingerprint`` is the parameterized SQL text (also what the cache
    parses); ``values`` maps each synthetic parameter name to the literal it
    replaced in *this* statement.
    """

    __slots__ = ("fingerprint", "values")

    def __init__(self, fingerprint: str, values: Dict[str, Any]) -> None:
        self.fingerprint = fingerprint
        self.values = values


def _quote_name(value: str) -> str:
    # The lexer cannot produce a name containing a double quote (a quoted
    # identifier ends at the first one), so plain re-quoting round-trips.
    return f'"{value}"'


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _number_value(text: str) -> Any:
    """Convert a number token exactly as the parser does."""
    return float(text) if any(c in text for c in ".eE") else int(text)


def normalize_statement(sql: str) -> Optional[NormalizedStatement]:
    """Parameterize a statement's literals; None when the shape is uncacheable.

    Raises :class:`~repro.errors.SQLSyntaxError` for text the lexer rejects —
    the same error the uncached path would raise.
    """
    tokens = tokenize(sql)
    if not tokens or tokens[0].kind != "keyword":
        return None
    if tokens[0].value.lower() not in _CACHEABLE_FIRST_KEYWORDS:
        return None
    parts: List[str] = []
    values: Dict[str, Any] = {}
    frozen = False
    for token in tokens:
        kind = token.kind
        if kind == "eof":
            break
        if kind == "keyword":
            lowered = token.value.lower()
            if lowered in _FREEZE_KEYWORDS:
                frozen = True
            parts.append(lowered)
        elif kind == "name":
            parts.append(_quote_name(token.value))
        elif kind == "operator":
            parts.append(token.value)
        elif kind == "parameter":
            if token.value.startswith(SYNTHETIC_PREFIX):
                return None  # user parameter could collide with ours
            parts.append(f"%({token.value})s")
        elif kind == "number":
            if frozen:
                parts.append(token.value)
            else:
                name = f"{SYNTHETIC_PREFIX}{len(values)}"
                values[name] = _number_value(token.value)
                parts.append(f"%({name})s")
        elif kind == "string":
            if frozen:
                parts.append(_quote_string(token.value))
            else:
                name = f"{SYNTHETIC_PREFIX}{len(values)}"
                values[name] = token.value
                parts.append(f"%({name})s")
        else:  # pragma: no cover - the lexer has no other kinds
            return None
    return NormalizedStatement(" ".join(parts), values)


# ---------------------------------------------------------------------------
# Statement introspection
# ---------------------------------------------------------------------------


def referenced_tables(statement: Statement) -> List[str]:
    """Lowercased names of every base table a statement touches.

    Used for cache invalidation (data-version snapshots) and by the serving
    layer's snapshot validation; unknown FROM shapes contribute nothing
    (subqueries and joins are walked recursively).
    """
    names: List[str] = []

    def walk_from(item: object) -> None:
        if isinstance(item, TableRef):
            names.append(item.name.lower())
        elif isinstance(item, Join):
            walk_from(item.left)
            walk_from(item.right)
        elif isinstance(item, SubquerySource):
            walk_select(item.select)

    def walk_select(select: Statement) -> None:
        if isinstance(select, UnionStatement):
            for sub in select.selects:
                walk_select(sub)
            return
        if isinstance(select, SelectStatement):
            for item in select.from_items:
                walk_from(item)

    if isinstance(statement, (SelectStatement, UnionStatement)):
        walk_select(statement)
    elif isinstance(statement, InsertStatement):
        names.append(statement.table.lower())
        if statement.select is not None:
            walk_select(statement.select)
    elif isinstance(statement, UpdateStatement):
        names.append(statement.table.lower())
    elif isinstance(statement, DeleteStatement):
        names.append(statement.table.lower())
    elif isinstance(statement, CreateTableAsStatement):
        walk_select(statement.select)
    # Preserve first-seen order, drop duplicates.
    seen = set()
    ordered = []
    for name in names:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return ordered


def statement_is_read_only(statement: Statement) -> bool:
    """True when executing the statement cannot mutate any table.

    SELECT/UNION and plain EXPLAIN are reads; EXPLAIN ANALYZE actually runs
    its target, so it is only a read when the target is.  Everything else
    (DML, DDL, ANALYZE) is a write.  The serving layer uses this to pick the
    reader or the writer side of its lock.
    """
    if isinstance(statement, (SelectStatement, UnionStatement)):
        return True
    if isinstance(statement, ExplainStatement):
        if not statement.analyze:
            return True
        return statement_is_read_only(statement.target)
    return False


# ---------------------------------------------------------------------------
# The hot-shape physical plan
# ---------------------------------------------------------------------------


class SimpleSelectPlan:
    """Executor-bypassing plan for ``SELECT cols FROM t [WHERE col = const]``.

    Built once per cached shape; every execution re-fetches the table from
    the catalog and declines (returns None) on anything it cannot prove
    byte-identical to the generic path — the caller then falls back.  The
    WHERE probe uses a secondary index directly, which is also what makes
    prepared point lookups ~an-order-of-magnitude cheaper than a full
    parse→plan→execute round trip.
    """

    __slots__ = (
        "table_name",
        "column_indices",
        "output_names",
        "where_column",
        "where_param",
        "where_value",
    )

    def __init__(
        self,
        table_name: str,
        column_indices: List[int],
        output_names: List[str],
        where_column: Optional[int],
        where_param: Optional[str],
        where_value: Any,
    ) -> None:
        self.table_name = table_name
        self.column_indices = column_indices
        self.output_names = output_names
        self.where_column = where_column
        self.where_param = where_param
        self.where_value = where_value

    # -- construction -------------------------------------------------------

    @staticmethod
    def try_build(statement: Statement, catalog) -> Optional["SimpleSelectPlan"]:
        """Build the fast plan for a statement, or None when out of shape."""
        if not isinstance(statement, SelectStatement):
            return None
        if (
            statement.group_by
            or statement.having is not None
            or statement.order_by
            or statement.limit is not None
            or statement.offset is not None
            or statement.distinct
        ):
            return None
        if len(statement.from_items) != 1:
            return None
        ref = statement.from_items[0]
        if not isinstance(ref, TableRef):
            return None
        if not catalog.has_table(ref.name):
            return None
        table = catalog.get_table(ref.name)
        alias = ref.effective_alias.lower()
        schema = table.schema
        lowered = [name.lower() for name in schema.names]

        def resolve(column: ColumnRef) -> Optional[int]:
            if column.qualifier is not None and column.qualifier.lower() != alias:
                return None
            try:
                return lowered.index(column.name.lower())
            except ValueError:
                return None

        column_indices: List[int] = []
        output_names: List[str] = []
        for item in statement.select_items:
            expression = item.expression
            if isinstance(expression, Star):
                if expression.qualifier is not None and (
                    expression.qualifier.lower() != alias
                ):
                    return None
                if item.alias:
                    return None
                column_indices.extend(range(len(schema)))
                output_names.extend(schema.names)
                continue
            if not isinstance(expression, ColumnRef):
                return None
            index = resolve(expression)
            if index is None:
                return None
            column_indices.append(index)
            output_names.append(item.alias or expression.name)

        where_column: Optional[int] = None
        where_param: Optional[str] = None
        where_value: Any = None
        where = statement.where
        if where is not None:
            if not isinstance(where, BinaryOp) or where.op != "=":
                return None
            left, right = where.left, where.right
            if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
                left, right = right, left
            if not isinstance(left, ColumnRef):
                return None
            where_column = resolve(left)
            if where_column is None:
                return None
            if isinstance(right, Literal):
                where_value = right.value
            elif isinstance(right, Parameter):
                where_param = right.name
            else:
                return None
            # Only worthwhile (and only provably scan-order-identical) when a
            # usable index covers the probed column.
            if not any(
                index.usable and index.column_index == where_column
                for index in table.indexes
            ):
                return None
        return SimpleSelectPlan(
            table.name.lower(),
            column_indices,
            output_names,
            where_column,
            where_param,
            where_value,
        )

    # -- execution ----------------------------------------------------------

    def execute(
        self, catalog, parameters: Optional[Dict[str, Any]]
    ) -> Optional[ResultSet]:
        """Run the plan; None declines to the generic executor."""
        if not catalog.has_table(self.table_name):
            return None  # let the generic path raise the canonical error
        start = time.perf_counter()
        table = catalog.get_table(self.table_name)
        stats = ExecutionStats(statement_kind="select")
        if self.where_column is None:
            rows = [
                tuple(row[i] for i in self.column_indices)
                for segment in range(table.num_segments)
                for row in table.segment_view(segment)
            ]
            stats.rows_scanned_per_source.append(len(rows))
            stats.scan_details.append(ScanDetail(table.name, "seq", len(rows)))
            stats.total_seconds = time.perf_counter() - start
            return ResultSet(self.output_names, rows, stats=stats)
        if self.where_param is not None:
            if parameters is None or self.where_param not in parameters:
                return None  # generic path raises the unbound-parameter error
            value = parameters[self.where_param]
        else:
            value = self.where_value
        entries = None
        index_name = None
        for index in table.indexes:
            if index.usable and index.column_index == self.where_column:
                entries = index.probe_eq(value)
                index_name = index.name
                if entries is not None:
                    break
        if entries is None:
            return None  # no usable index left / probe declined: fall back
        rows = []
        for segment, position in entries:
            row = table.segment_view(segment)[position]
            rows.append(tuple(row[i] for i in self.column_indices))
        stats.rows_scanned_per_source.append(len(rows))
        stats.scan_details.append(
            ScanDetail(table.name, "index", len(rows), index_name=index_name)
        )
        stats.total_seconds = time.perf_counter() - start
        return ResultSet(self.output_names, rows, stats=stats)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class CachedPlan:
    """One cached shape: parsed AST + validity snapshot + optional fast plan."""

    __slots__ = (
        "fingerprint",
        "statement",
        "tables",
        "read_only",
        "catalog_version",
        "table_versions",
        "matview_versions",
        "simple_plan",
        "hits",
    )

    def __init__(self, fingerprint: str, statement: Statement, catalog) -> None:
        self.fingerprint = fingerprint
        self.statement = statement
        self.tables = referenced_tables(statement)
        self.read_only = statement_is_read_only(statement)
        self.catalog_version = catalog.version
        self.table_versions: Dict[str, Tuple[int, int]] = {}
        self.matview_versions: Dict[str, int] = {}
        for name in self.tables:
            if catalog.has_table(name):
                table = catalog.get_table(name)
                self.table_versions[name] = (table._data_version, len(table))
            elif catalog.has_matview(name):
                self.matview_versions[name] = catalog.get_matview(name).version
        self.simple_plan = SimpleSelectPlan.try_build(statement, catalog)
        self.hits = 0

    def is_valid(self, catalog) -> bool:
        """Still safe to reuse?  Any DDL or enough DML drift says no.

        The drift threshold mirrors auto-ANALYZE damping: a table that has
        mutated more than ``max(64, 20% of its row count at plan time)``
        times since the plan was built gets replanned, because access-path
        choices are data-dependent even though the AST is not.
        """
        if catalog.version != self.catalog_version:
            return False
        for name, (version, row_count) in self.table_versions.items():
            if not catalog.has_table(name):
                return False
            drift = catalog.get_table(name)._data_version - version
            if drift > max(AUTO_ANALYZE_MIN_MUTATIONS, AUTO_ANALYZE_FRACTION * row_count):
                return False
        # Materialized views invalidate strictly on *any* content change
        # (delta fold, refresh, recompute): unlike base-table drift, which
        # only skews cost estimates, a view-version bump means the cached
        # plan would serve different rows.
        for name, version in self.matview_versions.items():
            if not catalog.has_matview(name):
                return False
            if catalog.get_matview(name).version != version:
                return False
        return True


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries keyed on the fingerprint.

    Thread-safe: the serving layer runs concurrent readers against one
    shared cache, so all bookkeeping (LRU order, eviction, counters)
    happens under an internal lock.  Entry *parsing* happens under the lock
    too — serializing the occasional miss is far cheaper than letting two
    threads race a ``del``/``popitem`` on the same OrderedDict.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, fingerprint: str, catalog) -> Optional[CachedPlan]:
        """A valid entry for the fingerprint, or None (stale entries evict)."""
        with self._lock:
            return self._lookup_locked(fingerprint, catalog)

    def _lookup_locked(self, fingerprint: str, catalog) -> Optional[CachedPlan]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        if not entry.is_valid(catalog):
            del self._entries[fingerprint]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        entry.hits += 1
        return entry

    def _insert_locked(self, fingerprint: str, catalog) -> CachedPlan:
        statement = parse_statement(fingerprint)
        entry = CachedPlan(fingerprint, statement, catalog)
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def insert(self, fingerprint: str, catalog) -> CachedPlan:
        """Parse the fingerprint text and cache the resulting plan."""
        with self._lock:
            return self._insert_locked(fingerprint, catalog)

    def get_or_create(self, fingerprint: str, catalog) -> CachedPlan:
        with self._lock:
            entry = self._lookup_locked(fingerprint, catalog)
            if entry is None:
                entry = self._insert_locked(fingerprint, catalog)
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for monitoring and the serving benchmark's hit ratio."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }
