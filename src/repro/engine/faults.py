"""Deterministic, site-keyed fault injection for the fault-tolerance layer.

Production databases are tested by *killing* them: crash a backend
mid-statement, stall a client mid-response, truncate a wire frame — and then
prove the system either completed the work or failed it with a typed error,
never something in between.  "Architecture of a Database System" treats
process supervision and admission control as first-class architecture; this
module is the test harness side of that architecture for our engine.

A :class:`FaultInjector` is a registry of *armed* faults keyed by **site**
name.  Engine code probes sites at the few places where real infrastructure
can fail::

    fault = injector.probe("parallel.task") if injector is not None else None

and reacts to whatever comes back (``None`` almost always).  Probing is

* **deterministic** — whether probe number *n* at a site fires is a pure
  function of ``(seed, site, n)``, so a chaos run can be replayed exactly by
  re-running with the same seed and workload;
* **cheap** — an un-armed injector is ``None`` on the :class:`~repro.engine.
  database.Database`/server, so production paths pay one attribute check;
  with an injector installed, a probe at an un-armed site is one dict lookup;
* **thread-safe** — the serving layer probes from worker threads and the
  event loop concurrently; per-site probe counters advance under a lock.

Fault kinds (the strings are open-ended; these are the ones the engine and
the chaos harness know how to act on):

=================  =========================================================
``worker_crash``   a pool worker process dies abruptly (``os._exit``) while
                   holding a task — the coordinator's supervision must
                   detect the loss, respawn, retry and/or fall back.
``worker_hang``    a pool worker sleeps past every deadline (SIGSTOP
                   stand-in); only the per-task deadline can recover.
``slow_worker``    a pool worker sleeps ``delay`` seconds, then finishes
                   normally — exercises deadlines without losing work.
``pickle_error``   task dispatch raises :class:`pickle.PicklingError`
                   before anything is shipped — the classic unshippable
                   payload, must fall back in-process with a reason.
``wire_truncate``  the server writes only half of a response batch and
                   drops the connection — the client sees a truncated
                   frame; acknowledged state must still be consistent.
``client_stall``   a chaos client sleeps ``delay`` seconds before reading
                   its response (or, with ``delay == 0``, disconnects
                   without reading) — exercises cancellation-on-disconnect.
=================  =========================================================

Sites currently probed by the engine (documented in ``docs/robustness.md``):

* ``parallel.dispatch`` — once per worker-pool fan-out attempt
  (``pickle_error``);
* ``parallel.task`` — once per task per attempt (``worker_crash``,
  ``worker_hang``, ``slow_worker``); the decision is made on the
  coordinator and shipped to the worker as a *directive*, so determinism
  never depends on worker scheduling;
* ``serving.send`` — once per response batch write (``wire_truncate``).

The chaos harness additionally probes client-side sites (``client.stall``,
``client.disconnect``) that never appear in engine code.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Fault",
    "FaultSpec",
    "FaultInjector",
    "WORKER_CRASH",
    "WORKER_HANG",
    "SLOW_WORKER",
    "PICKLE_ERROR",
    "WIRE_TRUNCATE",
    "CLIENT_STALL",
    "FAULT_KINDS",
]

WORKER_CRASH = "worker_crash"
WORKER_HANG = "worker_hang"
SLOW_WORKER = "slow_worker"
PICKLE_ERROR = "pickle_error"
WIRE_TRUNCATE = "wire_truncate"
CLIENT_STALL = "client_stall"

FAULT_KINDS = frozenset(
    {WORKER_CRASH, WORKER_HANG, SLOW_WORKER, PICKLE_ERROR, WIRE_TRUNCATE, CLIENT_STALL}
)

#: Kind-specific default ``delay`` seconds: a hang must outlive any sane
#: per-task deadline; a slow worker / stalled client only needs to be
#: noticeable.
_DEFAULT_DELAYS = {WORKER_HANG: 3600.0, SLOW_WORKER: 0.05, CLIENT_STALL: 0.1}


@dataclass(frozen=True)
class Fault:
    """One fired fault: what :meth:`FaultInjector.probe` hands back."""

    kind: str
    site: str
    #: Zero-based probe index at this site that fired (replay diagnostics).
    sequence: int
    #: Sleep length for delay-shaped kinds; irrelevant otherwise.
    delay: float = 0.0


@dataclass
class FaultSpec:
    """An armed fault at one site.

    ``rate`` is the per-probe firing probability (evaluated deterministically
    from the injector seed); ``max_fires`` bounds the total number of firings
    (``None`` = unbounded); ``delay`` parameterizes the delay-shaped kinds.
    """

    kind: str
    rate: float = 1.0
    max_fires: Optional[int] = None
    delay: float = 0.0
    fired: int = field(default=0, compare=False)

    @property
    def exhausted(self) -> bool:
        return self.max_fires is not None and self.fired >= self.max_fires


class FaultInjector:
    """A seeded registry of faults armed at named sites.

    >>> injector = FaultInjector(seed=7)
    >>> injector.arm("parallel.task", "worker_crash", rate=0.2, max_fires=3)
    >>> fault = injector.probe("parallel.task")   # deterministic in (7, site, 0)

    The same seed and the same probe sequence reproduce the same firing
    pattern — the property the chaos harness's fault-free-replay comparison
    and "25 seeds" acceptance runs are built on.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._sites: Dict[str, List[FaultSpec]] = {}
        self._probes: Dict[str, int] = {}
        self._history: List[Fault] = []
        self._lock = threading.Lock()

    # -- arming --------------------------------------------------------------

    def arm(
        self,
        site: str,
        kind: str,
        *,
        rate: float = 1.0,
        max_fires: Optional[int] = None,
        delay: Optional[float] = None,
    ) -> "FaultInjector":
        """Arm ``kind`` at ``site``; returns self so arms chain."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        if delay is None:
            delay = _DEFAULT_DELAYS.get(kind, 0.0)
        with self._lock:
            self._sites.setdefault(site, []).append(
                FaultSpec(kind, rate=rate, max_fires=max_fires, delay=delay)
            )
        return self

    def disarm(self, site: str, kind: Optional[str] = None) -> None:
        """Remove every armed fault at ``site`` (optionally one kind only)."""
        with self._lock:
            if kind is None:
                self._sites.pop(site, None)
            elif site in self._sites:
                self._sites[site] = [s for s in self._sites[site] if s.kind != kind]

    # -- probing -------------------------------------------------------------

    def probe(self, site: str) -> Optional[Fault]:
        """One probe at ``site``: the fired :class:`Fault`, or ``None``.

        Every call advances the site's probe counter whether or not anything
        fires, so firing patterns depend only on how many times the site has
        been probed — not on what other sites did in between.  When several
        specs are armed at one site, the first (in arming order) whose
        deterministic coin lands wins the probe.
        """
        with self._lock:
            specs = self._sites.get(site)
            if not specs:
                return None
            sequence = self._probes.get(site, 0)
            self._probes[site] = sequence + 1
            for spec in specs:
                if spec.exhausted:
                    continue
                if spec.rate < 1.0:
                    # String seeding hashes via SHA-512 internally, so the
                    # draw is stable across processes and PYTHONHASHSEED.
                    coin = random.Random(
                        f"{self.seed}:{site}:{spec.kind}:{sequence}"
                    ).random()
                    if coin >= spec.rate:
                        continue
                spec.fired += 1
                fault = Fault(spec.kind, site, sequence, spec.delay)
                self._history.append(fault)
                return fault
            return None

    # -- introspection -------------------------------------------------------

    def fired(self, site: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Number of faults fired, optionally filtered by site and/or kind."""
        with self._lock:
            return sum(
                1
                for fault in self._history
                if (site is None or fault.site == site)
                and (kind is None or fault.kind == kind)
            )

    def probes(self, site: str) -> int:
        """How many times ``site`` has been probed."""
        with self._lock:
            return self._probes.get(site, 0)

    def history(self) -> List[Fault]:
        """Every fired fault, in firing order (a copy)."""
        with self._lock:
            return list(self._history)

    def armed_sites(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._sites)

    def reset(self) -> None:
        """Forget probe counters, firing counts and history; keep the arms."""
        with self._lock:
            self._probes.clear()
            self._history.clear()
            for specs in self._sites.values():
                for spec in specs:
                    spec.fired = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        with self._lock:
            arms = {site: [s.kind for s in specs] for site, specs in self._sites.items()}
        return f"FaultInjector(seed={self.seed}, armed={arms}, fired={len(self._history)})"
