"""Secondary indexes: hash (equality) and sorted (equality + range) access paths.

Greenplum's cost-based optimizer — the machinery Section 3.1 of the paper
leans on ("the driver UDF ... interrogates the database catalog", and the
generated queries are planned like any other SQL) — chooses between a
sequential segment scan and an index probe per predicate.  This module is the
storage half of that choice for our engine: per-table secondary indexes that
the planner (:mod:`repro.engine.planner`) turns into index-scan access paths.

Two kinds exist, mirroring PostgreSQL's ``hash`` and ``btree`` access methods:

* :class:`HashIndex` — ``{key: [(segment, position), ...]}`` buckets keyed by
  :func:`~repro.engine.types.hashable_key` (the same key identity GROUP BY,
  DISTINCT and the hash join use), supporting equality probes only.
* :class:`SortedIndex` — parallel ``(keys, entries)`` arrays kept sorted, so
  equality *and* range probes are two :mod:`bisect` calls.  Keys must be
  mutually comparable; an index that ever sees a key outside one comparison
  kind (numeric or string) marks itself unusable and the planner falls back
  to sequential scans, exactly as if the index did not exist.

Invariants shared by both kinds:

* **NULL keys are excluded** (NaN counts as NULL, per
  :func:`~repro.engine.types.is_null`).  SQL ``=``/range comparisons against
  NULL are never ``TRUE``, so excluded rows can never be probe results —
  matching the hash join's NULL-never-matches semantics.
* **Entries are (segment, position) pairs** into the table's segment lists.
  Probe results are returned sorted, which is exactly the sequential scan's
  (segment order, insertion order) emission order — the property that keeps
  index-scan query output byte-identical to the scan-based plan.
* **Maintenance is incremental**: inserts append an entry, TRUNCATE clears,
  deletes remap one segment's surviving positions without re-extracting or
  re-sorting keys, and only bulk loads / UPDATE's full-table replace take the
  O(n log n) rebuild path (:meth:`BaseIndex.rebuild`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from .types import hashable_key, is_null

__all__ = ["BaseIndex", "HashIndex", "SortedIndex", "make_index", "INDEX_KINDS"]

#: An index entry: (segment index, position within the segment's row list).
Entry = Tuple[int, int]

INDEX_KINDS = ("hash", "sorted")


def _comparison_kind(value: Any) -> Optional[str]:
    """The comparison family of a key: ``"num"``, ``"str"`` or None (unusable).

    Booleans fold into the numeric family (Python compares ``True < 2`` the
    way SQL does).  Anything else — arrays, lists, composite values — has no
    total order the engine's comparison operators guarantee, so a sorted
    index cannot serve it.
    """
    if isinstance(value, bool):
        return "num"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _column_values(rows, column: int):
    """One segment's values for the indexed column, in position order.

    Columnar segments (:class:`~repro.engine.columnar.ColumnStore`) expose
    ``iter_column`` — the rebuild then walks the packed column directly and
    never materializes row tuples; row-list segments index each tuple.
    """
    iter_column = getattr(rows, "iter_column", None)
    if iter_column is not None:
        return iter_column(column)
    return (row[column] for row in rows)


class BaseIndex:
    """Common shape of a secondary index on one column of one table."""

    kind: str = "base"

    def __init__(self, name: str, table_name: str, column_name: str, column_index: int) -> None:
        self.name = name
        self.table_name = table_name
        self.column_name = column_name
        self.column_index = column_index
        #: Set False when the index cannot represent its keys (uncomparable
        #: or unhashable values).  The planner treats an unusable index as
        #: absent; the table keeps maintaining row counts but not entries.
        self.usable = True

    # -- maintenance --------------------------------------------------------

    def add(self, value: Any, segment: int, position: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def remap_segment(self, segment: int, kept_positions: Sequence[int]) -> None:  # pragma: no cover
        raise NotImplementedError

    def replace(self, old_value: Any, new_value: Any, segment: int, position: int) -> None:  # pragma: no cover
        """In-place UPDATE of one row: drop the entry under ``old_value`` and
        re-add it under ``new_value`` (same segment/position)."""
        raise NotImplementedError

    def rebuild(self, segments: Sequence[Sequence[tuple]]) -> None:
        """Rebuild from scratch over the table's segment row lists.

        Used for bulk loads, UPDATE's full replace, redistribution and ALTER
        RENAME — anywhere incremental maintenance would degenerate to
        per-row work on the whole table anyway.
        """
        self.usable = True
        self.clear()
        column = self.column_index
        for segment, rows in enumerate(segments):
            for position, value in enumerate(_column_values(rows, column)):
                self.add(value, segment, position)
                if not self.usable:
                    return

    # -- probes -------------------------------------------------------------

    def probe_eq(self, value: Any) -> Optional[List[Entry]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def supports_range(self) -> bool:
        return False

    def entry_count(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def distinct_keys(self) -> Optional[int]:
        """Number of distinct indexed keys, when the structure knows it."""
        return None

    def count_eq(self, value: Any) -> Optional[int]:
        """Exact matching-entry count for an equality probe, or None.

        Cheap (O(1) hash lookup / O(log n) bisect) — the planner uses it as
        the cardinality estimate when no ANALYZE statistics exist.
        """
        return None

    def describe(self) -> Dict[str, Any]:
        """One ``pg_indexes``-style row for catalog introspection."""
        return {
            "indexname": self.name,
            "tablename": self.table_name,
            "columnname": self.column_name,
            "kind": self.kind,
            "entries": self.entry_count(),
            "usable": self.usable,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}({self.name!r}, table={self.table_name!r}, "
            f"column={self.column_name!r}, entries={self.entry_count()})"
        )


class HashIndex(BaseIndex):
    """Equality-only index: hashable key → entry list in insertion order."""

    kind = "hash"

    def __init__(self, name: str, table_name: str, column_name: str, column_index: int) -> None:
        super().__init__(name, table_name, column_name, column_index)
        self._buckets: Dict[Any, List[Entry]] = {}

    def add(self, value: Any, segment: int, position: int) -> None:
        if not self.usable or is_null(value):
            return
        try:
            key = hashable_key(value)
            bucket = self._buckets.get(key)
        except TypeError:
            # A key hashable_key cannot normalize (exotic objects): degrade.
            self.usable = False
            self._buckets.clear()
            return
        if bucket is None:
            self._buckets[key] = [(segment, position)]
        else:
            bucket.append((segment, position))

    def clear(self) -> None:
        self._buckets.clear()

    def remap_segment(self, segment: int, kept_positions: Sequence[int]) -> None:
        if not self.usable:
            return
        kept = list(kept_positions)
        dead_keys: List[Any] = []
        for key, entries in self._buckets.items():
            new_entries: List[Entry] = []
            for entry_segment, position in entries:
                if entry_segment != segment:
                    new_entries.append((entry_segment, position))
                    continue
                rank = bisect_left(kept, position)
                if rank < len(kept) and kept[rank] == position:
                    new_entries.append((segment, rank))
            if new_entries:
                self._buckets[key] = new_entries
            else:
                dead_keys.append(key)
        for key in dead_keys:
            del self._buckets[key]

    def replace(self, old_value: Any, new_value: Any, segment: int, position: int) -> None:
        if not self.usable:
            return
        if not is_null(old_value):
            try:
                key = hashable_key(old_value)
            except TypeError:
                # The stored key was never indexed (add degraded us already),
                # but degrade defensively — replace must never leave a stale
                # entry behind.
                self.usable = False
                self._buckets.clear()
                return
            bucket = self._buckets.get(key)
            if bucket is not None:
                try:
                    bucket.remove((segment, position))
                except ValueError:
                    pass
                if not bucket:
                    del self._buckets[key]
        self.add(new_value, segment, position)

    def probe_eq(self, value: Any) -> Optional[List[Entry]]:
        if not self.usable:
            return None
        if is_null(value):
            return []  # `col = NULL` is never TRUE
        try:
            entries = self._buckets.get(hashable_key(value), [])
        except TypeError:
            return None
        return sorted(entries)

    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._buckets.values())

    def distinct_keys(self) -> Optional[int]:
        return len(self._buckets) if self.usable else None

    def count_eq(self, value: Any) -> Optional[int]:
        if not self.usable:
            return None
        if is_null(value):
            return 0
        try:
            return len(self._buckets.get(hashable_key(value), ()))
        except TypeError:
            return None


class SortedIndex(BaseIndex):
    """Sorted-array index: equality and range probes via bisect."""

    kind = "sorted"

    def __init__(self, name: str, table_name: str, column_name: str, column_index: int) -> None:
        super().__init__(name, table_name, column_name, column_index)
        self._keys: List[Any] = []
        self._entries: List[Entry] = []
        self._key_kind: Optional[str] = None

    def _degrade(self) -> None:
        self.usable = False
        self._keys.clear()
        self._entries.clear()
        self._key_kind = None

    def _admit(self, value: Any) -> bool:
        """Check a key belongs to this index's comparison family."""
        kind = _comparison_kind(value)
        if kind is None:
            return False
        if self._key_kind is None:
            self._key_kind = kind
            return True
        return kind == self._key_kind

    def add(self, value: Any, segment: int, position: int) -> None:
        if not self.usable or is_null(value):
            return
        if not self._admit(value):
            self._degrade()
            return
        at = bisect_right(self._keys, value)
        self._keys.insert(at, value)
        self._entries.insert(at, (segment, position))

    def clear(self) -> None:
        self._keys.clear()
        self._entries.clear()
        self._key_kind = None

    def rebuild(self, segments: Sequence[Sequence[tuple]]) -> None:
        """Bulk build: collect, kind-check, sort once (O(n log n))."""
        self.usable = True
        self.clear()
        column = self.column_index
        pairs: List[Tuple[Any, Entry]] = []
        for segment, rows in enumerate(segments):
            for position, value in enumerate(_column_values(rows, column)):
                if is_null(value):
                    continue
                if not self._admit(value):
                    self._degrade()
                    return
                pairs.append((value, (segment, position)))
        pairs.sort(key=lambda pair: (pair[0], pair[1]))
        self._keys = [key for key, _ in pairs]
        self._entries = [entry for _, entry in pairs]

    def remap_segment(self, segment: int, kept_positions: Sequence[int]) -> None:
        if not self.usable:
            return
        kept = list(kept_positions)
        new_keys: List[Any] = []
        new_entries: List[Entry] = []
        for key, (entry_segment, position) in zip(self._keys, self._entries):
            if entry_segment != segment:
                new_keys.append(key)
                new_entries.append((entry_segment, position))
                continue
            rank = bisect_left(kept, position)
            if rank < len(kept) and kept[rank] == position:
                new_keys.append(key)
                new_entries.append((segment, rank))
        self._keys = new_keys
        self._entries = new_entries

    def replace(self, old_value: Any, new_value: Any, segment: int, position: int) -> None:
        if not self.usable:
            return
        if not is_null(old_value):
            # All keys equal to old_value form one contiguous bisect range;
            # the (segment, position) pair disambiguates within it.  A key
            # outside the comparison family cannot have been indexed while
            # usable, but degrade rather than trust that invariant.
            try:
                start = bisect_left(self._keys, old_value)
                end = bisect_right(self._keys, old_value, lo=start)
            except TypeError:
                self._degrade()
                return
            for at in range(start, end):
                if self._entries[at] == (segment, position):
                    del self._keys[at]
                    del self._entries[at]
                    break
        self.add(new_value, segment, position)

    def _probe_kind_ok(self, value: Any) -> bool:
        """A probe value must share the key family, or the comparison the
        sequential scan would run could raise — fall back so it does."""
        if not self._keys:
            return True  # empty index: probe trivially returns no rows
        return _comparison_kind(value) == self._key_kind

    def probe_eq(self, value: Any) -> Optional[List[Entry]]:
        # Equality is the degenerate inclusive range [value, value] — but a
        # NULL value must check here: probe_range reads a None bound as
        # "unbounded", while `col = NULL` is never TRUE.
        if is_null(value):
            return [] if self.usable else None
        return self.probe_range(value, value)

    def _range_bounds(
        self, low: Any, high: Any, low_strict: bool, high_strict: bool
    ) -> Optional[Tuple[int, int]]:
        """``(start, end)`` slice of the sorted arrays for a range predicate.

        The single source of truth for bound resolution, shared by
        :meth:`probe_range` and :meth:`count_range` so the planner's
        cardinality estimate can never disagree with the probe it estimates.
        ``None`` means the probe must decline (unusable index or a
        cross-kind bound); an empty slice means no rows match — including a
        NULL bound, whose predicate is never TRUE under SQL three-valued
        comparison.
        """
        if not self.usable:
            return None
        if (low is not None and is_null(low)) or (high is not None and is_null(high)):
            return (0, 0)
        for bound in (low, high):
            if bound is not None and not self._probe_kind_ok(bound):
                return None
        start = 0
        if low is not None:
            start = bisect_right(self._keys, low) if low_strict else bisect_left(self._keys, low)
        end = len(self._keys)
        if high is not None:
            end = bisect_left(self._keys, high) if high_strict else bisect_right(self._keys, high)
        return (start, max(start, end))

    def probe_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> Optional[List[Entry]]:
        """Entries with ``low (<|<=) key (<|<=) high``; ``None`` bound = open."""
        bounds = self._range_bounds(low, high, low_strict, high_strict)
        if bounds is None:
            return None
        start, end = bounds
        return sorted(self._entries[start:end])

    def supports_range(self) -> bool:
        return True

    def count_eq(self, value: Any) -> Optional[int]:
        if is_null(value):  # None means "unbounded" to count_range
            return 0 if self.usable else None
        return self.count_range(value, value)

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> Optional[int]:
        """Exact entry count for a range probe (two bisects), or None."""
        bounds = self._range_bounds(low, high, low_strict, high_strict)
        if bounds is None:
            return None
        start, end = bounds
        return end - start

    def entry_count(self) -> int:
        return len(self._keys)

    def distinct_keys(self) -> Optional[int]:
        if not self.usable:
            return None
        distinct = 0
        previous = object()
        for key in self._keys:
            if key != previous:
                distinct += 1
                previous = key
        return distinct


def make_index(name: str, table_name: str, column_name: str, column_index: int, kind: str) -> BaseIndex:
    """Construct an index of the requested kind (``hash`` or ``sorted``)."""
    if kind == "hash":
        return HashIndex(name, table_name, column_name, column_index)
    if kind in ("sorted", "btree"):
        return SortedIndex(name, table_name, column_name, column_index)
    raise CatalogError(f"unknown index kind {kind!r} (expected one of {INDEX_KINDS})")
