"""Decorator-style helpers for installing UDFs and UDAs on a database.

MADlib ships SQL installation scripts that register its functions; the
decorators here are the equivalent for Python callers and make method modules
read like the paper's Listings 1 and 2: a transition function, a merge
function and a final function registered under a SQL name.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from .aggregates import AggregateDefinition
from .database import Database
from .types import ANY, SQLType

__all__ = ["scalar_function", "AggregateBuilder"]


def scalar_function(
    database: Database,
    name: str,
    *,
    return_type: Union[str, SQLType] = ANY,
    strict: bool = True,
    volatile: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering the wrapped callable as a SQL scalar function.

    Example
    -------
    >>> db = Database()
    >>> @scalar_function(db, "double_it", return_type="double precision")
    ... def double_it(x):
    ...     return 2.0 * x
    >>> db.query_scalar("SELECT double_it(21)")
    42.0
    """

    def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
        database.create_function(
            name, func, return_type=return_type, strict=strict, volatile=volatile
        )
        return func

    return decorator


class AggregateBuilder:
    """Fluent builder for registering a user-defined aggregate.

    Mirrors PostgreSQL's ``CREATE AGGREGATE (SFUNC, PREFUNC, FINALFUNC)``
    declaration, which is how MADlib installs its aggregates.

    Example
    -------
    >>> db = Database()
    >>> (AggregateBuilder(db, "sum_of_squares")
    ...     .with_initial_state(0.0)
    ...     .with_transition(lambda state, x: state + x * x)
    ...     .with_merge(lambda a, b: a + b)
    ...     .register())
    >>> db.create_table("t", [("x", "double precision")])  # doctest: +ELLIPSIS
    Table(...)
    >>> db.load_rows("t", [(1.0,), (2.0,)])
    2
    >>> db.query_scalar("SELECT sum_of_squares(x) FROM t")
    5.0
    """

    def __init__(self, database: Database, name: str) -> None:
        self._database = database
        self._name = name
        self._transition: Optional[Callable[..., Any]] = None
        self._merge: Optional[Callable[[Any, Any], Any]] = None
        self._final: Optional[Callable[[Any], Any]] = None
        self._initial_state: Any = None
        self._strict = True
        self._return_type: Union[str, SQLType] = ANY

    def with_transition(self, func: Callable[..., Any]) -> "AggregateBuilder":
        self._transition = func
        return self

    def with_merge(self, func: Callable[[Any, Any], Any]) -> "AggregateBuilder":
        self._merge = func
        return self

    def with_final(self, func: Callable[[Any], Any]) -> "AggregateBuilder":
        self._final = func
        return self

    def with_initial_state(self, state: Any) -> "AggregateBuilder":
        self._initial_state = state
        return self

    def with_return_type(self, return_type: Union[str, SQLType]) -> "AggregateBuilder":
        self._return_type = return_type
        return self

    def not_strict(self) -> "AggregateBuilder":
        self._strict = False
        return self

    def register(self) -> AggregateDefinition:
        if self._transition is None:
            raise ValueError(f"aggregate {self._name!r} needs a transition function")
        return self._database.create_aggregate(
            self._name,
            transition=self._transition,
            merge=self._merge,
            final=self._final,
            initial_state=self._initial_state,
            strict=self._strict,
            return_type=self._return_type,
        )
