"""Table schemas: ordered, named, typed columns.

A schema is the engine-side contract the paper's "templated queries"
(Section 3.1.3) introspect: driver UDFs look up input-table schemas in the
catalog and synthesize SQL whose output schema is a function of the input
schema.  Schemas are immutable; deriving a new schema (projection, join,
rename) always creates a new object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from .types import SQLType, type_from_name

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single column: a name and a SQL type."""

    name: str
    sql_type: SQLType

    @classmethod
    def of(cls, name: str, type_name: str) -> "Column":
        """Build a column from a SQL type spelling, e.g. ``Column.of("x", "double precision[]")``."""
        return cls(name, type_from_name(type_name))

    def renamed(self, name: str) -> "Column":
        return Column(name, self.sql_type)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} {self.sql_type}"


class Schema:
    """An ordered collection of :class:`Column` objects with name lookup."""

    def __init__(self, columns: Sequence[Column]) -> None:
        self._columns: Tuple[Column, ...] = tuple(columns)
        index: dict[str, int] = {}
        for position, column in enumerate(self._columns):
            key = column.name.lower()
            if key in index:
                raise CatalogError(f"duplicate column name {column.name!r} in schema")
            index[key] = position
        self._index = index

    # -- construction -------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, str]]) -> "Schema":
        """Build a schema from ``(name, type_name)`` pairs."""
        return cls([Column.of(name, type_name) for name, type_name in pairs])

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, item) -> Column:
        if isinstance(item, str):
            return self._columns[self.index_of(item)]
        return self._columns[item]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Schema({', '.join(str(c) for c in self._columns)})"

    # -- lookups ------------------------------------------------------------

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> List[str]:
        return [column.name for column in self._columns]

    @property
    def types(self) -> List[SQLType]:
        return [column.sql_type for column in self._columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Position of a column by (case-insensitive) name."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"column {name!r} does not exist (available: {', '.join(self.names) or 'none'})"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def type_of(self, name: str) -> SQLType:
        return self.column(name).sql_type

    # -- derivations --------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema containing only the named columns, in the given order."""
        return Schema([self.column(name) for name in names])

    def rename(self, mapping: dict) -> "Schema":
        """Schema with columns renamed per ``mapping`` (old name -> new name)."""
        lowered = {key.lower(): value for key, value in mapping.items()}
        return Schema(
            [
                column.renamed(lowered.get(column.name.lower(), column.name))
                for column in self._columns
            ]
        )

    def concat(self, other: "Schema", *, on_conflict: str = "error") -> "Schema":
        """Concatenate two schemas (used by joins).

        ``on_conflict`` may be ``"error"`` or ``"suffix"``; with ``"suffix"``
        clashing names from ``other`` get a ``_right`` suffix, matching the
        behaviour methods rely on when joining a data table with a model table.
        """
        columns = list(self._columns)
        taken = {column.name.lower() for column in columns}
        for column in other:
            name = column.name
            if name.lower() in taken:
                if on_conflict == "error":
                    raise CatalogError(f"duplicate column {name!r} when concatenating schemas")
                suffix = 1
                candidate = f"{name}_right"
                while candidate.lower() in taken:
                    suffix += 1
                    candidate = f"{name}_right{suffix}"
                name = candidate
            taken.add(name.lower())
            columns.append(column.renamed(name))
        return Schema(columns)
