"""SQL type system for the engine substrate.

MADlib methods rely on a small set of PostgreSQL types: the numeric scalars,
``TEXT``, ``BOOLEAN`` and — crucially for the linear-algebra micro-programming
layer — the ``DOUBLE PRECISION[]`` array type that stores feature vectors and
model coefficients (Section 4.1.1 of the paper).  This module defines those
types, name resolution from SQL spellings, value coercion and type inference
for expression evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from ..errors import TypeMismatchError

__all__ = [
    "SQLType",
    "INTEGER",
    "BIGINT",
    "DOUBLE",
    "TEXT",
    "BOOLEAN",
    "DOUBLE_ARRAY",
    "INTEGER_ARRAY",
    "TEXT_ARRAY",
    "ANY",
    "type_from_name",
    "infer_type",
    "coerce_value",
    "common_numeric_type",
    "is_null",
]


@dataclass(frozen=True)
class SQLType:
    """A SQL data type.

    Attributes
    ----------
    name:
        Canonical SQL spelling, e.g. ``"double precision"``.
    python_type:
        The Python type values of this SQL type are stored as.
    is_array:
        True for array types such as ``double precision[]``.
    element:
        For array types, the element :class:`SQLType`.
    """

    name: str
    python_type: type
    is_array: bool = False
    element: Optional["SQLType"] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type participate in arithmetic."""
        return self in (INTEGER, BIGINT, DOUBLE)


INTEGER = SQLType("integer", int)
BIGINT = SQLType("bigint", int)
DOUBLE = SQLType("double precision", float)
TEXT = SQLType("text", str)
BOOLEAN = SQLType("boolean", bool)
DOUBLE_ARRAY = SQLType("double precision[]", np.ndarray, is_array=True, element=DOUBLE)
INTEGER_ARRAY = SQLType("integer[]", np.ndarray, is_array=True, element=INTEGER)
TEXT_ARRAY = SQLType("text[]", list, is_array=True, element=TEXT)
#: Pseudo-type used for expressions whose type is only known at runtime
#: (e.g. results of polymorphic UDFs, the way PostgreSQL uses ``anyelement``).
ANY = SQLType("any", object)


_NAME_ALIASES = {
    "int": INTEGER,
    "int4": INTEGER,
    "integer": INTEGER,
    "smallint": INTEGER,
    "int8": BIGINT,
    "bigint": BIGINT,
    "serial": INTEGER,
    "float": DOUBLE,
    "float8": DOUBLE,
    "real": DOUBLE,
    "double": DOUBLE,
    "double precision": DOUBLE,
    "numeric": DOUBLE,
    "decimal": DOUBLE,
    "text": TEXT,
    "varchar": TEXT,
    "char": TEXT,
    "character varying": TEXT,
    "bool": BOOLEAN,
    "boolean": BOOLEAN,
    "float8[]": DOUBLE_ARRAY,
    "double precision[]": DOUBLE_ARRAY,
    "float[]": DOUBLE_ARRAY,
    "real[]": DOUBLE_ARRAY,
    "int[]": INTEGER_ARRAY,
    "integer[]": INTEGER_ARRAY,
    "int4[]": INTEGER_ARRAY,
    "bigint[]": INTEGER_ARRAY,
    "text[]": TEXT_ARRAY,
    "varchar[]": TEXT_ARRAY,
    "any": ANY,
    "anyelement": ANY,
    "anyarray": ANY,
}


def type_from_name(name: str) -> SQLType:
    """Resolve a SQL type spelling (case-insensitive) to a :class:`SQLType`.

    Raises
    ------
    TypeMismatchError
        If the spelling is not recognised.
    """
    key = " ".join(name.lower().split())
    try:
        return _NAME_ALIASES[key]
    except KeyError:
        raise TypeMismatchError(f"unknown SQL type: {name!r}") from None


def is_null(value: Any) -> bool:
    """SQL NULL test: ``None`` and floating NaN both count as NULL.

    MADlib treats NaN inputs as missing in several methods; folding NaN into
    NULL here keeps aggregate skip-NULL semantics consistent.
    """
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def infer_type(value: Any) -> SQLType:
    """Infer the SQL type of a Python value (used for literals and UDF results)."""
    if value is None:
        return ANY
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        return BIGINT
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, str):
        return TEXT
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "fc":
            return DOUBLE_ARRAY
        if value.dtype.kind in "iu":
            return INTEGER_ARRAY
        return TEXT_ARRAY
    if isinstance(value, (list, tuple)):
        if all(isinstance(v, str) for v in value):
            return TEXT_ARRAY
        if all(isinstance(v, (int, np.integer)) and not isinstance(v, bool) for v in value):
            return INTEGER_ARRAY
        return DOUBLE_ARRAY
    return ANY


def common_numeric_type(left: SQLType, right: SQLType) -> SQLType:
    """Numeric type promotion used by arithmetic operators."""
    if DOUBLE in (left, right):
        return DOUBLE
    if BIGINT in (left, right):
        return BIGINT
    return INTEGER


def _coerce_array(value: Any, sql_type: SQLType) -> Any:
    if sql_type is TEXT_ARRAY:
        if isinstance(value, np.ndarray):
            value = value.tolist()
        if not isinstance(value, (list, tuple)):
            raise TypeMismatchError(f"cannot coerce {type(value).__name__} to {sql_type}")
        return [None if is_null(v) else str(v) for v in value]
    dtype = np.float64 if sql_type is DOUBLE_ARRAY else np.int64
    try:
        arr = np.asarray(value, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {sql_type}: {exc}") from None
    return arr


def coerce_value(value: Any, sql_type: SQLType) -> Any:
    """Coerce ``value`` to the Python representation of ``sql_type``.

    ``None`` (SQL NULL) passes through unchanged for any type.

    Raises
    ------
    TypeMismatchError
        If the value cannot be represented in the target type.
    """
    if value is None:
        return None
    if sql_type is ANY:
        return value
    if sql_type.is_array:
        return _coerce_array(value, sql_type)
    if sql_type is BOOLEAN:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("t", "true", "yes", "1"):
                return True
            if lowered in ("f", "false", "no", "0"):
                return False
            raise TypeMismatchError(f"cannot coerce {value!r} to boolean")
        if isinstance(value, (int, np.integer, float, np.floating)):
            return bool(value)
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to boolean")
    if sql_type in (INTEGER, BIGINT):
        if isinstance(value, (bool, np.bool_)):
            return int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)):
            if float(value).is_integer():
                return int(value)
            raise TypeMismatchError(f"cannot coerce non-integral {value!r} to {sql_type}")
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError:
                raise TypeMismatchError(f"cannot coerce {value!r} to {sql_type}") from None
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to {sql_type}")
    if sql_type is DOUBLE:
        if isinstance(value, (bool, np.bool_)):
            return float(value)
        if isinstance(value, (int, np.integer, float, np.floating)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                raise TypeMismatchError(f"cannot coerce {value!r} to double precision") from None
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to double precision")
    if sql_type is TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, (bool, np.bool_)):
            return "true" if value else "false"
        if isinstance(value, (int, np.integer, float, np.floating)):
            return str(value)
        raise TypeMismatchError(f"cannot coerce {type(value).__name__} to text")
    raise TypeMismatchError(f"unsupported target type {sql_type}")


def format_value(value: Any) -> str:
    """Render a value the way ``psql`` would (used by examples and reports)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, np.ndarray):
        return "{" + ",".join(format_value(v) for v in value.tolist()) + "}"
    if isinstance(value, (list, tuple)):
        return "{" + ",".join(format_value(v) for v in value) + "}"
    if isinstance(value, dict):
        return "(" + ",".join(f"{k}={format_value(v)}" for k, v in value.items()) + ")"
    return str(value)


def values_equal(left: Any, right: Any) -> bool:
    """Equality that understands arrays (used by DISTINCT / GROUP BY keys)."""
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        try:
            return bool(np.array_equal(np.asarray(left), np.asarray(right)))
        except (TypeError, ValueError):
            return False
    return left == right


def hashable_key(value: Any) -> Any:
    """Convert a value to something hashable for grouping and distinct."""
    if isinstance(value, np.ndarray):
        return ("__array__", value.shape, tuple(value.ravel().tolist()))
    if isinstance(value, (list, tuple)):
        return tuple(hashable_key(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, hashable_key(v)) for k, v in value.items()))
    return value
