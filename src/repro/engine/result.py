"""Query results returned by the engine."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from .types import format_value

__all__ = ["ResultSet"]


class ResultSet:
    """The rows and metadata produced by executing one statement.

    For statements that do not produce rows (INSERT, UPDATE, CREATE ...) the
    result has empty ``columns``/``rows`` and a meaningful ``rowcount``.
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Sequence[Tuple[Any, ...]],
        *,
        rowcount: Optional[int] = None,
        stats: Optional[object] = None,
    ) -> None:
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        self.rowcount = len(self.rows) if rowcount is None else rowcount
        #: Execution statistics (per-segment aggregate timings) when the
        #: statement exercised the parallel aggregation path.
        self.stats = stats

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"

    # -- accessors --------------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """All values of one output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def first(self) -> Optional[Tuple[Any, ...]]:
        """The first row, or None for an empty result."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def pretty(self, max_rows: int = 20) -> str:
        """psql-style expanded display used by the examples."""
        lines: List[str] = []
        for row_number, row in enumerate(self.rows[:max_rows], start=1):
            lines.append(f"-[ RECORD {row_number} ]-")
            width = max((len(c) for c in self.columns), default=0)
            for name, value in zip(self.columns, row):
                lines.append(f"{name.ljust(width)} | {format_value(value)}")
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
