"""Incremental materialized views: O(delta) aggregate upkeep.

A materialized view stores the *states* of the aggregates in its defining
query, not their finalized values.  Because every built-in aggregate (and
every method kernel with a ``merge`` function) follows the mergeable
transition/merge/final contract from :mod:`repro.engine.aggregates`, an
``INSERT`` into the base table only has to fold the delta rows into the
affected groups' states — O(delta) work — and a read finalizes the states on
demand.  ``DELETE``/``UPDATE``/``TRUNCATE`` (and any write the engine cannot
attribute to a delta) simply leave the view *stale*; the next read detects the
base table's ``_data_version`` drift and recomputes from scratch.  ``REFRESH
MATERIALIZED VIEW`` forces that recompute eagerly.

Two maintenance strategies exist:

``incremental``
    Single-table aggregate/GROUP BY queries over a real table.  Per-group,
    per-segment aggregate states are kept; inserts fold deltas in place and
    reads finalize.  The per-segment state layout reproduces the executor's
    segmented fold exactly (fold each segment's stream, then
    ``merge_states`` in segment order), so finalized view contents are
    byte-identical to running the defining query for fold-exact aggregates.

``recompute``
    Everything else (joins, DISTINCT, ORDER BY/LIMIT, window functions,
    plain projections, UNIONs, views over views).  The finalized result rows
    are stored and rebuilt whenever any dependency's version drifts.

Freshness is defined purely by version comparison — ``synced_versions``
records each dependency's ``Table._data_version`` (or dependent view's
``version``) at the last synchronization point, so *any* write path (SQL DML,
direct ``Table`` API calls, chaos-harness interference) is detected without
needing hooks on every mutator.  Delta folding is the only path that needs an
explicit hook (:func:`apply_insert_delta`, called from the executor's INSERT
handler) because it must observe the per-segment row ranges the insert
appended.

Thread safety: every read/maintenance operation takes the view's re-entrant
lock.  If a delta fold dies partway through (fault injection, a raising UDA
transition), the view is force-marked stale before the lock is released, so a
half-applied delta can never be observed — the next read recomputes from the
base table.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from .aggregates import AggregateDefinition, AggregateRunner
from .expressions import Expression, FunctionCall, Parameter, RowContext, Star
from .compile import ColumnLayout, keys_for_columns
from .parser.ast_nodes import (
    SelectItem,
    SelectStatement,
    Statement,
    SubquerySource,
    TableRef,
    UnionStatement,
)
from .plancache import referenced_tables
from .types import hashable_key, is_null

__all__ = [
    "MaterializedView",
    "plan_matview",
    "refresh",
    "ensure_fresh",
    "read_rows",
    "apply_insert_delta",
]


class _Group:
    """One group's incremental state.

    ``order_key`` is the ``(segment, position)`` of the group's first member
    in base-table scan order — the executor emits groups in first-appearance
    order over the segment-concatenated scan, so sorting groups by this key
    reproduces its output ordering exactly.  ``rep_row`` is that member's
    stored base row (the representative whose context evaluates the group-by
    output expressions).  ``states`` holds one state list per aggregate call,
    each with one entry per base segment, mirroring the executor's segmented
    fold-then-merge.
    """

    __slots__ = ("order_key", "rep_row", "states")

    def __init__(
        self,
        order_key: Optional[Tuple[int, int]],
        rep_row: Optional[tuple],
        states: List[List[Any]],
    ) -> None:
        self.order_key = order_key
        self.rep_row = rep_row
        self.states = states


class _CallSpec:
    """A planned aggregate call: definition, runner and compiled argument fns."""

    __slots__ = ("call", "definition", "runner", "argument_fns")

    def __init__(
        self,
        call: FunctionCall,
        definition: AggregateDefinition,
        argument_fns: Optional[List[Callable[[tuple], Any]]],
    ) -> None:
        self.call = call
        self.definition = definition
        self.runner = AggregateRunner(definition)
        self.argument_fns = argument_fns

    def fresh_states(self, num_segments: int) -> List[Any]:
        return [self.definition.make_state() for _ in range(num_segments)]


class _MaintenancePlan:
    """Compiled closures for folding base rows, valid for one catalog version."""

    __slots__ = (
        "catalog_version",
        "keys_per_column",
        "key_exprs",
        "key_fns",
        "where_expr",
        "where_fn",
        "call_specs",
    )

    def __init__(
        self,
        catalog_version: int,
        keys_per_column: List[List[str]],
        key_exprs: List[Expression],
        key_fns: Optional[List[Callable[[tuple], Any]]],
        where_expr: Optional[Expression],
        where_fn: Optional[Callable[[tuple], Any]],
        call_specs: List[_CallSpec],
    ) -> None:
        self.catalog_version = catalog_version
        self.keys_per_column = keys_per_column
        self.key_exprs = key_exprs
        self.key_fns = key_fns
        self.where_expr = where_expr
        self.where_fn = where_fn
        self.call_specs = call_specs


class MaterializedView:
    """Catalog entry for one materialized view."""

    def __init__(
        self,
        name: str,
        sql: str,
        statement: Statement,
        select_items: Optional[List[SelectItem]],
        columns: Optional[List[str]],
        strategy: str,
        dependencies: List[str],
        base_table: Optional[str],
        strategy_reason: str,
    ) -> None:
        self.name = name
        self.sql = sql
        #: The parsed defining query.  Reused verbatim for every recompute and
        #: finalize so the ``__agg_{id(call)}`` context keys stay stable.
        self.statement = statement
        #: Star-expanded select items (incremental strategy only) — the same
        #: :class:`SelectItem` objects every read evaluates.
        self.select_items = select_items
        self.columns = columns
        self.strategy = strategy  # "incremental" | "recompute"
        self.strategy_reason = strategy_reason
        self.dependencies = dependencies  # lowercased base table / view names
        self.base_table = base_table  # lowercased; incremental only
        #: Content version: bumped on every materialized-content change
        #: (delta fold, recompute, refresh).  The plan cache snapshots it so
        #: maintenance invalidates cached plans that scan the view.
        self.version = 0
        #: Per-dependency version at the last synchronization point.
        self.synced_versions: Dict[str, int] = {}
        self.deltas_applied = 0
        self.recomputes = 0
        self.last_row_count: Optional[int] = None
        self.lock = threading.RLock()
        # Incremental state ------------------------------------------------
        self.groups: Dict[Any, _Group] = {}
        self.num_base_segments = 1
        self._plan: Optional[_MaintenancePlan] = None
        # Recompute state --------------------------------------------------
        self.rows: List[tuple] = []

    # ------------------------------------------------------------------ freshness

    def is_stale(self, catalog) -> bool:
        """True when any dependency's version drifted since the last sync."""
        for name in self.dependencies:
            if catalog.has_table(name):
                current = catalog.get_table(name)._data_version
            elif catalog.has_matview(name):
                current = catalog.get_matview(name).version
            else:  # dependency dropped out from under us
                return True
            if self.synced_versions.get(name) != current:
                return True
        return False

    def force_stale(self) -> None:
        """Discard sync state so the next read recomputes from scratch."""
        self.synced_versions.clear()

    def snapshot_token(self, catalog) -> tuple:
        """Stable identity of the view's *source* data for snapshot checks.

        Derived from the transitive base tables' data versions rather than
        ``self.version``, so a lazy recompute performed *during* a read does
        not look like concurrent drift to the serving layer's snapshot
        validation.
        """
        token = []
        for name in self.dependencies:
            if catalog.has_table(name):
                token.append(catalog.get_table(name)._data_version)
            elif catalog.has_matview(name):
                token.append(catalog.get_matview(name).snapshot_token(catalog))
            else:
                token.append(None)
        return tuple(token)

    def describe(self, catalog) -> Dict[str, Any]:
        """JSON-safe observability record for ``Catalog.matviews()``."""
        rows = self.last_row_count
        if rows is None and self.strategy == "incremental":
            # No read has finalized yet; without HAVING the group count is
            # exactly the output row count.
            if self.statement.having is None:
                rows = len(self.groups)
        return {
            "matviewname": self.name,
            "definition": self.sql,
            "strategy": self.strategy,
            "rows": rows,
            "stale": self.is_stale(catalog),
            "version": self.version,
            "deltas_applied": self.deltas_applied,
            "recomputes": self.recomputes,
        }


# ---------------------------------------------------------------------- planning


def _statement_expressions(statement: Statement) -> List[Expression]:
    """Every expression reachable from a SELECT/UNION statement tree."""
    expressions: List[Expression] = []
    if isinstance(statement, UnionStatement):
        for part in statement.selects:
            expressions.extend(_statement_expressions(part))
        return expressions
    if not isinstance(statement, SelectStatement):
        return expressions
    for item in statement.select_items:
        if not isinstance(item.expression, Star):
            expressions.append(item.expression)
    for clause in (statement.where, statement.having):
        if clause is not None:
            expressions.append(clause)
    expressions.extend(statement.group_by)
    for ordering in statement.order_by:
        expressions.append(ordering.expression)
    for item in statement.from_items:
        if isinstance(item, SubquerySource):
            expressions.extend(_statement_expressions(item.select))
    return expressions


def _walk_all(expressions: Sequence[Expression]):
    for expression in expressions:
        yield from expression.walk()


def _incremental_block_reason(executor, statement: Statement) -> Optional[str]:
    """Why the view cannot be maintained incrementally (None = eligible)."""
    if not isinstance(statement, SelectStatement):
        return "defining query is a UNION"
    if statement.distinct:
        return "SELECT DISTINCT requires recompute"
    if statement.order_by or statement.limit is not None or statement.offset is not None:
        return "ORDER BY/LIMIT/OFFSET requires recompute"
    if len(statement.from_items) != 1 or not isinstance(statement.from_items[0], TableRef):
        return "defining query must scan exactly one base table"
    ref = statement.from_items[0]
    if not executor.catalog.has_table(ref.name):
        return "base relation is not a plain table"
    expressions = _statement_expressions(statement)
    if executor._collect_window_calls(expressions):
        return "window functions require recompute"
    calls = executor._collect_aggregate_calls(expressions)
    if not calls and not statement.group_by:
        return "plain projection views maintain by recompute"
    aggregates = executor._aggregate_registry()
    table = executor.catalog.get_table(ref.name)
    for call in calls:
        if call.distinct:
            return "DISTINCT aggregates require recompute"
        definition = aggregates.get(call.name.lower())
        if definition is None:
            return f"unknown aggregate {call.name!r}"
        if table.num_segments > 1 and definition.merge is None:
            return (
                f"aggregate {call.name!r} has no merge function; "
                "cannot maintain per-segment states"
            )
    functions = executor.catalog
    for node in _walk_all(expressions):
        if isinstance(node, FunctionCall):
            name = node.name.lower()
            if functions.has_function(name) and functions.get_function(name).volatile:
                return f"volatile function {node.name!r} requires recompute"
    return None


def plan_matview(executor, name: str, sql: str, statement: Statement) -> MaterializedView:
    """Validate and plan a view definition; does not materialize anything."""
    for node in _walk_all(_statement_expressions(statement)):
        if isinstance(node, Parameter):
            raise CatalogError(
                "materialized view definitions cannot reference bind parameters"
            )
    dependencies = sorted({n.lower() for n in referenced_tables(statement)})
    for dependency in dependencies:
        if not executor.catalog.has_table(dependency) and not executor.catalog.has_matview(
            dependency
        ):
            raise CatalogError(f"relation {dependency!r} does not exist")
    reason = _incremental_block_reason(executor, statement)
    if reason is None:
        ref = statement.from_items[0]
        table = executor.catalog.get_table(ref.name)
        relation_columns = [(ref.effective_alias, col) for col in table.schema.names]
        items = _expand_items(executor, statement.select_items, relation_columns)
        columns = [executor._output_name(item, i) for i, item in enumerate(items)]
        view = MaterializedView(
            name,
            sql,
            statement,
            items,
            columns,
            "incremental",
            dependencies,
            ref.name.lower(),
            "incremental",
        )
    else:
        view = MaterializedView(
            name, sql, statement, None, None, "recompute", dependencies, None, reason
        )
    return view


class _ColumnsOnly:
    """Minimal stand-in for ``_Relation`` where only ``.columns`` is read."""

    __slots__ = ("columns",)

    def __init__(self, columns):
        self.columns = columns


def _expand_items(executor, items, relation_columns) -> List[SelectItem]:
    return executor._expand_select_items(items, _ColumnsOnly(relation_columns))


# ---------------------------------------------------------------- maintenance plan


def _base_layout(executor, view: MaterializedView):
    ref = view.statement.from_items[0]
    table = executor.catalog.get_table(ref.name)
    columns = [(ref.effective_alias, col) for col in table.schema.names]
    return table, columns


def _maintenance_plan(executor, view: MaterializedView) -> _MaintenancePlan:
    catalog_version = executor.catalog.version
    plan = view._plan
    if plan is not None and plan.catalog_version == catalog_version:
        return plan
    statement = view.statement
    table, columns = _base_layout(executor, view)
    keys_per_column = keys_for_columns(columns)
    env: Optional[tuple] = None
    if getattr(executor.database, "compiled_execution", True):
        layout = ColumnLayout(keys_per_column)
        aggregate_names = frozenset(
            n.lower() for n in executor.catalog.aggregate_names()
        )
        env = (layout, executor._function_registry(), None, aggregate_names)

    def compile_all(expressions):
        fns = [executor._compile(expression, env) for expression in expressions]
        return fns if fns and all(fn is not None for fn in fns) else None

    key_exprs = list(statement.group_by)
    key_fns = compile_all(key_exprs) if key_exprs else None
    where_fn = executor._compile(statement.where, env)
    aggregate_sources: List[Expression] = [item.expression for item in view.select_items]
    if statement.having is not None:
        aggregate_sources.append(statement.having)
    calls = executor._collect_aggregate_calls(aggregate_sources)
    aggregates = executor._aggregate_registry()
    call_specs = []
    for call in calls:
        definition = aggregates[call.name.lower()]
        argument_fns = None if call.star else compile_all(call.args)
        call_specs.append(_CallSpec(call, definition, argument_fns))
    plan = _MaintenancePlan(
        catalog_version,
        keys_per_column,
        key_exprs,
        key_fns,
        statement.where,
        where_fn,
        call_specs,
    )
    view._plan = plan
    return plan


def _row_context(keys_per_column, row, functions) -> RowContext:
    values: Dict[str, Any] = {}
    for keys, value in zip(keys_per_column, row):
        for key in keys:
            values[key] = value
    return RowContext(values, functions, None)


def _absorb_row(
    plan: _MaintenancePlan,
    groups: Dict[Any, _Group],
    row: tuple,
    segment: int,
    position: int,
    num_segments: int,
    functions,
) -> None:
    """Fold one base row into its group's per-segment states.

    Reproduces the executor's grouped pipeline exactly: WHERE ``is True``
    filter, ``hashable_key`` group keys, first-appearance representative, and
    a strict NULL-skipping transition fold per aggregate per segment.
    """
    context: Optional[RowContext] = None
    if plan.where_expr is not None:
        if plan.where_fn is not None:
            if plan.where_fn(row) is not True:
                return
        else:
            context = _row_context(plan.keys_per_column, row, functions)
            if plan.where_expr.evaluate(context) is not True:
                return
    if plan.key_exprs:
        if plan.key_fns is not None:
            key = tuple(hashable_key(fn(row)) for fn in plan.key_fns)
        else:
            if context is None:
                context = _row_context(plan.keys_per_column, row, functions)
            key = tuple(
                hashable_key(expression.evaluate(context))
                for expression in plan.key_exprs
            )
    else:
        key = ()
    order_key = (segment, position)
    group = groups.get(key)
    if group is None:
        group = _Group(
            order_key,
            row,
            [spec.fresh_states(num_segments) for spec in plan.call_specs],
        )
        groups[key] = group
    elif group.order_key is None or order_key < group.order_key:
        group.order_key = order_key
        group.rep_row = row
    for spec, states in zip(plan.call_specs, group.states):
        if spec.call.star:
            arguments: tuple = (1,)
        elif spec.argument_fns is not None:
            arguments = tuple(fn(row) for fn in spec.argument_fns)
        else:
            if context is None:
                context = _row_context(plan.keys_per_column, row, functions)
            arguments = tuple(arg.evaluate(context) for arg in spec.call.args)
        if spec.definition.strict and any(is_null(value) for value in arguments):
            continue
        states[segment] = spec.definition.transition(states[segment], *arguments)


# ---------------------------------------------------------------------- refresh


def refresh(executor, view: MaterializedView, stats=None) -> None:
    """Rebuild the view's materialized content from its dependencies."""
    with view.lock:
        if view.strategy == "incremental":
            _rebuild_incremental(executor, view)
        else:
            _rebuild_recompute(executor, view)
        view.version += 1
        view.recomputes += 1
    if stats is not None:
        stats.matview_recomputes += 1


def _rebuild_incremental(executor, view: MaterializedView) -> None:
    table, _ = _base_layout(executor, view)
    plan = _maintenance_plan(executor, view)
    functions = executor._function_registry()
    groups: Dict[Any, _Group] = {}
    if not view.statement.group_by:
        # The executor always emits one output row for an empty grouped scan.
        groups[()] = _Group(
            None, None, [spec.fresh_states(table.num_segments) for spec in plan.call_specs]
        )
    before_version = table._data_version
    for segment in range(table.num_segments):
        for position, row in enumerate(table.segment_view(segment)):
            _absorb_row(plan, groups, row, segment, position, table.num_segments, functions)
    view.groups = groups
    view.num_base_segments = table.num_segments
    view.synced_versions = {view.base_table: before_version}
    view.last_row_count = None  # unknown until the next finalize


def _rebuild_recompute(executor, view: MaterializedView) -> None:
    # Running the defining query freshens nested views first (their scans go
    # through ensure_fresh), so snapshotting dependency versions *after* the
    # execute observes a settled state.
    result = executor.execute(view.statement, None)
    view.rows = [tuple(row) for row in result.rows]
    view.columns = list(result.columns)
    view.last_row_count = len(view.rows)
    synced: Dict[str, int] = {}
    catalog = executor.catalog
    for dependency in view.dependencies:
        if catalog.has_table(dependency):
            synced[dependency] = catalog.get_table(dependency)._data_version
        elif catalog.has_matview(dependency):
            synced[dependency] = catalog.get_matview(dependency).version
    view.synced_versions = synced


def ensure_fresh(executor, view: MaterializedView, stats=None) -> bool:
    """Recompute the view if any dependency drifted.  Returns True if it did."""
    if not view.is_stale(executor.catalog):
        return False
    with view.lock:
        if not view.is_stale(executor.catalog):
            return False
        refresh(executor, view, stats)
        return True


# ------------------------------------------------------------------------- reads


def read_rows(executor, view: MaterializedView) -> List[tuple]:
    """Finalized view contents.  Caller is responsible for ensure_fresh."""
    with view.lock:
        if view.strategy == "incremental":
            rows = _finalize_incremental(executor, view)
        else:
            rows = list(view.rows)
        view.last_row_count = len(rows)
        return rows


def _finalize_incremental(executor, view: MaterializedView) -> List[tuple]:
    plan = _maintenance_plan(executor, view)
    functions = executor._function_registry()
    having = view.statement.having
    ordered = sorted(
        view.groups.values(),
        key=lambda group: group.order_key if group.order_key is not None else (-1, -1),
    )
    rows: List[tuple] = []
    for group in ordered:
        aggregate_values: Dict[str, Any] = {}
        for spec, states in zip(plan.call_specs, group.states):
            merged = spec.runner.merge_states(list(states))
            aggregate_values[f"__agg_{id(spec.call)}"] = spec.definition.finalize(merged)
        if group.rep_row is not None:
            base = _row_context(plan.keys_per_column, group.rep_row, functions)
        else:
            base = RowContext({}, functions, None)
        context = base.with_values(aggregate_values)
        if having is not None and having.evaluate(context) is not True:
            continue
        rows.append(
            tuple(item.expression.evaluate(context) for item in view.select_items)
        )
    return rows


# ------------------------------------------------------------------- delta fold


def apply_insert_delta(
    executor,
    table,
    before_version: int,
    before_lengths: List[int],
    stats=None,
) -> None:
    """Fold freshly inserted rows into every fresh incremental view on ``table``.

    ``before_version``/``before_lengths`` are the base table's
    ``_data_version`` and per-segment row counts captured immediately before
    the insert; the delta is exactly the rows appended past those lengths.
    Views that were already stale before the insert are skipped (their next
    read recomputes anyway).  If a fold raises partway through, the view is
    force-marked stale — in-place states may be half-mutated, and a recompute
    on the next read is the only safe continuation.  The insert itself is
    never failed by view maintenance.
    """
    catalog = executor.catalog
    views = catalog.incremental_matviews_on(table.name)
    if not views:
        return
    after_version = table._data_version
    if after_version == before_version:
        return  # nothing inserted
    delta_rows: Optional[List[Tuple[int, int, tuple]]] = None
    functions = executor._function_registry()
    for view in views:
        with view.lock:
            if view.synced_versions.get(view.base_table) != before_version:
                continue  # already stale (or synced elsewhere); leave for recompute
            if delta_rows is None:
                delta_rows = []
                for segment in range(table.num_segments):
                    segment_rows = table.segment_view(segment)
                    for position in range(before_lengths[segment], len(segment_rows)):
                        delta_rows.append((segment, position, segment_rows[position]))
            try:
                plan = _maintenance_plan(executor, view)
                for segment, position, row in delta_rows:
                    _absorb_row(
                        plan,
                        view.groups,
                        row,
                        segment,
                        position,
                        table.num_segments,
                        functions,
                    )
            except Exception:
                view.force_stale()
                continue
            view.synced_versions[view.base_table] = after_version
            view.version += 1
            view.deltas_applied += 1
            if stats is not None:
                stats.matview_deltas_applied += 1
