"""Batched aggregate transition kernels for the segmented execution path.

The paper's measurement target is the user-defined-aggregate pattern itself
(per-segment transition folds plus a merge tree); the interpreted engine adds
one Python call per row on top of it, which at laptop scale dominates the
Figure 4/5 numbers.  A *batch transition* consumes one segment's argument
values as whole columns in a single call — NumPy reductions or C-speed
builtins instead of a per-row fold — while keeping the state/merge/final
contract of :class:`~repro.engine.aggregates.AggregateDefinition` intact.

Rules of engagement:

* A batch kernel must be semantically interchangeable with folding the
  row-at-a-time transition over the same (strict-filtered) rows; the parity
  suite enforces this.
* Order-sensitive aggregates (``array_agg``, ``string_agg``) deliberately
  have **no** batch kernel: their result depends on row order within a
  segment, so they always take the deterministic row-at-a-time fold.
* Any exception raised by a batch kernel (ragged arrays, unsupported operand
  types) makes the caller silently fall back to the row-at-a-time fold, so a
  batch kernel never changes which queries succeed.

User-defined aggregates may opt in by setting ``batch_transition`` on their
definition (``linregr``'s v0.3 kernel does); everything else automatically
falls back, leaving the driver-function methods untouched.
"""

from __future__ import annotations

from array import array
from itertools import repeat
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ColumnBatch",
    "ConstantColumn",
    "strict_filter_columns",
    "builtin_batch_transitions",
]


class ConstantColumn(Sequence):
    """A column of one repeated value, stored in O(1) space.

    Used for ``count(*)``'s synthetic ``1`` argument so the columnar fast
    path never materializes (or null-scans) an N-element list of ones.
    """

    __slots__ = ("value", "length")

    def __init__(self, value: Any, length: int) -> None:
        self.value = value
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Any]:
        return repeat(self.value, self.length)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ConstantColumn(self.value, len(range(*index.indices(self.length))))
        if -self.length <= index < self.length:
            return self.value
        raise IndexError(index)

    def __reduce__(self):
        # O(1) wire format regardless of length (slots classes need explicit
        # support anyway; the worker pool ships these for count(*)).
        return (ConstantColumn, (self.value, self.length))


class ColumnBatch:
    """One segment's aggregate arguments, stored as columns.

    The executor produces these directly from a table's cached columnar view
    when an aggregate's arguments are plain column references, skipping
    per-row argument evaluation entirely.  ``prefiltered`` marks a batch
    whose rows are already known NULL-free (e.g. ``count(*)``'s constant
    argument), letting strict aggregates skip the null scan.
    """

    __slots__ = ("columns", "length", "prefiltered")

    def __init__(
        self, columns: Tuple[Sequence[Any], ...], *, prefiltered: bool = False
    ) -> None:
        self.columns = columns
        self.length = len(columns[0]) if columns else 0
        self.prefiltered = prefiltered

    def __len__(self) -> int:
        return self.length

    def rows(self) -> List[Tuple[Any, ...]]:
        """Row-tuple view (for the row-at-a-time fallback fold)."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def __reduce__(self):
        # Compact segment-batch export for the parallel worker pool: float
        # columns travel as packed C-double buffers instead of one pickle op
        # per value.  ``array('d').tolist()`` restores bit-identical Python
        # floats, so shipping a batch through a worker cannot change results.
        return (
            _rebuild_column_batch,
            (tuple(_pack_column(column) for column in self.columns), self.prefiltered),
        )


def _pack_column(column: Sequence[Any]) -> Tuple[str, Any]:
    """Wire format for one column: packed typed buffer or ('raw', values)."""
    if isinstance(column, ConstantColumn):
        return ("const", column)
    # Columnar-native storage: a clean packed column ships its typed buffer
    # as-is — near-zero-copy (pickling an ``array`` is one memcpy), no
    # per-value scan at all.
    wire = getattr(column, "packed_wire", None)
    if wire is not None:
        packed = wire()
        if packed is not None:
            return packed
    # `type(v) is float` (not isinstance) keeps bools/ints/np.float64 on the
    # raw path so the round-trip preserves value types exactly.  len() (not
    # truthiness) so array-likes without a scalar bool (ndarray) stay raw.
    if len(column) and all(type(value) is float for value in column):
        return ("f64", array("d", column))
    return ("raw", list(column))


def _unpack_column(packed: Tuple[str, Any]) -> Sequence[Any]:
    # 'f64'/'i64' buffers restore via ``tolist`` — bit-identical Python
    # floats / exact ints, so shipping never changes results.
    tag, payload = packed
    if tag in ("f64", "i64"):
        return payload.tolist()
    if tag == "dict16":
        # Dictionary-encoded column: int16 code buffer + value dictionary
        # (code -1 is SQL NULL).  Decoding shares the dictionary's value
        # objects, so the round-trip is value-identical.
        codes, values = payload
        return [None if code < 0 else values[code] for code in codes]
    return payload


def _rebuild_column_batch(packed_columns, prefiltered: bool) -> "ColumnBatch":
    return ColumnBatch(
        tuple(_unpack_column(packed) for packed in packed_columns), prefiltered=prefiltered
    )


def _null_positions(column: Sequence[Any]) -> Optional[set]:
    """Indices of SQL-NULL entries (None or float NaN), or None when clean.

    The NaN test must mirror ``types.is_null`` (``isinstance(value, float)``)
    so float subclasses like ``np.float64`` are filtered identically on both
    execution tiers.
    """
    # Packed columns (columnar storage) answer from their cached null mask —
    # one vectorized isnan / bitmap read instead of a per-value Python scan.
    finder = getattr(column, "null_positions", None)
    if finder is not None:
        return finder()
    positions = {
        i
        for i, value in enumerate(column)
        if value is None or (isinstance(value, float) and value != value)
    }
    return positions or None


def strict_filter_columns(
    columns: Tuple[Sequence[Any], ...]
) -> Tuple[Tuple[Sequence[Any], ...], int]:
    """Drop rows where *any* argument is NULL (strict-aggregate semantics).

    Returns ``(filtered_columns, surviving_row_count)``.  The common all-clean
    case returns the input columns unchanged without copying.
    """
    if not columns:
        return columns, 0
    nulls: Optional[set] = None
    for column in columns:
        positions = _null_positions(column)
        if positions:
            nulls = positions if nulls is None else nulls | positions
    if not nulls:
        return columns, len(columns[0])
    filtered = tuple(
        [value for i, value in enumerate(column) if i not in nulls] for column in columns
    )
    return filtered, len(columns[0]) - len(nulls)


# ---------------------------------------------------------------------------
# Built-in batch kernels
#
# Each kernel receives the already strict-filtered argument columns and the
# incoming state, and must return the same state a sequential fold of the
# matching row-at-a-time transition would have produced (bit-identical where
# the arithmetic allows: Python ``sum``/``min``/``max`` are sequential left
# folds, so count/sum/avg/min/max/bool_* are exact; the variance family uses
# a two-pass batch moment combined with Chan's merge, which agrees with the
# Welford fold to floating-point round-off).
# ---------------------------------------------------------------------------


def _count_batch(state: int, *columns: Sequence[Any]) -> int:
    length = len(columns[0]) if columns else 0
    return state + length


def _sum_batch(state: Any, values: Sequence[Any]) -> Any:
    if not len(values):
        return state
    if isinstance(values[0], np.ndarray) or isinstance(state, np.ndarray):
        if state is None:
            state = np.array(values[0], dtype=np.float64, copy=True)
            values = values[1:]
        for value in values:
            state = state + np.asarray(value, dtype=np.float64)
        return state
    if state is None:
        return sum(values[1:], values[0])
    return sum(values, state)


def _avg_batch(state: Tuple[int, float], values: Sequence[Any]) -> Tuple[int, float]:
    count, total = state
    return (count + len(values), sum(map(float, values), total))


def _min_batch(state: Any, values: Sequence[Any]) -> Any:
    if not len(values):
        return state
    low = min(values)
    return low if state is None else min(state, low)


def _max_batch(state: Any, values: Sequence[Any]) -> Any:
    if not len(values):
        return state
    high = max(values)
    return high if state is None else max(state, high)


def _variance_batch(
    state: Tuple[int, float, float], values: Sequence[Any]
) -> Tuple[int, float, float]:
    # Two-pass batch moments merged into the running (count, mean, M2) state
    # with Chan et al.'s combination — the same formula the aggregate's merge
    # function uses across segments.
    if not len(values):
        return state
    arr = np.asarray(values, dtype=np.float64)
    count_b = int(arr.shape[0])
    mean_b = float(arr.mean())
    m2_b = float(((arr - mean_b) ** 2).sum())
    count_a, mean_a, m2_a = state
    if count_a == 0:
        return (count_b, mean_b, m2_b)
    count = count_a + count_b
    delta = mean_b - mean_a
    mean = mean_a + delta * count_b / count
    m2 = m2_a + m2_b + delta * delta * count_a * count_b / count
    return (count, mean, m2)


def _bool_batch(combine: Callable[[Sequence[bool]], bool]):
    def batch(state: Optional[bool], values: Sequence[Any]) -> Optional[bool]:
        if not len(values):
            return state
        folded = combine([bool(v) for v in values])
        if state is None:
            return folded
        return combine([state, folded])

    return batch


def _vector_sum_batch(state: Any, values: Sequence[Any]) -> Any:
    if not len(values):
        return state
    stacked = np.asarray(list(values), dtype=np.float64)
    if stacked.ndim != 2:
        raise ValueError("vector_sum batch needs uniform-length arrays")
    total = stacked.sum(axis=0)
    if state is None:
        return total
    return state + total


def builtin_batch_transitions() -> Dict[str, Callable[..., Any]]:
    """Batch kernels for the built-in aggregates, keyed by aggregate name.

    ``array_agg`` and ``string_agg`` are intentionally absent (order
    sensitivity — see module docstring).
    """
    return {
        "count": _count_batch,
        "sum": _sum_batch,
        "avg": _avg_batch,
        "min": _min_batch,
        "max": _max_batch,
        "var_samp": _variance_batch,
        "var_pop": _variance_batch,
        "variance": _variance_batch,
        "stddev": _variance_batch,
        "stddev_pop": _variance_batch,
        "bool_and": _bool_batch(all),
        "bool_or": _bool_batch(any),
        "vector_sum": _vector_sum_batch,
    }
