"""Statement execution.

The executor evaluates parsed statements against the catalog.  The part that
matters most for the paper is aggregate execution: queries that aggregate a
single base table run the *segmented* path — independent per-segment
transition folds followed by a merge — which is the Greenplum execution model
the Figure 4 / Figure 5 experiments measure.  Joins have their own execution
layer (:mod:`repro.engine.join`): inner/left equi-joins — and implicit
multi-table FROM lists whose WHERE clause contains cross-source equality
conjuncts — run as compiled build/probe hash joins with single-side conjuncts
pushed below the join, falling back to the interpreted nested loop for
anything the planner cannot prove safe.  Everything else (subqueries, window
functions, DML) exists so that MADlib-style methods can be written as plain
SQL plus driver functions, exactly as in the paper.

SELECT execution is tiered (see ``docs/engine-execution.md`` and
``docs/architecture.md``):

* **Compiled/vectorized fast path** — expressions (WHERE predicates, select
  lists, GROUP BY keys, aggregate arguments) are compiled once per query into
  closures over positional row tuples (:mod:`repro.engine.compile`); when the
  aggregated input is an unfiltered base-table scan and the aggregate's
  arguments are plain column references, per-segment argument streams come
  straight from the table's cached columnar view as
  :class:`~repro.engine.vectorized.ColumnBatch` slices, and aggregates with a
  ``batch_transition`` consume each segment in a single batched call.
* **Interpreted fallback** — any construct outside the compilable subset
  (window calls, unresolvable names, unbound parameters, DISTINCT aggregates)
  drops back to per-row :class:`RowContext` dicts and tree-walking
  ``Expression.evaluate``, built lazily so the fast path never pays for them.
* **Parallel tier** — with ``Database(parallel=N)``, mergeable aggregates
  additionally fan their per-segment folds out to the persistent worker pool
  (:mod:`repro.engine.parallel`); the coordinator merges the partial states.
  Results are identical to the in-process tiers by construction.

Both tiers must produce identical results; ``tests/engine/test_compiled_parity.py``
runs a query corpus through each and asserts it.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from functools import cmp_to_key
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CatalogError, ExecutionError, SQLSyntaxError
from .aggregates import AggregateDefinition
from .columnar import SelectedRows
from .compile import (
    ColumnLayout,
    compile_expression,
    compile_predicate_vector,
    keys_for_columns,
)
from .join import (
    JoinEstimates,
    apply_prefilter,
    classify_where_conjuncts,
    conjoin,
    execute_hash_join,
    plan_hash_join,
    plan_key_join,
)
from .parallel import WorkerPoolError, guarded_function_registry, shippable_spec
from .planner import (
    choose_access_path,
    collect_table_statistics,
    explain_statement,
    maybe_auto_analyze,
)
from .vectorized import ColumnBatch, ConstantColumn
from .expressions import (
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    RowContext,
    Star,
    WindowCall,
)
from . import matview as matview_module
from .parser.ast_nodes import (
    AlterTableRenameStatement,
    AnalyzeStatement,
    CreateIndexStatement,
    CreateMaterializedViewStatement,
    CreateTableAsStatement,
    CreateTableStatement,
    DeleteStatement,
    DropIndexStatement,
    DropMaterializedViewStatement,
    DropTableStatement,
    ExplainStatement,
    FunctionSource,
    InsertStatement,
    Join,
    OrderItem,
    RefreshMaterializedViewStatement,
    SelectItem,
    SelectStatement,
    Statement,
    SubquerySource,
    TableRef,
    TruncateStatement,
    UnionStatement,
    UpdateStatement,
)
from .result import ResultSet
from .schema import Column, Schema
from .segments import AggregateTimings, ExecutionStats, ScanDetail, SegmentedAggregator
from .table import Table
from .types import ANY, SQLType, coerce_value, hashable_key, infer_type, type_from_name
from .window import compute_window_values

__all__ = ["Executor"]


@dataclass
class _Relation:
    """An intermediate result: named columns, row tuples, segment provenance."""

    columns: List[Tuple[Optional[str], str]]  # (source alias, column name)
    rows: List[Tuple[Any, ...]]
    segment_ids: List[int]
    num_segments: int = 1
    #: Set only for a single-table scan whose rows map 1:1 onto stored
    #: positions (unfiltered, or bitmap-filtered with ``segment_selections``
    #: recording which); lets the aggregate path slice per-segment argument
    #: columns straight from the table's packed columns.  Any other
    #: derivation (row-path WHERE, joins, projection) drops it.
    source_table: Optional[Table] = None
    #: When the WHERE ran vectorized: one ascending position array per
    #: segment — the selection bitmap's set bits.  ``rows`` then holds only
    #: the selected rows (late-materialized), and the aggregate fast path
    #: gathers argument columns at these positions instead of building rows.
    segment_selections: Optional[List[Any]] = None
    #: Column index whose hashed value determines each row's segment, and the
    #: stored python type of that column — the join planner's co-location
    #: evidence.  Filtering preserves both (rows never move segments); a join
    #: inherits the probe side's, since the joined row still lives on the
    #: probe row's segment.
    distribution_index: Optional[int] = None
    distribution_type: Optional[type] = None
    #: Planner cardinality estimate for this relation (statistics-backed for
    #: base-table scans, the access path's estimate for index scans); None
    #: for derived relations, where the actual row count is already in hand.
    #: Feeds the join layer's cost decisions.
    estimated_rows: Optional[float] = None

    def context_keys(self) -> List[List[str]]:
        """For each column, the row-dict keys it populates."""
        return keys_for_columns(self.columns)

    def distribution(self) -> Optional[Tuple[int, type]]:
        """``(column index, python type)`` co-location evidence, or ``None``."""
        if self.distribution_index is None or self.num_segments <= 1:
            return None
        return (self.distribution_index, self.distribution_type)


class _LazyContexts:
    """List-like provider of per-row :class:`RowContext` dicts, built on demand.

    The compiled fast path never touches row dicts; this wrapper keeps the
    interpreted fallback available (ORDER BY expressions, per-group
    projection, uncompilable subtrees) without paying one dict per row up
    front.  Contexts are cached, so repeated access stays cheap.
    """

    def __init__(
        self,
        relation: "_Relation",
        functions: Dict[str, Callable[..., Any]],
        parameters: Optional[Dict[str, Any]],
    ) -> None:
        self._keys_per_column = relation.context_keys()
        self._rows = relation.rows
        self._functions = functions
        self._parameters = parameters
        self._cache: Dict[int, RowContext] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int) -> RowContext:
        context = self._cache.get(index)
        if context is None:
            values: Dict[str, Any] = {}
            for column_keys, value in zip(self._keys_per_column, self._rows[index]):
                for key in column_keys:
                    values[key] = value
            context = RowContext(values, self._functions, self._parameters)
            self._cache[index] = context
        return context

    def __iter__(self):
        for index in range(len(self._rows)):
            yield self[index]


class Executor:
    """Executes parsed statements against a :class:`~repro.engine.database.Database`."""

    def __init__(self, database) -> None:
        self.database = database
        # Function/aggregate registries are rebuilt only when the catalog's
        # DDL version moves — every statement used to pay two full dict
        # rebuilds, which dominates short point lookups in serving mode.
        # Callers must treat the returned dicts as read-only.
        self._registry_version = -1
        self._functions_cache: Dict[str, Callable[..., Any]] = {}
        self._aggregates_cache: Dict[str, AggregateDefinition] = {}

    # ------------------------------------------------------------------ utils

    @property
    def catalog(self):
        return self.database.catalog

    def _refresh_registries(self) -> None:
        version = self.catalog.version
        if version != self._registry_version:
            self._functions_cache = {
                name.lower(): self.catalog.get_function(name)
                for name in self.catalog.function_names()
            }
            self._aggregates_cache = {
                name.lower(): self.catalog.get_aggregate(name)
                for name in self.catalog.aggregate_names()
            }
            self._registry_version = version

    def _function_registry(self) -> Dict[str, Callable[..., Any]]:
        self._refresh_registries()
        return self._functions_cache

    def _aggregate_registry(self) -> Dict[str, AggregateDefinition]:
        self._refresh_registries()
        return self._aggregates_cache

    def _make_contexts(
        self, relation: _Relation, parameters: Optional[Dict[str, Any]]
    ) -> List[RowContext]:
        """Eager per-row contexts — the interpreted fallback representation."""
        return list(self._lazy_contexts(relation, parameters))

    def _lazy_contexts(
        self, relation: _Relation, parameters: Optional[Dict[str, Any]]
    ) -> _LazyContexts:
        return _LazyContexts(relation, self._function_registry(), parameters)

    # ------------------------------------------------------------------ compilation

    def _compiler_env(self, relation: _Relation, parameters) -> Optional[tuple]:
        """Per-query compilation environment, or None when compilation is off.

        The layout depends only on the relation's column list, so one env is
        valid across WHERE filtering (which preserves columns).
        """
        if not getattr(self.database, "compiled_execution", True):
            return None
        layout = ColumnLayout(relation.context_keys())
        functions = self._function_registry()
        aggregate_names = frozenset(
            name.lower() for name in self.catalog.aggregate_names()
        )
        return (layout, functions, parameters, aggregate_names)

    def _compile(self, expression: Optional[Expression], env: Optional[tuple]):
        """Compile one expression, or None (→ interpreted fallback)."""
        if env is None or expression is None:
            return None
        layout, functions, parameters, aggregate_names = env
        return compile_expression(expression, layout, functions, parameters, aggregate_names)

    # ------------------------------------------------------------------ dispatch

    def execute(self, statement: Statement, parameters: Optional[Dict[str, Any]] = None) -> ResultSet:
        start = time.perf_counter()
        if isinstance(statement, SelectStatement):
            result = self._execute_select(statement, parameters)
        elif isinstance(statement, UnionStatement):
            result = self._execute_union(statement, parameters)
        elif isinstance(statement, CreateTableStatement):
            result = self._execute_create_table(statement)
        elif isinstance(statement, CreateTableAsStatement):
            result = self._execute_create_table_as(statement, parameters)
        elif isinstance(statement, InsertStatement):
            result = self._execute_insert(statement, parameters)
        elif isinstance(statement, UpdateStatement):
            result = self._execute_update(statement, parameters)
        elif isinstance(statement, DeleteStatement):
            result = self._execute_delete(statement, parameters)
        elif isinstance(statement, DropTableStatement):
            result = self._execute_drop(statement)
        elif isinstance(statement, TruncateStatement):
            result = self._execute_truncate(statement)
        elif isinstance(statement, AlterTableRenameStatement):
            result = self._execute_alter(statement)
        elif isinstance(statement, CreateIndexStatement):
            result = self._execute_create_index(statement)
        elif isinstance(statement, DropIndexStatement):
            result = self._execute_drop_index(statement)
        elif isinstance(statement, CreateMaterializedViewStatement):
            result = self._execute_create_matview(statement)
        elif isinstance(statement, DropMaterializedViewStatement):
            result = self._execute_drop_matview(statement)
        elif isinstance(statement, RefreshMaterializedViewStatement):
            result = self._execute_refresh_matview(statement)
        elif isinstance(statement, AnalyzeStatement):
            result = self._execute_analyze(statement)
        elif isinstance(statement, ExplainStatement):
            result = self._execute_explain(statement, parameters)
        else:
            raise ExecutionError(f"unsupported statement type {type(statement).__name__}")
        if result.stats is None:
            # Every statement carries stats so benchmark reports never
            # silently drop timings (DML used to return stats-less results).
            kind = type(statement).__name__.removesuffix("Statement")
            kind = "".join(
                ("_" + ch.lower()) if ch.isupper() and i else ch.lower()
                for i, ch in enumerate(kind)
            )
            result.stats = ExecutionStats(statement_kind=kind)
        for timing in result.stats.aggregate_timings:
            # Roll per-aggregate supervision outcomes (fold-dispatch
            # fallbacks, retries, respawns) up to the statement level.
            if timing.fallback_reason or timing.worker_retries or timing.pool_respawns:
                result.stats.note_parallel_fallback(
                    timing.fallback_reason, timing.worker_retries, timing.pool_respawns
                )
        result.stats.total_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ FROM clause

    def _scan_table(self, ref: TableRef, stats: Optional[ExecutionStats] = None) -> _Relation:
        if not self.catalog.has_table(ref.name) and self.catalog.has_matview(ref.name):
            return self._scan_matview(ref, stats)
        table = self.catalog.get_table(ref.name)
        alias = ref.effective_alias
        columns = [(alias, name) for name in table.schema.names]
        rows: List[Tuple[Any, ...]] = []
        segment_ids: List[int] = []
        for segment in range(table.num_segments):
            segment_rows = table.segment_view(segment)
            rows.extend(segment_rows)
            segment_ids.extend([segment] * len(segment_rows))
        statistics = self.catalog.get_statistics(table.name)
        estimated = (
            float(statistics.row_count)
            if statistics is not None and not statistics.is_stale(table)
            else float(len(rows))
        )
        if stats is not None:
            stats.rows_scanned_per_source.append(len(rows))
            stats.scan_details.append(
                ScanDetail(table.name, "seq", len(rows), estimated_rows=estimated)
            )
        distribution_index = table._distribution_index
        distribution_type = (
            table.schema[distribution_index].sql_type.python_type
            if distribution_index is not None
            else None
        )
        return _Relation(
            columns,
            rows,
            segment_ids,
            table.num_segments,
            source_table=table,
            distribution_index=distribution_index,
            distribution_type=distribution_type,
            estimated_rows=estimated,
        )

    def _scan_matview(self, ref: TableRef, stats: Optional[ExecutionStats] = None) -> _Relation:
        """Read a materialized view like a table: freshen if stale, finalize."""
        view = self.catalog.get_matview(ref.name)
        matview_module.ensure_fresh(self, view, stats)
        rows = matview_module.read_rows(self, view)
        columns = [(ref.effective_alias, name) for name in view.columns]
        if stats is not None:
            stats.rows_scanned_per_source.append(len(rows))
            stats.scan_details.append(
                ScanDetail(view.name, "matview", len(rows), estimated_rows=float(len(rows)))
            )
        return _Relation(columns, rows, [0] * len(rows), 1)

    def _scan_subquery(
        self, source: SubquerySource, parameters, stats: Optional[ExecutionStats] = None
    ) -> _Relation:
        result = self.execute(source.select, parameters)
        columns = [(source.alias, name) for name in result.columns]
        rows = list(result.rows)
        if stats is not None:
            stats.rows_scanned_per_source.append(len(rows))
            stats.scan_details.append(ScanDetail(source.alias, "subquery", len(rows)))
        return _Relation(columns, rows, [0] * len(rows), 1)

    def _scan_function(self, source: FunctionSource, parameters) -> _Relation:
        name = source.name.lower()
        functions = self._function_registry()
        context = RowContext({}, functions, parameters)
        args = [arg.evaluate(context) for arg in source.args]
        if name == "generate_series":
            if len(args) == 2:
                start, stop = int(args[0]), int(args[1])
                step = 1
            elif len(args) == 3:
                start, stop, step = int(args[0]), int(args[1]), int(args[2])
            else:
                raise ExecutionError("generate_series takes 2 or 3 arguments")
            values = list(range(start, stop + (1 if step > 0 else -1), step))
        else:
            raise ExecutionError(f"unsupported table function {source.name!r}")
        column_name = source.column_names[0] if source.column_names else source.name
        columns = [(source.alias, column_name)]
        rows = [(value,) for value in values]
        return _Relation(columns, rows, [0] * len(rows), 1)

    def _scan_from_item(
        self, item, parameters, stats: Optional[ExecutionStats] = None
    ) -> _Relation:
        if isinstance(item, TableRef):
            return self._scan_table(item, stats)
        if isinstance(item, SubquerySource):
            return self._scan_subquery(item, parameters, stats)
        if isinstance(item, FunctionSource):
            relation = self._scan_function(item, parameters)
            if stats is not None:
                stats.rows_scanned_per_source.append(len(relation.rows))
                stats.scan_details.append(
                    ScanDetail(item.name, "function", len(relation.rows))
                )
            return relation
        if isinstance(item, Join):
            return self._execute_join(item, parameters, stats)
        raise ExecutionError(f"unsupported FROM item {type(item).__name__}")

    def _combine(self, left: _Relation, right: _Relation, pairs: List[Tuple[int, Optional[int]]]) -> _Relation:
        """Build a relation from (left_row_index, right_row_index-or-None) pairs."""
        columns = left.columns + right.columns
        right_width = len(right.columns)
        rows: List[Tuple[Any, ...]] = []
        segment_ids: List[int] = []
        for left_index, right_index in pairs:
            right_row = right.rows[right_index] if right_index is not None else (None,) * right_width
            rows.append(left.rows[left_index] + right_row)
            segment_ids.append(left.segment_ids[left_index])
        num_segments = left.num_segments
        return _Relation(columns, rows, segment_ids, num_segments)

    def _hash_joins_enabled(self) -> bool:
        return getattr(self.database, "compiled_execution", True) and getattr(
            self.database, "hash_joins", True
        )

    def _join_pool(self):
        """The worker pool, when parallel join dispatch is permitted."""
        if not self.database.parallel_aggregation:
            return None
        return getattr(self.database, "worker_pool", None)

    def _joined_relation(self, left: _Relation, right: _Relation, outcome) -> _Relation:
        return _Relation(
            left.columns + right.columns,
            outcome.rows,
            outcome.segment_ids,
            left.num_segments,
            distribution_index=left.distribution_index,
            distribution_type=left.distribution_type,
        )

    @staticmethod
    def _join_estimates(left: _Relation, right: _Relation) -> JoinEstimates:
        """Planner cardinalities for one join step (stats-backed when scans).

        The output estimate is the crude FK-join heuristic ``max(left,
        right)`` — good enough to rank strategies; EXPLAIN displays it as an
        estimate, never as a measurement.
        """
        estimated_left = (
            left.estimated_rows if left.estimated_rows is not None else float(len(left.rows))
        )
        estimated_right = (
            right.estimated_rows
            if right.estimated_rows is not None
            else float(len(right.rows))
        )
        return JoinEstimates(
            left_rows=estimated_left,
            right_rows=estimated_right,
            output_rows=max(estimated_left, estimated_right),
        )

    def _execute_join(
        self, join: Join, parameters, stats: Optional[ExecutionStats] = None
    ) -> _Relation:
        left = self._scan_from_item(join.left, parameters, stats)
        right = self._scan_from_item(join.right, parameters, stats)
        pairs: List[Tuple[int, Optional[int]]] = []
        if join.kind == "cross" or join.condition is None:
            for i in range(len(left.rows)):
                for j in range(len(right.rows)):
                    pairs.append((i, j))
            relation = self._combine(left, right, pairs)
            if stats is not None:
                stats.record_join("cross", len(relation.rows))
            return relation

        if self._hash_joins_enabled():
            pool = self._join_pool()
            plan = plan_hash_join(
                left.columns,
                right.columns,
                join.kind,
                join.condition,
                self._function_registry(),
                parameters,
                left_distribution=left.distribution(),
                right_distribution=right.distribution(),
                check_shippable=pool is not None,
            )
            if plan is not None:
                estimates = self._join_estimates(left, right)
                outcome = execute_hash_join(
                    plan, left, right, pool=pool, parameters=parameters
                )
                if stats is not None:
                    stats.record_join(
                        outcome.strategy,
                        len(outcome.rows),
                        outcome.parallel_wall_seconds,
                        estimated_rows=estimates.output_rows,
                    )
                return self._joined_relation(left, right, outcome)

        # Interpreted nested-loop fallback: non-equi conditions, uncompilable
        # or volatile subtrees, names the planner could not resolve.
        combined_columns = left.columns + right.columns
        probe = _Relation(combined_columns, [], [], left.num_segments)
        keys_per_column = probe.context_keys()
        functions = self._function_registry()
        right_width = len(right.columns)
        for i, left_row in enumerate(left.rows):
            matched = False
            for j, right_row in enumerate(right.rows):
                values: Dict[str, Any] = {}
                for column_keys, value in zip(keys_per_column, left_row + right_row):
                    for key in column_keys:
                        values[key] = value
                context = RowContext(values, functions, parameters)
                if join.condition.evaluate(context) is True:
                    pairs.append((i, j))
                    matched = True
            if join.kind == "left" and not matched:
                pairs.append((i, None))
        relation = self._combine(left, right, pairs)
        if stats is not None:
            stats.record_join("nested_loop", len(relation.rows))
        return relation

    def _build_relation(
        self,
        from_items: List[object],
        parameters,
        where: Optional[Expression] = None,
        stats: Optional[ExecutionStats] = None,
    ) -> Tuple[_Relation, Optional[Expression]]:
        """Materialize the FROM clause; returns ``(relation, residual WHERE)``.

        For a multi-source FROM list with a WHERE clause, the planner tries
        to turn the legacy Cartesian-product-then-filter shape into a chain
        of pushed-down prefilters and hash-join steps
        (:func:`repro.engine.join.classify_where_conjuncts`); WHERE conjuncts
        consumed by the plan are removed from the returned residual.  When
        planning is not applicable (single source, no WHERE, hash joins
        disabled, unsafe clause) the WHERE comes back untouched.
        """
        if not from_items:
            # SELECT without FROM: a single empty row.
            return _Relation([], [()], [0], 1), where
        relations = [self._scan_from_item(item, parameters, stats) for item in from_items]
        if len(relations) == 1:
            return relations[0], where
        if where is not None and self._hash_joins_enabled():
            planned = self._plan_multi_from(relations, where, parameters, stats)
            if planned is not None:
                return planned
        relation = relations[0]
        for right in relations[1:]:
            pairs = [(i, j) for i in range(len(relation.rows)) for j in range(len(right.rows))]
            relation = self._combine(relation, right, pairs)
            if stats is not None:
                stats.record_join("cross", len(relation.rows))
        return relation, where

    def _plan_multi_from(
        self,
        relations: List[_Relation],
        where: Expression,
        parameters,
        stats: Optional[ExecutionStats],
    ) -> Optional[Tuple[_Relation, Optional[Expression]]]:
        """WHERE→join pushdown over a comma FROM list, or ``None`` (legacy).

        Sources are joined left-to-right exactly as written; every equality
        edge becomes usable at the step that joins its later source, so the
        emitted row order is the Cartesian product's lexicographic
        ``(source 0 row, source 1 row, ...)`` order restricted to surviving
        rows — byte-identical to product-then-filter.
        """
        functions = self._function_registry()
        all_columns = [column for relation in relations for column in relation.columns]
        source_of: List[int] = []
        for source, relation in enumerate(relations):
            source_of.extend([source] * len(relation.columns))
        classified = classify_where_conjuncts(
            where, ColumnLayout.for_columns(all_columns), source_of, functions
        )
        if classified is None:
            return None
        prefilters, edges, residual = classified

        # Compile and apply the single-source prefilters (no relation is
        # mutated before every compile has succeeded).
        predicates: Dict[int, Callable] = {}
        for source, conjuncts in prefilters.items():
            predicate = compile_expression(
                conjoin(conjuncts),
                ColumnLayout(relations[source].context_keys()),
                functions,
                parameters,
            )
            if predicate is None:
                return None
            predicates[source] = predicate
        filtered: List[_Relation] = []
        for source, relation in enumerate(relations):
            predicate = predicates.get(source)
            if predicate is not None:
                rows, segment_ids = apply_prefilter(
                    predicate, relation.rows, relation.segment_ids
                )
                relation = _Relation(
                    relation.columns,
                    rows,
                    segment_ids,
                    relation.num_segments,
                    distribution_index=relation.distribution_index,
                    distribution_type=relation.distribution_type,
                )
            filtered.append(relation)

        pool = self._join_pool()
        current = filtered[0]
        for position in range(1, len(filtered)):
            right = filtered[position]
            step_left: List[Expression] = []
            step_right: List[Expression] = []
            for source_a, expr_a, source_b, expr_b in edges:
                if max(source_a, source_b) != position:
                    continue  # both joined already, or the later source is ahead
                if source_a == position:
                    step_left.append(expr_b)
                    step_right.append(expr_a)
                else:
                    step_left.append(expr_a)
                    step_right.append(expr_b)
            if not step_left:
                pairs = [
                    (i, j)
                    for i in range(len(current.rows))
                    for j in range(len(right.rows))
                ]
                current = self._combine(current, right, pairs)
                if stats is not None:
                    stats.record_join("cross", len(current.rows))
                continue
            plan = plan_key_join(
                current.columns,
                right.columns,
                step_left,
                step_right,
                functions,
                parameters,
                left_distribution=current.distribution(),
                right_distribution=right.distribution(),
                check_shippable=pool is not None,
            )
            if plan is None:
                return None
            estimates = self._join_estimates(current, right)
            outcome = execute_hash_join(
                plan, current, right, pool=pool, parameters=parameters
            )
            if stats is not None:
                stats.record_join(
                    outcome.strategy,
                    len(outcome.rows),
                    outcome.parallel_wall_seconds,
                    estimated_rows=estimates.output_rows,
                )
            current = self._joined_relation(current, right, outcome)
        return current, conjoin(residual)

    # ------------------------------------------------------------------ SELECT

    def _expand_select_items(
        self, items: List[SelectItem], relation: _Relation
    ) -> List[SelectItem]:
        expanded: List[SelectItem] = []
        for item in items:
            if isinstance(item.expression, Star):
                qualifier = item.expression.qualifier
                matched = False
                for alias, name in relation.columns:
                    if qualifier is None or (alias and alias.lower() == qualifier.lower()):
                        expanded.append(SelectItem(ColumnRef(name, alias), name))
                        matched = True
                if not matched:
                    raise ExecutionError(
                        f"'*' expansion found no columns for qualifier {qualifier!r}"
                    )
            else:
                expanded.append(item)
        return expanded

    def _output_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        expression = item.expression
        if isinstance(expression, ColumnRef):
            return expression.name
        if isinstance(expression, FunctionCall):
            return expression.name.lower()
        if isinstance(expression, WindowCall):
            return expression.function.name.lower()
        return f"column{position + 1}"

    def _collect_aggregate_calls(self, expressions: Iterable[Expression]) -> List[FunctionCall]:
        aggregates = self._aggregate_registry()
        calls: List[FunctionCall] = []
        seen = set()
        for expression in expressions:
            if expression is None:
                continue
            for node in expression.walk():
                if isinstance(node, WindowCall):
                    # The aggregate inside an OVER clause is handled by the
                    # window machinery, not by GROUP BY aggregation.
                    break
                if isinstance(node, FunctionCall) and node.name.lower() in aggregates:
                    if id(node) not in seen:
                        seen.add(id(node))
                        calls.append(node)
        return calls

    def _collect_window_calls(self, expressions: Iterable[Expression]) -> List[WindowCall]:
        calls: List[WindowCall] = []
        for expression in expressions:
            if expression is None:
                continue
            for node in expression.walk():
                if isinstance(node, WindowCall):
                    calls.append(node)
        return calls

    def _choose_single_table_path(self, statement: SelectStatement, parameters):
        """``(ref, table, AccessPath)`` for a single-table WHERE, or ``None``.

        The one place access-path selection happens: ``_execute_select`` runs
        the chosen probe, and EXPLAIN calls this too so the displayed plan is
        the executed plan by construction.
        """
        database = self.database
        if not getattr(database, "use_indexes", True) or not getattr(
            database, "compiled_execution", True
        ):
            return None
        if len(statement.from_items) != 1 or not isinstance(
            statement.from_items[0], TableRef
        ):
            return None
        if statement.where is None:
            return None
        ref = statement.from_items[0]
        if not self.catalog.has_table(ref.name):
            return None  # the scan path raises the proper catalog error
        table = self.catalog.get_table(ref.name)
        if not any(index.usable for index in table.indexes):
            return None
        statistics = maybe_auto_analyze(database, table)
        path = choose_access_path(
            table,
            ref.effective_alias,
            statement.where,
            self._function_registry(),
            parameters,
            frozenset(name.lower() for name in self.catalog.aggregate_names()),
            statistics,
        )
        if path is None:
            return None
        return ref, table, path

    def _execute_index_scan(self, chosen, stats: ExecutionStats):
        """Materialize an index probe as a relation; ``(relation, residual)``.

        Probe results are (segment, position) pairs in ascending order —
        exactly the sequential scan's emission order restricted to matching
        rows — so everything downstream behaves byte-identically to the
        scan-then-filter plan.  Returns ``None`` when the probe declines
        (degraded index), in which case the caller takes the scan path.
        """
        ref, table, path = chosen
        entries = path.probe()
        if entries is None:
            return None
        alias = ref.effective_alias
        columns = [(alias, name) for name in table.schema.names]
        rows: List[Tuple[Any, ...]] = []
        segment_ids: List[int] = []
        for segment, position in entries:
            rows.append(table.segment_view(segment)[position])
            segment_ids.append(segment)
        stats.rows_scanned_per_source.append(len(rows))
        stats.scan_details.append(
            ScanDetail(
                table.name,
                "index",
                len(rows),
                estimated_rows=path.estimated_rows,
                index_name=path.index.name,
                index_condition=path.condition_sql,
            )
        )
        distribution_index = table._distribution_index
        distribution_type = (
            table.schema[distribution_index].sql_type.python_type
            if distribution_index is not None
            else None
        )
        relation = _Relation(
            columns,
            rows,
            segment_ids,
            table.num_segments,
            distribution_index=distribution_index,
            distribution_type=distribution_type,
            estimated_rows=path.estimated_rows,
        )
        return relation, path.residual

    def _vectorized_single_table(
        self, statement: SelectStatement, parameters, stats: ExecutionStats
    ) -> Optional[_Relation]:
        """Bitmap-vectorized WHERE over one columnar base table, or ``None``.

        When the FROM clause is a single columnar-stored table and the WHERE
        clause is in the vector-compilable subset, evaluate the predicate
        segment-at-a-time over the packed columns into selection bitmaps —
        no per-row Python at all — and return a relation whose rows are the
        selected positions, materialized lazily (:class:`SelectedRows`).
        ``None`` (compile decline or runtime abort on any segment) sends the
        caller to the row path; both paths are byte-identical by contract.
        """
        if statement.where is None:
            return None
        if not getattr(self.database, "compiled_execution", True):
            return None
        if len(statement.from_items) != 1 or not isinstance(
            statement.from_items[0], TableRef
        ):
            return None
        ref = statement.from_items[0]
        if not self.catalog.has_table(ref.name):
            return None  # the scan path raises the proper catalog error
        table = self.catalog.get_table(ref.name)
        if not table.columnar:
            return None
        alias = ref.effective_alias
        columns = [(alias, name) for name in table.schema.names]
        predicate = compile_predicate_vector(
            statement.where,
            ColumnLayout(keys_for_columns(columns)),
            [column.sql_type for column in table.schema],
            parameters,
        )
        if predicate is None:
            return None
        parts: List[Tuple[Any, Any]] = []
        selections: List[Any] = []
        segment_ids: List[int] = []
        width = 0
        matched = 0
        for segment in range(table.num_segments):
            store = table.column_store(segment)
            mask = predicate.mask(store)
            if mask is None:
                return None  # runtime abort (e.g. demoted column) → row path
            positions = np.flatnonzero(mask)
            width += len(store)
            matched += len(positions)
            parts.append((store, positions))
            selections.append(positions)
            segment_ids.extend([segment] * len(positions))
        statistics = self.catalog.get_statistics(table.name)
        estimated = (
            float(statistics.row_count)
            if statistics is not None and not statistics.is_stale(table)
            else float(width)
        )
        # Rows *touched* is the bitmap width (every stored row was examined),
        # not the popcount — rows_matched reports the survivors.
        stats.rows_scanned_per_source.append(width)
        stats.scan_details.append(
            ScanDetail(
                table.name, "seq", width, estimated_rows=estimated, vectorized=True
            )
        )
        stats.where_vectorized = True
        stats.bitmap_selectivity = (matched / width) if width else 0.0
        return _Relation(
            columns,
            SelectedRows(parts),
            segment_ids,
            table.num_segments,
            source_table=table,
            segment_selections=selections,
        )

    def _execute_select(self, statement: SelectStatement, parameters) -> ResultSet:
        stats = ExecutionStats(statement_kind="select")
        relation = None
        residual_where = statement.where
        chosen = self._choose_single_table_path(statement, parameters)
        if chosen is not None:
            indexed = self._execute_index_scan(chosen, stats)
            if indexed is not None:
                relation, residual_where = indexed
        if relation is None:
            vectorized = self._vectorized_single_table(statement, parameters, stats)
            if vectorized is not None:
                relation = vectorized
                residual_where = None
        if relation is None:
            relation, residual_where = self._build_relation(
                statement.from_items, parameters, statement.where, stats
            )
        # Per-source base rows *touched*, never the size of a join product;
        # single-source statements keep the historical value (their base
        # scan), and an index scan counts only its probe results.
        stats.rows_scanned = (
            sum(stats.rows_scanned_per_source)
            if stats.rows_scanned_per_source
            else len(relation.rows)
        )
        env = self._compiler_env(relation, parameters)
        contexts = self._lazy_contexts(relation, parameters)

        if residual_where is not None:
            predicate = self._compile(residual_where, env)
            if predicate is not None:
                kept = [i for i, row in enumerate(relation.rows) if predicate(row) is True]
            else:
                kept = [
                    i
                    for i in range(len(relation.rows))
                    if residual_where.evaluate(contexts[i]) is True
                ]
            relation = _Relation(
                relation.columns,
                [relation.rows[i] for i in kept],
                [relation.segment_ids[i] for i in kept],
                relation.num_segments,
            )
            # The column layout is unchanged, so `env` stays valid.
            contexts = self._lazy_contexts(relation, parameters)
        # Rows surviving the WHERE stage — distinct from rows *touched*
        # (``rows_scanned``), which an index scan keeps small.
        stats.rows_matched = len(relation.rows)

        select_items = self._expand_select_items(statement.select_items, relation)
        output_names = [self._output_name(item, i) for i, item in enumerate(select_items)]

        all_expressions = [item.expression for item in select_items]
        if statement.having is not None:
            all_expressions.append(statement.having)
        for order_item in statement.order_by:
            all_expressions.append(order_item.expression)

        aggregate_calls = self._collect_aggregate_calls(all_expressions)
        window_calls = self._collect_window_calls(all_expressions)

        # ORDER BY + LIMIT k: only the top k (+ offset) rows are needed, so
        # the sort can short-circuit into a bounded heap selection — unless
        # DISTINCT must deduplicate the full ordering first.
        limit_hint: Optional[int] = None
        if statement.order_by and statement.limit is not None and not statement.distinct:
            limit_hint = statement.limit + (statement.offset or 0)

        if aggregate_calls or statement.group_by:
            output_rows = self._execute_grouped(
                statement,
                select_items,
                aggregate_calls,
                relation,
                contexts,
                parameters,
                stats,
                env,
                limit_hint=limit_hint,
            )
        else:
            if window_calls:
                aggregates = self._aggregate_registry()
                context_list = list(contexts)
                per_row = compute_window_values(window_calls, context_list, aggregates)
                contexts = [ctx.with_values(extra) for ctx, extra in zip(context_list, per_row)]
                output_rows = [
                    tuple(item.expression.evaluate(ctx) for item in select_items)
                    for ctx in contexts
                ]
            else:
                item_fns = [self._compile(item.expression, env) for item in select_items]
                if all(fn is not None for fn in item_fns):
                    output_rows = [
                        tuple(fn(row) for fn in item_fns) for row in relation.rows
                    ]
                else:
                    output_rows = [
                        tuple(item.expression.evaluate(ctx) for item in select_items)
                        for ctx in contexts
                    ]
            if statement.order_by:
                order_key_fns = {
                    id(order_item): self._compile(order_item.expression, env)
                    for order_item in statement.order_by
                }
                output_rows = self._apply_order_by(
                    statement.order_by,
                    select_items,
                    output_names,
                    contexts,
                    output_rows,
                    compiled_keys=order_key_fns,
                    relation_rows=relation.rows,
                    limit_hint=limit_hint,
                )

        if statement.distinct:
            seen = set()
            unique_rows = []
            for row in output_rows:
                key = tuple(hashable_key(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
            output_rows = unique_rows

        if statement.offset:
            output_rows = output_rows[statement.offset:]
        if statement.limit is not None:
            output_rows = output_rows[: statement.limit]

        return ResultSet(output_names, output_rows, stats=stats)

    def _apply_order_by(
        self,
        order_by: List[OrderItem],
        select_items: List[SelectItem],
        output_names: List[str],
        contexts,
        output_rows: List[Tuple[Any, ...]],
        *,
        compiled_keys: Optional[Dict[int, Any]] = None,
        relation_rows: Optional[List[Tuple[Any, ...]]] = None,
        limit_hint: Optional[int] = None,
    ) -> List[Tuple[Any, ...]]:
        indices = list(range(len(output_rows)))
        lowered_names = [name.lower() for name in output_names]

        def key_value(order_item: OrderItem, index: int) -> Any:
            expression = order_item.expression
            # Ordinal (ORDER BY 1) and output-alias references.
            if isinstance(expression, Literal) and isinstance(expression.value, int):
                return output_rows[index][expression.value - 1]
            if isinstance(expression, ColumnRef) and expression.qualifier is None:
                name = expression.name.lower()
                if name in lowered_names:
                    return output_rows[index][lowered_names.index(name)]
            if compiled_keys is not None and relation_rows is not None:
                compiled = compiled_keys.get(id(order_item))
                if compiled is not None and index < len(relation_rows):
                    return compiled(relation_rows[index])
            if index < len(contexts):
                return expression.evaluate(contexts[index])
            raise ExecutionError("cannot evaluate ORDER BY expression for aggregated output")

        if limit_hint is not None and 0 <= limit_hint < len(indices):
            top = self._top_k_order_by(order_by, output_rows, key_value, limit_hint)
            if top is not None:
                return top
            # NaN keys: fall through to the multi-pass sort below, whose
            # NaN placement (timsort with always-False comparisons) a
            # consistent comparator cannot reproduce.

        for order_item in reversed(order_by):
            keys = {i: key_value(order_item, i) for i in indices}
            non_null = [i for i in indices if keys[i] is not None]
            nulls = [i for i in indices if keys[i] is None]
            non_null.sort(key=lambda i: hashable_key(keys[i]), reverse=not order_item.ascending)
            indices = (non_null + nulls) if order_item.nulls_last else (nulls + non_null)
        return [output_rows[i] for i in indices]

    @staticmethod
    def _top_k_order_by(
        order_by: List[OrderItem],
        output_rows: List[Tuple[Any, ...]],
        key_value: Callable[[OrderItem, int], Any],
        limit: int,
    ) -> Optional[List[Tuple[Any, ...]]]:
        """``ORDER BY ... LIMIT k`` short-circuit: bounded heap selection.

        One ``heapq.nsmallest`` over a composite comparator replaces the full
        multi-pass sort — O(n log k) instead of O(k_order · n log n) — which
        is the shape of Viterbi's per-position argmax (``ORDER BY score DESC
        LIMIT 1``).  The comparator reproduces the multi-pass semantics
        exactly: per-key ascending/descending over ``hashable_key`` values,
        NULLS FIRST/LAST partitioning per key, ties falling through to the
        next key, and final ties keeping input order (``nsmallest`` is
        stable), so the selected prefix is byte-identical to sorting
        everything and slicing.  The one case a comparator cannot reproduce
        is a NaN sort key — the multi-pass sort feeds NaN through timsort,
        whose placement no antisymmetric comparator matches — so NaN keys
        return ``None`` and the caller takes the full sort.
        """
        count = len(output_rows)
        keys_per_item = [
            [key_value(order_item, index) for index in range(count)]
            for order_item in order_by
        ]
        for keys in keys_per_item:
            for value in keys:
                if isinstance(value, float) and value != value:
                    return None

        def compare(first: int, second: int) -> int:
            for keys, order_item in zip(keys_per_item, order_by):
                a, b = keys[first], keys[second]
                if a is None or b is None:
                    if a is None and b is None:
                        continue
                    if order_item.nulls_last:
                        return 1 if a is None else -1
                    return -1 if a is None else 1
                a, b = hashable_key(a), hashable_key(b)
                if a == b:
                    continue
                if a < b:
                    return -1 if order_item.ascending else 1
                return 1 if order_item.ascending else -1
            return 0

        top = heapq.nsmallest(limit, range(count), key=cmp_to_key(compare))
        return [output_rows[index] for index in top]

    def _execute_grouped(
        self,
        statement: SelectStatement,
        select_items: List[SelectItem],
        aggregate_calls: List[FunctionCall],
        relation: _Relation,
        contexts,
        parameters,
        stats: ExecutionStats,
        env: Optional[tuple] = None,
        limit_hint: Optional[int] = None,
    ) -> List[Tuple[Any, ...]]:
        aggregates = self._aggregate_registry()

        # Compile each aggregate call's plan once per query (not per group):
        # definition, reusable aggregator, compiled argument closures.
        use_batch = getattr(self.database, "compiled_execution", True)
        call_plans: List[Tuple[FunctionCall, AggregateDefinition, SegmentedAggregator, Optional[list]]] = []
        for call in aggregate_calls:
            definition = aggregates[call.name.lower()]
            argument_fns = None
            if not call.star and env is not None:
                compiled = [self._compile(arg, env) for arg in call.args]
                if all(fn is not None for fn in compiled):
                    argument_fns = compiled
            call_plans.append(
                (call, definition, SegmentedAggregator(definition, use_batch=use_batch), argument_fns)
            )

        # Phase-one grouping: the worker pool when the statement qualifies
        # (two-phase per-segment hash tables), in-process otherwise.  Both
        # produce the same structure: (key, representative row index or None,
        # {aggregate placeholder: value}) in global first-appearance order.
        group_results = self._parallel_grouped(statement, call_plans, relation, parameters, stats, env)
        if group_results is None:
            group_results = self._inprocess_grouped(
                statement, call_plans, relation, contexts, parameters, stats, env
            )

        output_rows: List[Tuple[Any, ...]] = []
        group_contexts: List[RowContext] = []
        for _key, representative, aggregate_values in group_results:
            if representative is not None:
                base_context = contexts[representative]
            else:
                base_context = RowContext({}, self._function_registry(), parameters)
            group_context = base_context.with_values(aggregate_values)
            if statement.having is not None:
                if statement.having.evaluate(group_context) is not True:
                    continue
            output_rows.append(
                tuple(item.expression.evaluate(group_context) for item in select_items)
            )
            group_contexts.append(group_context)

        if statement.order_by:
            output_names = [self._output_name(item, i) for i, item in enumerate(select_items)]
            output_rows = self._apply_order_by(
                statement.order_by,
                select_items,
                output_names,
                group_contexts,
                output_rows,
                limit_hint=limit_hint,
            )
        return output_rows

    def _inprocess_grouped(
        self,
        statement: SelectStatement,
        call_plans: List[tuple],
        relation: _Relation,
        contexts,
        parameters,
        stats: ExecutionStats,
        env: Optional[tuple],
    ) -> List[Tuple[Any, Optional[int], Dict[str, Any]]]:
        """Coordinator-side grouping and per-group aggregation."""
        groups: Dict[Any, List[int]] = {}
        group_order: List[Any] = []
        if statement.group_by:
            key_fns = [self._compile(expression, env) for expression in statement.group_by]
            if all(fn is not None for fn in key_fns):
                for index, row in enumerate(relation.rows):
                    key = tuple(hashable_key(fn(row)) for fn in key_fns)
                    if key not in groups:
                        groups[key] = []
                        group_order.append(key)
                    groups[key].append(index)
            else:
                for index in range(len(contexts)):
                    ctx = contexts[index]
                    key = tuple(
                        hashable_key(expression.evaluate(ctx))
                        for expression in statement.group_by
                    )
                    if key not in groups:
                        groups[key] = []
                        group_order.append(key)
                    groups[key].append(index)
        else:
            key = ()
            groups[key] = list(range(len(contexts)))
            group_order.append(key)

        single_group = len(groups) == 1 and not statement.group_by
        # Grouped statements accumulate one statement-level timings object per
        # aggregate call (per-group contributions folded together), so
        # ``simulated_parallel_seconds`` projects grouped work too instead of
        # silently dropping it.
        grouped_timings = [
            AggregateTimings(aggregate_name=definition.name)
            for _call, definition, _aggregator, _argument_fns in call_plans
        ]
        results: List[Tuple[Any, Optional[int], Dict[str, Any]]] = []
        for key in group_order:
            member_indices = groups[key]
            aggregate_values: Dict[str, Any] = {}
            for position, (call, definition, aggregator, argument_fns) in enumerate(call_plans):
                value, timings = self._run_aggregate(
                    call, definition, aggregator, argument_fns, member_indices, relation, contexts, env
                )
                aggregate_values[f"__agg_{id(call)}"] = value
                if single_group:
                    stats.aggregate_timings.append(timings)
                else:
                    grouped_timings[position].accumulate(timings)
            representative = member_indices[0] if member_indices else None
            results.append((key, representative, aggregate_values))
        if not single_group and group_order:
            stats.aggregate_timings.extend(grouped_timings)
        return results

    def _parallel_grouped(
        self,
        statement: SelectStatement,
        call_plans: List[tuple],
        relation: _Relation,
        parameters,
        stats: ExecutionStats,
        env: Optional[tuple],
    ) -> Optional[List[Tuple[Any, Optional[int], Dict[str, Any]]]]:
        """Two-phase grouped aggregation on the worker pool, or None.

        Phase one runs in the workers: one task per segment builds a partial
        ``{group_key: [agg_states]}`` table over that segment's rows (see
        :func:`repro.engine.parallel._grouped_segment_task`).  Phase two runs
        here: partial tables are merged in segment order — which, because
        dispatch requires segment-sorted row provenance, reproduces the
        in-process first-appearance group order exactly — then each group's
        states merge via the aggregate's merge function and finalize.

        Returns ``None`` (→ in-process grouping) when the statement does not
        qualify: no pool, keys or arguments outside the shippable compilable
        subset (builtin scalar functions only), a DISTINCT or non-mergeable
        or non-picklable aggregate, a fan-out below ``min_dispatch_rows``, or
        estimated group cardinality so high that coordinator-side merging
        would dominate (``docs/parallel-groupby.md`` documents the planner
        rules).
        """
        database = self.database
        pool = getattr(database, "worker_pool", None)
        if (
            pool is None
            or not database.parallel_aggregation
            or env is None
            or not statement.group_by
            or not call_plans
            or relation.num_segments <= 1
            or len(relation.rows) < pool.min_dispatch_rows
        ):
            return None
        for call, definition, _aggregator, _argument_fns in call_plans:
            if call.distinct or not definition.supports_parallel:
                return None

        # Keys and aggregate arguments must compile against the *guarded*
        # registry (genuine builtins only) so workers reproduce them exactly.
        layout, _functions, _parameters, aggregate_names = env
        guarded = guarded_function_registry(self._function_registry())
        key_fns = [
            compile_expression(expression, layout, guarded, parameters, aggregate_names)
            for expression in statement.group_by
        ]
        if any(fn is None for fn in key_fns):
            return None
        use_batch = getattr(database, "compiled_execution", True)
        agg_entries: List[tuple] = []
        for call, definition, _aggregator, _argument_fns in call_plans:
            spec = shippable_spec(definition, use_batch)
            if spec is None:
                return None
            if call.star:
                agg_entries.append((spec, ("star",)))
                continue
            arg_fns = [
                compile_expression(argument, layout, guarded, parameters, aggregate_names)
                for argument in call.args
            ]
            if any(fn is None for fn in arg_fns):
                return None
            agg_entries.append((spec, ("exprs", tuple(call.args))))

        # Dispatch relies on segment-sorted row provenance to reconstruct the
        # global first-appearance group order from per-segment tables; when
        # sorted, each segment's rows are one contiguous run, so segments
        # ship as plain slices.
        segment_ids = relation.segment_ids
        segment_slices: List[Tuple[int, int]] = []
        run_start = 0
        for index in range(1, len(segment_ids) + 1):
            if index == len(segment_ids) or segment_ids[index] != segment_ids[run_start]:
                segment_slices.append((run_start, index))
                run_start = index
        if any(
            segment_ids[first[0]] > segment_ids[second[0]]
            for first, second in zip(segment_slices, segment_slices[1:])
        ):
            return None

        rows = relation.rows
        sample_size = min(len(rows), pool.GROUP_SAMPLE_ROWS)
        if pool.min_dispatch_rows > 0:
            sample_keys = {
                tuple(hashable_key(fn(rows[index])) for fn in key_fns)
                for index in range(sample_size)
            }
            if not pool.grouped_dispatch_worthwhile(len(sample_keys), sample_size):
                return None

        segment_rows = [rows[start:end] for start, end in segment_slices]
        try:
            outcome = pool.run_grouped(
                tuple(statement.group_by),
                relation.context_keys(),
                agg_entries,
                parameters,
                segment_rows,
                use_batch=use_batch,
            )
        except WorkerPoolError as exc:
            # Infra faults only (dead/hung workers, IPC pickling, a
            # defensive worker-side compile failure) — supervision already
            # retried; regroup in-process and record why.  Query errors a
            # transition raised inside a worker propagate out of this call
            # byte-identical to the in-process tier: never retried, never
            # masked as a silent fallback.
            stats.note_parallel_fallback(exc.reason, exc.retries, exc.respawns)
            outcome = None
        if outcome is None:
            return None
        report = pool.consume_dispatch_report()
        if report is not None:
            # Succeeded, but only after supervision stepped in (retries
            # and/or a pool respawn): attribute that work to the statement.
            stats.note_parallel_fallback(
                None, report["worker_retries"], report["pool_respawns"]
            )
        tables, agg_seconds, key_seconds, wall = outcome

        # Merge the per-segment partial tables in segment order.
        group_order: List[Any] = []
        representative: Dict[Any, int] = {}
        partial_states: Dict[Any, List[list]] = {}
        for position, table in enumerate(tables):
            slice_start = segment_slices[position][0]
            for key, first_local, states in table:
                known = partial_states.get(key)
                if known is None:
                    group_order.append(key)
                    representative[key] = slice_start + first_local
                    partial_states[key] = [[state] for state in states]
                else:
                    for state_list, state in zip(known, states):
                        state_list.append(state)

        results: List[Tuple[Any, Optional[int], Dict[str, Any]]] = [
            (key, representative[key], {}) for key in group_order
        ]
        wall_share = wall / max(len(call_plans), 1)
        rows_per_segment = [len(batch) for batch in segment_rows]
        for position, (call, definition, aggregator, _argument_fns) in enumerate(call_plans):
            timings = AggregateTimings(aggregate_name=definition.name)
            timings.per_segment_seconds = [seconds[position] for seconds in agg_seconds]
            if position == 0:
                # The keying pass is shared by every aggregate of the
                # statement; attribute it once, to the first call.
                timings.per_segment_seconds = [
                    fold + keying
                    for fold, keying in zip(timings.per_segment_seconds, key_seconds)
                ]
            timings.rows_per_segment = list(rows_per_segment)
            timings.measured_parallel_wall_seconds = wall_share
            timings.num_workers = pool.num_workers
            timings.num_groups = len(group_order)
            timings.grouped_dispatch = True
            agg_key = f"__agg_{id(call)}"
            start = time.perf_counter()
            merged = {
                key: aggregator.runner.merge_states(partial_states[key][position])
                for key in group_order
            }
            timings.merge_seconds = time.perf_counter() - start
            start = time.perf_counter()
            for key, _representative, values in results:
                values[agg_key] = definition.finalize(merged[key])
            timings.final_seconds = time.perf_counter() - start
            stats.aggregate_timings.append(timings)
        return results

    def _columnar_streams(
        self,
        call: FunctionCall,
        member_indices: List[int],
        relation: _Relation,
        env: Optional[tuple],
    ) -> Optional[List[ColumnBatch]]:
        """Per-segment argument columns sliced from the table's columnar view.

        Applies only when the aggregated input is a base-table scan covering
        every relation row — unfiltered, or bitmap-filtered with recorded
        ``segment_selections`` — and each argument is a plain column
        reference (or ``count(*)``); returns ``None`` otherwise.
        """
        table = relation.source_table
        if (
            table is None
            or env is None
            or call.distinct
            or len(member_indices) != len(relation.rows)
        ):
            return None
        layout: ColumnLayout = env[0]
        if call.star:
            argument_indices: List[int] = []
        else:
            argument_indices = []
            for arg in call.args:
                if not isinstance(arg, ColumnRef):
                    return None
                index = layout.resolve(arg.name, arg.qualifier)
                if index is None:
                    return None
                argument_indices.append(index)
        selections = relation.segment_selections
        streams: List[ColumnBatch] = []
        for segment in range(table.num_segments):
            selection = selections[segment] if selections is not None else None
            if call.star:
                if selection is not None:
                    length = len(selection)
                else:
                    segment_columns = table.segment_columns(segment)
                    length = len(segment_columns[0]) if segment_columns else 0
                # Constant argument, known NULL-free: O(1) space, no null scan.
                streams.append(
                    ColumnBatch((ConstantColumn(1, length),), prefiltered=True)
                )
            elif selection is not None:
                # Bitmap-filtered scan: gather only the selected positions per
                # argument column — the aggregate consumes the filter's output
                # without any row tuple ever being built.
                streams.append(
                    table.segment_batch(segment, argument_indices, positions=selection)
                )
            else:
                streams.append(table.segment_batch(segment, argument_indices))
        return streams

    def _run_aggregate(
        self,
        call: FunctionCall,
        definition: AggregateDefinition,
        aggregator: SegmentedAggregator,
        argument_fns: Optional[list],
        member_indices: List[int],
        relation: _Relation,
        contexts,
        env: Optional[tuple] = None,
    ) -> Tuple[Any, AggregateTimings]:
        force_serial = not definition.supports_parallel or not self.database.parallel_aggregation
        # The worker pool (real parallel execution) engages only where the
        # merge path would: mergeable aggregate, parallel aggregation on.
        pool = None if force_serial else self.database.worker_pool

        # Fastest path: argument streams are whole columns from the table's
        # cached columnar view — no per-row work at all before the fold.
        segment_streams = self._columnar_streams(call, member_indices, relation, env)
        if segment_streams is not None:
            return aggregator.run(segment_streams, force_serial=force_serial, pool=pool)

        # Build per-segment argument streams row by row, through the
        # pre-compiled argument closures when available, contexts otherwise.
        streams: Dict[int, List[Tuple[Any, ...]]] = {}
        segment_ids = relation.segment_ids
        rows = relation.rows
        for index in member_indices:
            segment = segment_ids[index] if index < len(segment_ids) else 0
            if call.star:
                arguments: Tuple[Any, ...] = (1,)
            elif argument_fns is not None:
                row = rows[index]
                arguments = tuple(fn(row) for fn in argument_fns)
            else:
                ctx = contexts[index]
                arguments = tuple(arg.evaluate(ctx) for arg in call.args)
            streams.setdefault(segment, []).append(arguments)
        if call.distinct:
            seen = set()
            unique: List[Tuple[Any, ...]] = []
            for stream in streams.values():
                for arguments in stream:
                    key = tuple(hashable_key(a) for a in arguments)
                    if key not in seen:
                        seen.add(key)
                        unique.append(arguments)
            streams = {0: unique}
        segment_streams = [streams.get(s, []) for s in range(max(relation.num_segments, 1))]
        return aggregator.run(segment_streams, force_serial=force_serial, pool=pool)

    def _execute_union(self, statement: UnionStatement, parameters) -> ResultSet:
        results = [self._execute_select(select, parameters) for select in statement.selects]
        width = len(results[0].columns)
        for result in results[1:]:
            if len(result.columns) != width:
                raise ExecutionError("UNION inputs must have the same number of columns")
        rows: List[Tuple[Any, ...]] = []
        for result in results:
            rows.extend(result.rows)
        if not statement.all:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(hashable_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        return ResultSet(results[0].columns, rows, stats=ExecutionStats(statement_kind="select"))

    # ------------------------------------------------------------------ DDL / DML

    def _require_base_table(self, name: str, operation: str) -> Table:
        """Resolve a DML target, rejecting materialized views explicitly."""
        if not self.catalog.has_table(name) and self.catalog.has_matview(name):
            raise CatalogError(
                f"cannot {operation} {name!r}: it is a materialized view"
            )
        return self.catalog.get_table(name)

    def _execute_create_table(self, statement: CreateTableStatement) -> ResultSet:
        if statement.if_not_exists and self.catalog.has_table(statement.name):
            return ResultSet([], [], rowcount=0)
        schema = Schema(
            [Column(col.name, type_from_name(col.type_name)) for col in statement.columns]
        )
        table = Table(
            statement.name,
            schema,
            num_segments=self.database.num_segments,
            distributed_by=statement.distributed_by,
            temporary=statement.temporary,
            columnar_storage=getattr(self.database, "columnar_storage", True),
            columnar_compression=getattr(self.database, "columnar_compression", True),
        )
        self.catalog.create_table(table)
        return ResultSet([], [], rowcount=0)

    def _infer_result_schema(self, result: ResultSet) -> Schema:
        columns: List[Column] = []
        for position, name in enumerate(result.columns):
            sql_type: SQLType = ANY
            for row in result.rows:
                value = row[position]
                if value is not None:
                    sql_type = infer_type(value)
                    break
            columns.append(Column(name, sql_type))
        return Schema(columns)

    def _execute_create_table_as(self, statement: CreateTableAsStatement, parameters) -> ResultSet:
        result = self.execute(statement.select, parameters)
        if self.catalog.has_table(statement.name):
            raise CatalogError(f"table {statement.name!r} already exists")
        schema = self._infer_result_schema(result)
        table = Table(
            statement.name,
            schema,
            num_segments=self.database.num_segments,
            distributed_by=statement.distributed_by,
            temporary=statement.temporary,
            columnar_storage=getattr(self.database, "columnar_storage", True),
            columnar_compression=getattr(self.database, "columnar_compression", True),
        )
        table.insert_many(result.rows)
        self.catalog.create_table(table)
        return ResultSet([], [], rowcount=len(result.rows), stats=result.stats)

    def _execute_insert(self, statement: InsertStatement, parameters) -> ResultSet:
        table = self._require_base_table(statement.table, "INSERT into")
        functions = self._function_registry()
        context = RowContext({}, functions, parameters)
        rows: List[List[Any]] = []
        if statement.select is not None:
            result = self.execute(statement.select, parameters)
            rows = [list(row) for row in result.rows]
        else:
            for value_row in statement.values_rows:
                rows.append([expression.evaluate(context) for expression in value_row])
        if statement.columns:
            name_to_position = {name.lower(): i for i, name in enumerate(statement.columns)}
            full_rows = []
            for row in rows:
                if len(row) != len(statement.columns):
                    raise ExecutionError(
                        "INSERT has a different number of expressions than target columns"
                    )
                full_row = []
                for column in table.schema:
                    position = name_to_position.get(column.name.lower())
                    full_row.append(row[position] if position is not None else None)
                full_rows.append(full_row)
            rows = full_rows
        watchers = self.catalog.incremental_matviews_on(table.name)
        before_version = table._data_version
        before_lengths = (
            [len(table.segment_view(s)) for s in range(table.num_segments)]
            if watchers
            else None
        )
        count = table.insert_many(rows)
        stats = ExecutionStats(statement_kind="insert")
        if before_lengths is not None:
            matview_module.apply_insert_delta(
                self, table, before_version, before_lengths, stats
            )
        return ResultSet([], [], rowcount=count, stats=stats)

    def _execute_update(self, statement: UpdateStatement, parameters) -> ResultSet:
        """UPDATE through the compiled-predicate path, rewriting in place.

        The WHERE predicate and each assignment expression compile once per
        statement against the table's column layout and run over positional
        row tuples; any uncompilable expression falls back to its interpreted
        evaluation against a lazily built ``RowContext`` — per expression,
        so one odd assignment does not de-optimize the whole statement.

        The rewrite is bitmap-aware: only *matched* positions are written,
        per segment (``Table.update_rows_in_place``), so an UPDATE touching
        1% of a table does ~1% of the storage work — rows never move
        segments, untouched segments keep their caches, and only indexes on
        assigned columns are maintained.  When the WHERE is in the
        vector-compilable subset the match bitmap itself comes from the
        packed columns with no per-row predicate calls.
        """
        table = self._require_base_table(statement.table, "UPDATE")
        relation = self._scan_table(TableRef(statement.table))
        env = self._compiler_env(relation, parameters)
        contexts = self._lazy_contexts(relation, parameters)
        predicate = self._compile(statement.where, env)
        # Vectorized WHERE: one match bitmap per segment straight off the
        # packed columns.  Scan order is segment order (``_scan_table``), so
        # per-segment positions and the relation's row indices line up.
        segment_masks = None
        if (
            statement.where is not None
            and table.columnar
            and getattr(self.database, "compiled_execution", True)
        ):
            vector = compile_predicate_vector(
                statement.where,
                ColumnLayout(relation.context_keys()),
                [column.sql_type for column in table.schema],
                parameters,
            )
            if vector is not None:
                masks = []
                for segment in range(table.num_segments):
                    mask = vector.mask(table.column_store(segment))
                    if mask is None:
                        masks = None
                        break
                    masks.append(mask)
                segment_masks = masks
        assignments = [
            (table.schema.index_of(name), expression, self._compile(expression, env))
            for name, expression in statement.assignments
        ]
        changed_columns = [position for position, _, _ in assignments]
        column_types = [column.sql_type for column in table.schema]
        rows_scanned = len(relation.rows)
        updates: List[Tuple[List[int], List[Tuple[Any, ...]]]] = []
        updated = 0
        offset = 0  # the segment's start index within the relation's rows
        for segment in range(table.num_segments):
            segment_rows = table.segment_view(segment)
            if segment_masks is not None:
                positions = np.flatnonzero(segment_masks[segment]).tolist()
            elif statement.where is None:
                positions = list(range(len(segment_rows)))
            elif predicate is not None:
                positions = [
                    position
                    for position, row in enumerate(segment_rows)
                    if predicate(row) is True
                ]
            else:
                positions = [
                    position
                    for position in range(len(segment_rows))
                    if statement.where.evaluate(contexts[offset + position]) is True
                ]
            new_rows: List[Tuple[Any, ...]] = []
            for position in positions:
                row = segment_rows[position]
                new_row = list(row)
                for column_index, expression, compiled in assignments:
                    value = (
                        compiled(row)
                        if compiled is not None
                        else expression.evaluate(contexts[offset + position])
                    )
                    # The full-replace path coerced on reinsert; coerce the
                    # assigned values up front so the in-place write stores
                    # exactly what a reinsert would have.
                    new_row[column_index] = coerce_value(
                        value, column_types[column_index]
                    )
                new_rows.append(tuple(new_row))
            updates.append((positions, new_rows))
            updated += len(new_rows)
            offset += len(segment_rows)
        table.update_rows_in_place(updates, changed_columns)
        stats = ExecutionStats(
            statement_kind="update",
            rows_scanned=rows_scanned,
            rows_matched=updated,
            rows_scanned_per_source=[rows_scanned],
        )
        if segment_masks is not None:
            stats.where_vectorized = True
            stats.bitmap_selectivity = updated / rows_scanned if rows_scanned else 0.0
        return ResultSet([], [], rowcount=updated, stats=stats)

    def _execute_delete(self, statement: DeleteStatement, parameters) -> ResultSet:
        table = self._require_base_table(statement.table, "DELETE from")
        if statement.where is None:
            count = len(table)
            table.truncate()
            return ResultSet([], [], rowcount=count)
        rows_scanned = len(table)

        # Compiled paths run over bare column names only — mirroring the
        # interpreted row-dict below, which never exposes qualified names —
        # so all tiers resolve (and fail to resolve) identically.
        layout = ColumnLayout([[name.lower()] for name in table.schema.names])

        # Bitmap DELETE: evaluate the WHERE over the packed columns per
        # segment and hand the table the *complement* positions to keep — no
        # row tuples, no per-row predicate calls, one index remap per
        # segment.  Any decline/abort falls through to the row paths below.
        if table.columnar and getattr(self.database, "compiled_execution", True):
            vector = compile_predicate_vector(
                statement.where,
                layout,
                [column.sql_type for column in table.schema],
                parameters,
            )
            if vector is not None:
                kept_per_segment = []
                for segment in range(table.num_segments):
                    mask = vector.mask(table.column_store(segment))
                    if mask is None:
                        kept_per_segment = None
                        break
                    kept_per_segment.append(np.flatnonzero(~mask).tolist())
                if kept_per_segment is not None:
                    count = table.keep_segment_positions(kept_per_segment)
                    stats = ExecutionStats(
                        statement_kind="delete",
                        rows_scanned=rows_scanned,
                        rows_matched=count,
                        rows_scanned_per_source=[rows_scanned],
                        where_vectorized=True,
                        bitmap_selectivity=(
                            count / rows_scanned if rows_scanned else 0.0
                        ),
                    )
                    return ResultSet([], [], rowcount=count, stats=stats)

        compiled = None
        if getattr(self.database, "compiled_execution", True):
            compiled = compile_expression(
                statement.where, layout, self._function_registry(), parameters
            )
        if compiled is not None:
            count = table.delete_where_rows(lambda row: compiled(row) is True)
        else:
            functions = self._function_registry()

            def predicate(row_dict: Dict[str, Any]) -> bool:
                context = RowContext(
                    {key.lower(): value for key, value in row_dict.items()}, functions, parameters
                )
                return statement.where.evaluate(context) is True

            count = table.delete_where(predicate)
        stats = ExecutionStats(
            statement_kind="delete",
            rows_scanned=rows_scanned,
            rows_matched=count,
            rows_scanned_per_source=[rows_scanned],
        )
        return ResultSet([], [], rowcount=count, stats=stats)

    def _execute_drop(self, statement: DropTableStatement) -> ResultSet:
        for name in statement.names:
            self.catalog.drop_table(name, if_exists=statement.if_exists)
        return ResultSet([], [], rowcount=0)

    def _execute_truncate(self, statement: TruncateStatement) -> ResultSet:
        table = self._require_base_table(statement.name, "TRUNCATE")
        count = len(table)
        table.truncate()
        return ResultSet([], [], rowcount=count)

    def _execute_alter(self, statement: AlterTableRenameStatement) -> ResultSet:
        self.catalog.rename_table(statement.old_name, statement.new_name)
        return ResultSet([], [], rowcount=0)

    # ------------------------------------------------------------------ matview DDL

    def _execute_create_matview(self, statement: CreateMaterializedViewStatement) -> ResultSet:
        if self.catalog.has_matview(statement.name) or self.catalog.has_table(statement.name):
            if statement.if_not_exists and self.catalog.has_matview(statement.name):
                return ResultSet([], [], rowcount=0)
            raise CatalogError(f"relation {statement.name!r} already exists")
        view = matview_module.plan_matview(
            self, statement.name, statement.sql or "", statement.select
        )
        # Materialize eagerly: validates the defining query end-to-end and
        # leaves the view fresh for its first read.
        matview_module.refresh(self, view)
        self.catalog.create_matview(view)
        stats = ExecutionStats(statement_kind="create_materialized_view")
        stats.matview_recomputes = 1
        return ResultSet([], [], rowcount=0, stats=stats)

    def _execute_drop_matview(self, statement: DropMaterializedViewStatement) -> ResultSet:
        for name in statement.names:
            self.catalog.drop_matview(name, if_exists=statement.if_exists)
        return ResultSet([], [], rowcount=0)

    def _execute_refresh_matview(self, statement: RefreshMaterializedViewStatement) -> ResultSet:
        view = self.catalog.get_matview(statement.name)
        stats = ExecutionStats(statement_kind="refresh_materialized_view")
        matview_module.refresh(self, view, stats)
        return ResultSet([], [], rowcount=0, stats=stats)

    # ------------------------------------------------------------------ planner DDL

    def _execute_create_index(self, statement: CreateIndexStatement) -> ResultSet:
        self.catalog.create_index(
            statement.name,
            statement.table,
            statement.column,
            kind=statement.method,
            if_not_exists=statement.if_not_exists,
        )
        return ResultSet([], [], rowcount=0)

    def _execute_drop_index(self, statement: DropIndexStatement) -> ResultSet:
        for name in statement.names:
            self.catalog.drop_index(name, if_exists=statement.if_exists)
        return ResultSet([], [], rowcount=0)

    def _execute_analyze(self, statement: AnalyzeStatement) -> ResultSet:
        names = [statement.table] if statement.table else self.catalog.table_names()
        for name in names:
            table = self.catalog.get_table(name)
            self.catalog.set_statistics(collect_table_statistics(table))
        return ResultSet([], [], rowcount=len(names))

    def _execute_explain(self, statement: ExplainStatement, parameters) -> ResultSet:
        lines = explain_statement(
            self, statement.target, parameters, analyze=statement.analyze
        )
        return ResultSet(["QUERY PLAN"], [(line,) for line in lines])
