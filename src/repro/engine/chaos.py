"""Seeded chaos harness: concurrent clients vs an injected-fault server.

The fault-tolerance layer's acceptance test is not "the happy path still
works" but "under crashes, hangs, truncated responses and vanishing
clients, every statement either succeeds or fails *typed*, and the
committed data is exactly what the acknowledgements promise".  This module
drives that experiment end to end so both the test suite
(``tests/serving/test_chaos.py``) and the benchmark
(``benchmarks/bench_chaos.py``) run the identical workload:

1. Build a :class:`~repro.engine.database.Database` (parallel worker pool)
   and a :class:`~repro.engine.serving.ServerThread`, both wired to one
   seeded :class:`~repro.engine.faults.FaultInjector`.
2. Run N client threads, each owning a disjoint key range, issuing a
   seeded mix of INSERT/UPDATE/DELETE/SELECT (aggregates go through the
   worker pool, where crashes and hangs fire) plus deliberate query
   errors.  Clients honour ``retry_after_ms`` on BUSY, reconnect on broken
   connections, and record every write as *acked*, *failed* (typed error
   before execution) or *in doubt* (TIMEOUT, truncated response, or a
   chaos-injected disconnect — the statement may or may not have
   committed).
3. Check the invariants: the run finishes (no deadlock), the drain
   completes, the readers/writer lock ends idle (no leak), every table's
   ``_data_version`` only ever moved forward, no response carried an
   ``INTERNAL`` or ``SNAPSHOT_VIOLATION`` code, and the final table
   contents are consistent with *some* commit/abort resolution of the
   in-doubt writes given that acked writes applied exactly once and typed
   failures not at all.
4. Replay the resolved write sequence on a fresh fault-free database and
   require the final table dump to be **byte-identical** — an acknowledged
   write that was silently dropped, applied twice (a retry bug), or
   corrupted in flight cannot survive this comparison.

Disjoint key ranges make the comparison exact without having to control
thread interleavings: each key's history is one client's *ordered*
statement sequence, so commit-or-not per in-doubt write is the only
degree of freedom (searched exhaustively; in-doubt writes are rare).
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .database import Database
from .faults import (
    CLIENT_STALL,
    PICKLE_ERROR,
    WIRE_TRUNCATE,
    WORKER_CRASH,
    WORKER_HANG,
    FaultInjector,
)
from .serving import ServerThread, ServingClient

__all__ = ["ChaosReport", "default_fault_injector", "run_chaos"]

#: Error codes a chaos statement is allowed to fail with.  ``INTERNAL``
#: (an unclassified crash) and ``SNAPSHOT_VIOLATION`` (broken isolation)
#: are never acceptable.
_FORBIDDEN_CODES = frozenset({"INTERNAL", "SNAPSHOT_VIOLATION"})

#: Rows present before any client connects, so aggregates always have work.
_SEED_ROWS = 64
_SEED_OWNER = -1


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Everything one seeded chaos run observed, plus the verdict."""

    seed: int
    statements: int = 0
    acked_writes: int = 0
    failed_writes: int = 0
    in_doubt_writes: int = 0
    reads: int = 0
    busy_retries: int = 0
    reconnects: int = 0
    typed_errors: Dict[str, int] = field(default_factory=dict)
    faults_fired: Dict[str, int] = field(default_factory=dict)
    drained: bool = False
    lock_idle: bool = False
    versions_monotone: bool = True
    replay_identical: bool = False
    #: After the run drains: the materialized view's finalized contents are
    #: byte-identical to re-running its defining query (no half-applied
    #: deltas survive fault-injected writes).
    matview_consistent: bool = False
    server_stats: Dict[str, Any] = field(default_factory=dict)
    pool_stats: Optional[Dict[str, int]] = None
    elapsed_seconds: float = 0.0
    #: Invariant violations, human-readable; empty means the run passed.
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and self.drained
            and self.lock_idle
            and self.versions_monotone
            and self.replay_identical
            and self.matview_consistent
        )

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"seed {self.seed}: {verdict} — {self.statements} stmts, "
            f"{self.acked_writes} acked / {self.in_doubt_writes} in-doubt / "
            f"{self.failed_writes} failed writes, "
            f"{sum(self.faults_fired.values())} faults "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.faults_fired.items())) or 'none'}), "
            f"{self.reconnects} reconnects, {self.elapsed_seconds:.1f}s"
        )


# ---------------------------------------------------------------------------
# Fault profile
# ---------------------------------------------------------------------------


def default_fault_injector(seed: int) -> FaultInjector:
    """The standard chaos arsenal: every documented site, modest rates.

    Firing counts are bounded so one seed stays within a few seconds of
    wall clock (each ``worker_hang`` costs one per-task deadline).
    """
    return (
        FaultInjector(seed)
        .arm("parallel.task", WORKER_CRASH, rate=0.12, max_fires=2)
        .arm("parallel.task", WORKER_HANG, rate=0.06, max_fires=1)
        .arm("parallel.dispatch", PICKLE_ERROR, rate=0.05, max_fires=1)
        .arm("serving.send", WIRE_TRUNCATE, rate=0.06, max_fires=3)
        # Client-side sites (probed only by this harness): a stall sleeps
        # before reading the response; delay == 0 means disconnect without
        # reading at all — the cancellation-on-disconnect exercise.
        .arm("client.stall", CLIENT_STALL, rate=0.08, max_fires=3, delay=0.04)
        .arm("client.disconnect", CLIENT_STALL, rate=0.05, max_fires=2, delay=0.0)
    )


# ---------------------------------------------------------------------------
# Client workload
# ---------------------------------------------------------------------------


@dataclass
class _WriteOp:
    """One write statement's ledger entry for the replay comparison."""

    kind: str  # "insert" | "update" | "delete"
    key: int
    value: Optional[int]  # inserted/updated v; None for delete
    status: str  # "acked" | "failed" | "in_doubt"
    sql: str


class _ChaosClient:
    """One client thread's connection, with reconnect and BUSY pacing."""

    def __init__(self, host: str, port: int, report: ChaosReport, lock: threading.Lock):
        self._host = host
        self._port = port
        self._report = report
        self._report_lock = lock
        self._client: Optional[ServingClient] = None

    def _connect(self) -> ServingClient:
        if self._client is None:
            last: Optional[BaseException] = None
            for _ in range(5):
                try:
                    self._client = ServingClient(self._host, self._port, timeout=30.0)
                    break
                except (ConnectionError, OSError) as exc:
                    last = exc
                    time.sleep(0.02)
            else:
                raise ConnectionError(f"could not (re)connect: {last}")
        return self._client

    def _drop(self) -> None:
        """Abrupt teardown: close the raw socket, never send a close frame.

        (``ServingClient.close()`` would perform the polite close op — the
        opposite of the disconnect chaos this harness is injecting.)
        """
        if self._client is not None:
            try:
                # shutdown() emits the FIN immediately; close() alone would
                # wait for the makefile() wrapper's io-ref to be collected.
                self._client._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._client._sock.close()
            except OSError:
                pass
            self._client = None
        with self._report_lock:
            self._report.reconnects += 1

    def execute(self, sql: str, faults: FaultInjector) -> Tuple[str, Any]:
        """Run one statement; ``("ok", reply) | ("error", code) | ("lost", None)``.

        BUSY is retried with the server's ``retry_after_ms`` hint and never
        surfaces (a shed statement was not executed, so retrying is safe
        for writes too).  A broken connection — whether from an injected
        client disconnect, a truncated response, or the transport — returns
        ``"lost"``: the caller must treat a write as in doubt.
        """
        for _ in range(12):
            try:
                client = self._connect()
            except ConnectionError:
                return "lost", None
            disconnect = faults.probe("client.disconnect")
            stall = faults.probe("client.stall")
            try:
                client._write_frame({"op": "query", "sql": sql})
                client._file.flush()
                if disconnect is not None:
                    # Vanish without reading: the server must cancel the
                    # awaiting batch and release the lock on its own.
                    self._drop()
                    return "lost", None
                if stall is not None and stall.delay:
                    time.sleep(stall.delay)
                reply = client._read_frame()
            except (ConnectionError, OSError):
                self._drop()
                return "lost", None
            if reply.get("ok"):
                return "ok", reply
            error = reply.get("error") or {}
            code = error.get("code", "INTERNAL")
            if code == "BUSY":
                with self._report_lock:
                    self._report.busy_retries += 1
                time.sleep(min(error.get("retry_after_ms", 25), 200) / 1000.0)
                continue
            with self._report_lock:
                self._report.typed_errors[code] = (
                    self._report.typed_errors.get(code, 0) + 1
                )
            return "error", code
        return "error", "BUSY"

    def close(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None


def _client_worker(
    cid: int,
    seed: int,
    statements: int,
    host: str,
    port: int,
    faults: FaultInjector,
    report: ChaosReport,
    report_lock: threading.Lock,
    ledger: List[_WriteOp],
    failures: List[str],
) -> None:
    """One chaos client: a seeded statement mix over its own key range."""
    rng = random.Random(f"{seed}:client:{cid}")
    client = _ChaosClient(host, port, report, report_lock)
    next_key = cid * 1_000_000
    live_keys: List[int] = []
    try:
        for seq in range(statements):
            roll = rng.random()
            op: Optional[_WriteOp] = None
            if roll < 0.30 or not live_keys:
                key, next_key = next_key, next_key + 1
                sql = f"INSERT INTO chaos VALUES ({key}, {cid}, {seq})"
                op = _WriteOp("insert", key, seq, "in_doubt", sql)
            elif roll < 0.45:
                key = rng.choice(live_keys)
                sql = f"UPDATE chaos SET v = {seq} WHERE k = {key}"
                op = _WriteOp("update", key, seq, "in_doubt", sql)
            elif roll < 0.52:
                key = rng.choice(live_keys)
                sql = f"DELETE FROM chaos WHERE k = {key}"
                op = _WriteOp("delete", key, None, "in_doubt", sql)
            elif roll < 0.80:
                sql = "SELECT count(*), sum(v) FROM chaos"
            elif roll < 0.90:
                # Alternate between the raw grouped aggregate and the
                # materialized view of the same query, so view reads (and
                # their lazy recomputes) interleave with faulted writes.
                if seq % 2:
                    sql = "SELECT c, cnt, total FROM chaos_by_c"
                else:
                    sql = "SELECT c, count(*) FROM chaos GROUP BY c"
            elif roll < 0.95:
                key = rng.choice(live_keys)
                sql = f"SELECT v FROM chaos WHERE k = {key}"
            else:
                sql = "SELECT no_such_column FROM chaos"

            status, payload = client.execute(sql, faults)
            with report_lock:
                report.statements += 1
            if op is None:
                with report_lock:
                    report.reads += 1
                if status == "error" and payload in _FORBIDDEN_CODES:
                    failures.append(f"client {cid} stmt {seq}: {payload} on {sql!r}")
                continue
            if status == "ok":
                op.status = "acked"
            elif status == "error":
                if payload == "TIMEOUT":
                    # The statement thread keeps running after a TIMEOUT
                    # response — it may still commit.
                    op.status = "in_doubt"
                elif payload in _FORBIDDEN_CODES:
                    op.status = "in_doubt"
                    failures.append(f"client {cid} stmt {seq}: {payload} on {sql!r}")
                else:
                    op.status = "failed"
            else:  # lost
                op.status = "in_doubt"
            ledger.append(op)
            if op.kind == "insert" and op.status != "failed":
                live_keys.append(op.key)
            elif op.kind == "delete" and op.status == "acked":
                live_keys.remove(op.key)
    finally:
        client.close()


# ---------------------------------------------------------------------------
# Resolution + replay
# ---------------------------------------------------------------------------


def _simulate(ops: List[_WriteOp], apply_flags: Tuple[bool, ...]) -> Optional[int]:
    """Final ``v`` for one key (``None`` = absent) under one resolution."""
    state: Optional[int] = None
    flag = iter(apply_flags)
    for op in ops:
        applied = op.status == "acked" or (op.status == "in_doubt" and next(flag))
        if not applied:
            continue
        if op.kind == "insert":
            state = op.value
        elif op.kind == "update":
            if state is not None:  # UPDATE of an absent key is a no-op
                state = op.value
        else:
            state = None
    return state


def _resolve_key(ops: List[_WriteOp], observed: Optional[int]) -> Optional[Tuple[bool, ...]]:
    """Find commit flags for the key's in-doubt ops that explain ``observed``."""
    doubt = [op for op in ops if op.status == "in_doubt"]
    flags = [op.status == "in_doubt" for op in ops]
    for combo in itertools.product((True, False), repeat=len(doubt)):
        if _simulate(ops, combo) == observed:
            picks = iter(combo)
            return tuple(next(picks) if d else False for d in flags)
    return None


def _dump(db: Database) -> List[Tuple[Any, ...]]:
    return db.execute("SELECT k, c, v FROM chaos ORDER BY k").rows


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def run_chaos(
    seed: int,
    *,
    clients: int = 4,
    statements_per_client: int = 30,
    parallel: int = 2,
    segments: int = 2,
    faults: Optional[FaultInjector] = None,
    statement_timeout: float = 8.0,
    task_timeout: float = 0.75,
    join_timeout: float = 60.0,
) -> ChaosReport:
    """One seeded chaos run; see the module docstring for the experiment."""
    report = ChaosReport(seed=seed)
    report_lock = threading.Lock()
    injector = default_fault_injector(seed) if faults is None else faults
    started = time.monotonic()

    db = Database(
        segments,
        parallel=parallel,
        plan_cache=64,
        faults=injector,
        parallel_task_timeout=task_timeout,
        parallel_min_dispatch_rows=0,
    )
    db.execute("CREATE TABLE chaos (k INTEGER, c INTEGER, v INTEGER)")
    for i in range(_SEED_ROWS):
        db.execute(f"INSERT INTO chaos VALUES ({10_000_000 + i}, {_SEED_OWNER}, {i})")
    # A continuously maintained view over the chaos table: every INSERT folds
    # a delta into its group states, DELETE/UPDATE leave it stale, and the
    # post-drain check asserts its contents still match the defining query.
    db.execute(
        "CREATE MATERIALIZED VIEW chaos_by_c AS "
        "SELECT c, count(*) AS cnt, sum(v) AS total FROM chaos GROUP BY c"
    )

    server = ServerThread(
        db,
        max_concurrent=4,
        max_queue=2 * clients + 4,
        statement_timeout=statement_timeout,
        faults=injector,
    ).start()

    # Sample every table's _data_version while chaos runs; committed writes
    # must only ever move versions forward (reading an int is atomic).
    versions: Dict[str, int] = {}
    sampler_stop = threading.Event()

    def sample_versions() -> None:
        while not sampler_stop.is_set():
            for name in db.catalog.table_names():
                version = db.catalog.get_table(name)._data_version
                if version < versions.get(name, version):
                    report.versions_monotone = False
                versions[name] = version
            time.sleep(0.002)

    sampler = threading.Thread(target=sample_versions, daemon=True)
    sampler.start()

    ledgers: List[List[_WriteOp]] = [[] for _ in range(clients)]
    failures: List[str] = []
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(
                cid, seed, statements_per_client, server.host, server.port,
                injector, report, report_lock, ledgers[cid], failures,
            ),
            daemon=True,
        )
        for cid in range(clients)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + join_timeout
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    stuck = [t for t in threads if t.is_alive()]
    if stuck:
        failures.append(f"deadlock: {len(stuck)} client thread(s) still running "
                        f"after {join_timeout}s")
    sampler_stop.set()
    sampler.join(timeout=5.0)

    report.drained = server.stop(drain_timeout=30.0)
    report.lock_idle = server.server._lock.idle
    report.server_stats = server.server.stats.as_dict()
    pool = db._worker_pool
    report.pool_stats = None if pool is None else pool.stats()
    for fault in injector.history():
        report.faults_fired[fault.kind] = report.faults_fired.get(fault.kind, 0) + 1
    report.errors.extend(failures)

    for ledger in ledgers:
        for op in ledger:
            if op.status == "acked":
                report.acked_writes += 1
            elif op.status == "failed":
                report.failed_writes += 1
            else:
                report.in_doubt_writes += 1

    if not stuck:
        report.matview_consistent = _check_matview(db, report.errors)
        report.replay_identical = _check_replay(db, ledgers, report.errors)
    db.close()
    report.elapsed_seconds = time.monotonic() - started
    return report


def _check_matview(db: Database, errors: List[str]) -> bool:
    """View/base-table consistency after the run drains.

    Whatever subset of in-doubt writes actually committed, the view's
    finalized contents must be byte-identical to re-running its defining
    query — a half-applied delta (states folded for some rows of an insert
    but not others) or a missed invalidation would show up here.
    """
    view_rows = db.execute("SELECT c, cnt, total FROM chaos_by_c").rows
    direct_rows = db.execute(
        "SELECT c, count(*) AS cnt, sum(v) AS total FROM chaos GROUP BY c"
    ).rows
    if repr(view_rows) != repr(direct_rows):
        errors.append(
            "matview chaos_by_c diverged from its defining query: "
            f"view={view_rows[:4]!r}... direct={direct_rows[:4]!r}..."
        )
        return False
    return True


def _check_replay(
    db: Database, ledgers: List[List[_WriteOp]], errors: List[str]
) -> bool:
    """Resolve in-doubt writes against the observed final state and replay.

    Returns whether a fault-free replay of the resolved write sequence
    produces a byte-identical table dump.
    """
    observed_rows = _dump(db)
    observed: Dict[int, int] = {k: v for k, _c, v in observed_rows}

    replay = Database(plan_cache=0)
    try:
        replay.execute("CREATE TABLE chaos (k INTEGER, c INTEGER, v INTEGER)")
        for i in range(_SEED_ROWS):
            replay.execute(
                f"INSERT INTO chaos VALUES ({10_000_000 + i}, {_SEED_OWNER}, {i})"
            )
        ok = True
        for ledger in ledgers:
            by_key: Dict[int, List[_WriteOp]] = {}
            for op in ledger:
                by_key.setdefault(op.key, []).append(op)
            for key, ops in by_key.items():
                resolution = _resolve_key(ops, observed.get(key))
                if resolution is None:
                    history = [(op.kind, op.value, op.status) for op in ops]
                    errors.append(
                        f"key {key}: observed final v={observed.get(key)!r} is "
                        f"unreachable from its write history {history} — an "
                        "acked write was dropped, double-applied, or corrupted"
                    )
                    ok = False
                    continue
                for op, apply in zip(ops, resolution):
                    if op.status == "acked" or apply:
                        replay.execute(op.sql)
        if not ok:
            return False
        chaos_dump = _dump(db)
        replay_dump = _dump(replay)
        if repr(chaos_dump) != repr(replay_dump):
            diff = [
                (a, b) for a, b in itertools.zip_longest(chaos_dump, replay_dump)
                if a != b
            ]
            errors.append(
                f"replay mismatch: {len(diff)} differing row(s), first 3: {diff[:3]}"
            )
            return False
        return True
    finally:
        replay.close()
