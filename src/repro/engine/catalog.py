"""The system catalog: tables, scalar functions and aggregates.

The paper's templated-query pattern (Section 3.1.3) has Python driver UDFs
"interrogate the database catalog for details of input tables, and then
synthesize customized SQL queries based on templates".  This module is that
catalog.  It also doubles as the extension-function registry: MADlib installs
its methods as user-defined scalar functions and user-defined aggregates, so
``register_function`` / ``register_aggregate`` are the analog of running the
library's installation SQL scripts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..errors import CatalogError
from .aggregates import AggregateDefinition
from .functions import FunctionDefinition
from .schema import Schema
from .table import Table

__all__ = ["Catalog"]


class Catalog:
    """Namespace of tables, scalar functions and aggregates."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._functions: Dict[str, FunctionDefinition] = {}
        self._aggregates: Dict[str, AggregateDefinition] = {}

    # -- tables --------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def create_table(self, table: Table, *, replace: bool = False) -> Table:
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        return table

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def rename_table(self, old: str, new: str) -> None:
        table = self.get_table(old)
        if self.has_table(new):
            raise CatalogError(f"table {new!r} already exists")
        del self._tables[old.lower()]
        table.name = new
        self._tables[new.lower()] = table

    def table_names(self, *, include_temporary: bool = True) -> List[str]:
        return sorted(
            table.name
            for table in self._tables.values()
            if include_temporary or not table.temporary
        )

    def table_schema(self, name: str) -> Schema:
        """Schema lookup used by templated-query generation."""
        return self.get_table(name).schema

    def drop_temporary_tables(self) -> int:
        """Drop all temp tables (end-of-session cleanup); returns count dropped."""
        temp_names = [name for name, table in self._tables.items() if table.temporary]
        for name in temp_names:
            del self._tables[name]
        return len(temp_names)

    # -- scalar functions ----------------------------------------------------

    def register_function(self, definition: FunctionDefinition, *, replace: bool = True) -> None:
        key = definition.name.lower()
        if key in self._functions and not replace:
            raise CatalogError(f"function {definition.name!r} already exists")
        self._functions[key] = definition

    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def get_function(self, name: str) -> FunctionDefinition:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(f"function {name!r} does not exist") from None

    def function_names(self) -> List[str]:
        return sorted(definition.name for definition in self._functions.values())

    # -- aggregates ----------------------------------------------------------

    def register_aggregate(self, definition: AggregateDefinition, *, replace: bool = True) -> None:
        key = definition.name.lower()
        if key in self._aggregates and not replace:
            raise CatalogError(f"aggregate {definition.name!r} already exists")
        self._aggregates[key] = definition

    def has_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def get_aggregate(self, name: str) -> AggregateDefinition:
        try:
            return self._aggregates[name.lower()]
        except KeyError:
            raise CatalogError(f"aggregate {name!r} does not exist") from None

    def aggregate_names(self) -> List[str]:
        return sorted(definition.name for definition in self._aggregates.values())
