"""The system catalog: tables, scalar functions and aggregates.

The paper's templated-query pattern (Section 3.1.3) has Python driver UDFs
"interrogate the database catalog for details of input tables, and then
synthesize customized SQL queries based on templates".  This module is that
catalog.  It also doubles as the extension-function registry: MADlib installs
its methods as user-defined scalar functions and user-defined aggregates, so
``register_function`` / ``register_aggregate`` are the analog of running the
library's installation SQL scripts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..errors import CatalogError
from .aggregates import AggregateDefinition
from .functions import FunctionDefinition
from .index import BaseIndex, make_index
from .schema import Schema
from .table import Table

__all__ = ["Catalog"]


class Catalog:
    """Namespace of tables, secondary indexes, statistics, UDFs and UDAs."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._functions: Dict[str, FunctionDefinition] = {}
        self._aggregates: Dict[str, AggregateDefinition] = {}
        self._indexes: Dict[str, BaseIndex] = {}
        #: Per-table ANALYZE snapshots (:class:`repro.engine.planner.TableStatistics`),
        #: keyed by lowercased table name.
        self._statistics: Dict[str, object] = {}
        #: Materialized views (:class:`repro.engine.matview.MaterializedView`),
        #: keyed by lowercased view name.
        self._matviews: Dict[str, object] = {}
        # Monotonic catalog mutation counter: bumped by every DDL-shaped
        # change (tables, indexes, UDFs, UDAs, ANALYZE snapshots).  The plan
        # cache (:mod:`repro.engine.plancache`) snapshots it per entry so any
        # catalog change invalidates cached plans, and the executor keys its
        # function/aggregate registry caches on it.
        self._version = 0

    @property
    def version(self) -> int:
        """The catalog's monotonic DDL mutation counter."""
        return self._version

    def _bump(self) -> None:
        self._version += 1

    # -- tables --------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def create_table(self, table: Table, *, replace: bool = False) -> Table:
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        if key in self._matviews:
            raise CatalogError(
                f"a materialized view named {table.name!r} already exists"
            )
        self._tables[key] = table
        self._bump()
        return table

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        # DROP TABLE cascades to the table's secondary indexes and its
        # ANALYZE statistics, like dependent objects in PostgreSQL.
        for index_name in [
            index_key
            for index_key, index in self._indexes.items()
            if index.table_name.lower() == key
        ]:
            del self._indexes[index_name]
        self._statistics.pop(key, None)
        del self._tables[key]
        # ... and to materialized views defined over the table (recursively,
        # so views over views fall too).
        for view_name in [
            view.name for view in self._matviews.values() if key in view.dependencies
        ]:
            self.drop_matview(view_name, if_exists=True)
        self._bump()

    def rename_table(self, old: str, new: str) -> None:
        table = self.get_table(old)
        if self.has_table(new):
            raise CatalogError(f"table {new!r} already exists")
        dependents = [
            view.name for view in self._matviews.values() if old.lower() in view.dependencies
        ]
        if dependents:
            raise CatalogError(
                f"cannot rename table {old!r}: materialized view(s) "
                f"{', '.join(sorted(dependents))} depend on it"
            )
        del self._tables[old.lower()]
        table.name = new
        self._tables[new.lower()] = table
        # Indexes follow the rename and are rebuilt (the (segment, position)
        # entries stay valid across a pure rename, but RENAME is rare enough
        # that the rebuild's self-check costs nothing in practice);
        # statistics snapshots are re-keyed.
        for index in self._indexes.values():
            if index.table_name.lower() == old.lower():
                index.table_name = new
                index.rebuild(table._segments)
        statistics = self._statistics.pop(old.lower(), None)
        if statistics is not None:
            statistics.table_name = new
            self._statistics[new.lower()] = statistics
        self._bump()

    def table_names(self, *, include_temporary: bool = True) -> List[str]:
        return sorted(
            table.name
            for table in self._tables.values()
            if include_temporary or not table.temporary
        )

    def table_schema(self, name: str) -> Schema:
        """Schema lookup used by templated-query generation."""
        return self.get_table(name).schema

    def drop_temporary_tables(self) -> int:
        """Drop all temp tables (end-of-session cleanup); returns count dropped."""
        temp_names = [name for name, table in self._tables.items() if table.temporary]
        for name in temp_names:
            self.drop_table(name)
        return len(temp_names)

    # -- materialized views --------------------------------------------------

    def has_matview(self, name: str) -> bool:
        return name.lower() in self._matviews

    def get_matview(self, name: str):
        try:
            return self._matviews[name.lower()]
        except KeyError:
            raise CatalogError(f"materialized view {name!r} does not exist") from None

    def create_matview(self, view) -> None:
        key = view.name.lower()
        if key in self._matviews:
            raise CatalogError(f"materialized view {view.name!r} already exists")
        if key in self._tables:
            raise CatalogError(f"a table named {view.name!r} already exists")
        self._matviews[key] = view
        self._bump()

    def drop_matview(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._matviews:
            if if_exists:
                return
            raise CatalogError(f"materialized view {name!r} does not exist")
        del self._matviews[key]
        # Cascade to views defined over this view.
        for view_name in [
            view.name for view in self._matviews.values() if key in view.dependencies
        ]:
            self.drop_matview(view_name, if_exists=True)
        self._bump()

    def matview_names(self) -> List[str]:
        return sorted(view.name for view in self._matviews.values())

    def matviews(self) -> List[Dict[str, object]]:
        """Observability listing: one JSON-safe record per view."""
        return [
            self._matviews[key].describe(self)
            for key in sorted(self._matviews, key=lambda k: self._matviews[k].name)
        ]

    def incremental_matviews_on(self, table_name: str) -> List[object]:
        """Incrementally maintained views whose base table is ``table_name``."""
        key = table_name.lower()
        return [
            view
            for view in self._matviews.values()
            if view.strategy == "incremental" and view.base_table == key
        ]

    # -- secondary indexes ---------------------------------------------------

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indexes

    def create_index(
        self,
        name: str,
        table_name: str,
        column: str,
        *,
        kind: str = "sorted",
        if_not_exists: bool = False,
    ) -> Optional[BaseIndex]:
        """Create and build a secondary index; registers it with its table.

        Returns the index, or None when ``if_not_exists`` suppressed a
        duplicate.  The index is built from the table's current rows and is
        maintained incrementally by the table's DML hooks from then on.
        """
        key = name.lower()
        if key in self._indexes:
            if if_not_exists:
                return None
            raise CatalogError(f"index {name!r} already exists")
        table = self.get_table(table_name)
        column_index = table.schema.index_of(column)  # validates the column
        index = make_index(name, table.name, table.schema[column_index].name, column_index, kind)
        table.attach_index(index)
        self._indexes[key] = index
        self._bump()
        return index

    def drop_index(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        index = self._indexes.get(key)
        if index is None:
            if if_exists:
                return
            raise CatalogError(f"index {name!r} does not exist")
        table = self._tables.get(index.table_name.lower())
        if table is not None:
            table.detach_index(index.name)
        del self._indexes[key]
        self._bump()

    def get_index(self, name: str) -> BaseIndex:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def indexes(self, table: Optional[str] = None) -> List[Dict[str, object]]:
        """``pg_indexes``-style listing, optionally filtered to one table.

        The introspection surface driver UDFs interrogate (Section 3.1.3):
        one dict per index with its table, column, kind and entry count.
        """
        rows = [
            index.describe()
            for index in self._indexes.values()
            if table is None or index.table_name.lower() == table.lower()
        ]
        return sorted(rows, key=lambda row: (row["tablename"], row["indexname"]))

    def index_names(self) -> List[str]:
        return sorted(index.name for index in self._indexes.values())

    # -- planner statistics --------------------------------------------------

    def set_statistics(self, statistics) -> None:
        """Store one table's ANALYZE snapshot (replacing any previous one)."""
        self._statistics[statistics.table_name.lower()] = statistics
        self._bump()

    def get_statistics(self, table_name: str):
        """The table's ANALYZE snapshot, or None when never analyzed."""
        return self._statistics.get(table_name.lower())

    def statistics(self, table: Optional[str] = None) -> List[Dict[str, object]]:
        """``pg_stats``-style listing: one dict per analyzed column.

        Each row carries the collected statistics plus a ``stale`` flag (the
        table has seen DML since its ANALYZE).
        """
        rows: List[Dict[str, object]] = []
        for key, statistics in self._statistics.items():
            if table is not None and key != table.lower():
                continue
            stored = self._tables.get(key)
            stale = stored is None or statistics.is_stale(stored)
            for row in statistics.column_rows():
                row["stale"] = stale
                rows.append(row)
        return sorted(rows, key=lambda row: (row["tablename"], row["columnname"]))

    # -- scalar functions ----------------------------------------------------

    def register_function(self, definition: FunctionDefinition, *, replace: bool = True) -> None:
        key = definition.name.lower()
        if key in self._functions and not replace:
            raise CatalogError(f"function {definition.name!r} already exists")
        self._functions[key] = definition
        self._bump()

    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def get_function(self, name: str) -> FunctionDefinition:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(f"function {name!r} does not exist") from None

    def function_names(self) -> List[str]:
        return sorted(definition.name for definition in self._functions.values())

    # -- aggregates ----------------------------------------------------------

    def register_aggregate(self, definition: AggregateDefinition, *, replace: bool = True) -> None:
        key = definition.name.lower()
        if key in self._aggregates and not replace:
            raise CatalogError(f"aggregate {definition.name!r} already exists")
        self._aggregates[key] = definition
        self._bump()

    def has_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def get_aggregate(self, name: str) -> AggregateDefinition:
        try:
            return self._aggregates[name.lower()]
        except KeyError:
            raise CatalogError(f"aggregate {name!r} does not exist") from None

    def aggregate_names(self) -> List[str]:
        return sorted(definition.name for definition in self._aggregates.values())
