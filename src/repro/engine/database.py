"""The user-facing database facade.

A :class:`Database` bundles a catalog, an executor and a segment count, and
exposes the operations MADlib-style code needs:

* ``execute(sql, parameters)`` — run one SQL statement (the macro-programming
  surface),
* ``create_function`` / ``create_aggregate`` — install user-defined scalar
  functions and aggregates (the extension interface MADlib's installation
  scripts use),
* programmatic helpers (``create_table``, ``load_rows``, ``table``) used by
  workload generators and tests.

The segment count plays the role of the number of Greenplum query processes;
``parallel_aggregation`` can be switched off to get the single-stream
aggregation baseline used by the merge-path ablation benchmark.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import CatalogError, ValidationError
from .aggregates import AggregateDefinition, builtin_aggregates
from .catalog import Catalog
from .executor import Executor
from .faults import FaultInjector
from .functions import FunctionDefinition, builtin_functions
from .parallel import SegmentWorkerPool
from .parser import parse_script, parse_statement
from .parser.lexer import tokenize
from .plancache import SYNTHETIC_PREFIX, CachedPlan, PlanCache, normalize_statement
from .result import ResultSet
from .schema import Column, Schema
from .segments import ExecutionStats
from .table import Table
from .types import ANY, SQLType, type_from_name

__all__ = ["Database", "PreparedStatement", "connect"]


class Database:
    """An in-memory, single-process stand-in for PostgreSQL / Greenplum.

    Parameters
    ----------
    num_segments:
        Number of shared-nothing segments new tables are distributed over.
        ``1`` behaves like single-node PostgreSQL; larger values emulate a
        Greenplum cluster with that many query processes.
    parallel_aggregation:
        When true (default), aggregates over segmented tables run the
        per-segment transition + merge path.
    compiled_execution:
        When true (default), SELECT execution uses the compiled/vectorized
        fast path (expressions compiled to positional-row closures, batched
        aggregate transitions); when false every query takes the interpreted
        row-at-a-time path.  The two must agree — the flag exists so the
        parity suite and the microbenchmarks can compare them.
    parallel:
        Number of worker *processes* for real parallel segment execution
        (the third execution tier, :mod:`repro.engine.parallel`).  ``0``
        (default) keeps everything in-process with simulated-parallel
        timings; ``N >= 1`` creates a persistent
        :class:`~repro.engine.parallel.SegmentWorkerPool` that runs
        per-segment transition folds concurrently and merges the partial
        states on the coordinator.  Aggregates the pool cannot ship
        (non-picklable UDAs) transparently fall back to the in-process fold,
        so results are identical with and without workers.
    hash_joins:
        When true (default), equi-joins — explicit ``JOIN ... ON`` and
        implicit multi-table FROM lists with WHERE equality conjuncts — run
        as build/probe hash joins with predicate pushdown
        (:mod:`repro.engine.join`); when false every join takes the legacy
        interpreted nested loop / Cartesian-product path.  Results are
        identical either way — the flag exists so the join parity suite and
        the ``--joins`` microbenchmark can compare the strategies.  Hash
        joins also require ``compiled_execution``.
    use_indexes:
        When true (default), the planner (:mod:`repro.engine.planner`) may
        rewrite a single-table WHERE into a secondary-index probe
        (``CREATE INDEX``) whenever its estimated selectivity beats the full
        segment scan.  Results are byte-identical either way — the flag
        exists so the planner parity suite and the ``--indexes``
        microbenchmark can compare access paths.  Index scans also require
        ``compiled_execution``.
    auto_analyze:
        When true, the planner refreshes a table's ``ANALYZE`` statistics at
        planning time once enough DML has accumulated since the last
        snapshot (autovacuum-style damping).  Off by default: statistics are
        collected only by explicit ``ANALYZE`` (or :meth:`analyze`), the
        paper's interrogate-the-catalog workflow.
    columnar_storage:
        When true (default), new tables store each segment as typed packed
        columns (:mod:`repro.engine.columnar`) and single-table WHERE
        clauses may evaluate as segment-at-a-time selection bitmaps with
        late row materialization; when false tables store row-tuple lists
        and every WHERE runs per row.  Results are byte-identical either
        way — the flag exists so the columnar parity suite and the
        ``--columnar`` microbenchmark can compare the storage layouts.
        Bitmap WHERE evaluation also requires ``compiled_execution``.
    columnar_compression:
        When true (default), columnar tables dictionary-encode text and
        boolean columns (:class:`~repro.engine.columnar.DictColumn`) — the
        storage shrinks to int16 codes and supported text predicates
        (``=``, ``!=``, ``IN``, ``LIKE``) evaluate in code space as
        selection bitmaps.  High-cardinality columns demote back to object
        lists automatically.  Results are byte-identical either way — the
        flag exists so the compression parity/fuzz suites and the
        ``--compression`` microbenchmark can compare the encodings.  Has no
        effect when ``columnar_storage`` is off.
    plan_cache:
        Capacity of the plan cache (:mod:`repro.engine.plancache`).  ``0``
        (the embedded default) disables caching: every ``execute`` parses
        and plans from scratch, exactly as before.  ``N >= 1`` normalizes
        each SELECT/DML statement into a literal-parameterized shape and
        reuses the parsed (and, for simple indexed point lookups, fully
        planned) statement across calls, invalidating on any DDL or enough
        DML drift.  Results are byte-identical either way.  The serving
        layer (:mod:`repro.engine.serving`) enables this by default.
    parallel_task_timeout:
        Per-task supervision deadline for the worker pool (seconds); a task
        whose result misses the deadline is declared lost (dead or hung
        worker) and the pool's respawn/retry/fallback policy engages.
        ``None`` keeps the pool default (generous — production statements
        are never killed by the supervisor); chaos tests shrink it.
    parallel_task_retries:
        Bounded per-segment retry budget after worker-pool infra faults
        (``None`` = pool default).
    faults:
        Optional :class:`~repro.engine.faults.FaultInjector` wired into the
        worker pool's dispatch sites for deterministic chaos testing.
        ``None`` (default, production) costs one attribute check per
        dispatch; results are byte-identical with or without injected
        faults — that is the point of the fault-tolerance layer, and the
        chaos harness (``tests/serving/test_chaos.py``) proves it.
    """

    def __init__(
        self,
        num_segments: int = 1,
        *,
        parallel_aggregation: bool = True,
        compiled_execution: bool = True,
        parallel: int = 0,
        hash_joins: bool = True,
        use_indexes: bool = True,
        auto_analyze: bool = False,
        columnar_storage: bool = True,
        columnar_compression: bool = True,
        plan_cache: int = 0,
        parallel_task_timeout: Optional[float] = None,
        parallel_task_retries: Optional[int] = None,
        parallel_min_dispatch_rows: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if num_segments < 1:
            raise ValidationError("num_segments must be at least 1")
        if parallel is None:
            parallel = 0
        if parallel < 0:
            raise ValidationError("parallel worker count must not be negative")
        if plan_cache < 0:
            raise ValidationError("plan cache capacity must not be negative")
        self.num_segments = num_segments
        self.parallel_aggregation = parallel_aggregation
        self.compiled_execution = compiled_execution
        self.hash_joins = hash_joins
        self.use_indexes = use_indexes
        self.auto_analyze = auto_analyze
        self.columnar_storage = bool(columnar_storage)
        self.columnar_compression = bool(columnar_compression)
        self.parallel = int(parallel)
        self.faults = faults
        self._worker_pool: Optional[SegmentWorkerPool] = (
            SegmentWorkerPool(
                self.parallel,
                min_dispatch_rows=parallel_min_dispatch_rows,
                task_timeout=parallel_task_timeout,
                max_task_retries=parallel_task_retries,
                faults=faults,
            )
            if self.parallel
            else None
        )
        self.catalog = Catalog()
        self.executor = Executor(self)
        self.last_stats: Optional[ExecutionStats] = None
        self.plan_cache_size = int(plan_cache)
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(self.plan_cache_size) if self.plan_cache_size else None
        )
        self._temp_counter = 0
        # ``unique_temp_name`` and ``close`` may be reached from serving-layer
        # threads; these locks make both safe without slowing the embedded
        # single-thread case measurably.
        self._temp_lock = threading.Lock()
        self._close_lock = threading.Lock()
        for definition in builtin_functions():
            self.catalog.register_function(definition)
        for aggregate in builtin_aggregates():
            self.catalog.register_aggregate(aggregate)

    # ------------------------------------------------------------------ SQL API

    def execute(self, sql: str, parameters: Optional[Dict[str, Any]] = None) -> ResultSet:
        """Parse and execute a single SQL statement."""
        if self.plan_cache is not None:
            return self._execute_via_cache(sql, parameters)
        statement = parse_statement(sql)
        result = self.executor.execute(statement, parameters)
        return self._record_stats(result)

    def _record_stats(self, result: ResultSet) -> ResultSet:
        # Every result now carries stats (DML included); ``last_stats`` keeps
        # tracking the most recent *query* so callers inspecting aggregate
        # timings are not clobbered by housekeeping DML.
        if result.stats is not None and result.stats.statement_kind == "select":
            self.last_stats = result.stats
        return result

    def _execute_via_cache(
        self, sql: str, parameters: Optional[Dict[str, Any]]
    ) -> ResultSet:
        """Plan-cache execution path (``plan_cache > 0``).

        Uncacheable shapes (DDL, EXPLAIN, parameter-name collisions) take
        the ordinary parse-and-execute path; cacheable ones run the cached
        statement with the extracted literals bound as synthetic parameters.
        """
        entry: Optional[CachedPlan] = None
        merged = parameters
        if not (parameters and any(k.startswith(SYNTHETIC_PREFIX) for k in parameters)):
            normalized = normalize_statement(sql)
            if normalized is not None:
                entry = self.plan_cache.get_or_create(normalized.fingerprint, self.catalog)
                merged = dict(parameters) if parameters else {}
                merged.update(normalized.values)
        if entry is None:
            statement = parse_statement(sql)
            return self._record_stats(self.executor.execute(statement, parameters))
        return self._record_stats(self._run_cached(entry, merged))

    def _run_cached(
        self, entry: CachedPlan, parameters: Optional[Dict[str, Any]]
    ) -> ResultSet:
        if entry.simple_plan is not None:
            result = entry.simple_plan.execute(self.catalog, parameters)
            if result is not None:
                return result
        return self.executor.execute(entry.statement, parameters)

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse (and cache the plan for) a statement once, for many executions.

        Literals in the statement are captured as defaults, so
        ``db.prepare("SELECT * FROM t WHERE id = %(id)s")`` and
        ``db.prepare("SELECT * FROM t WHERE id = 1")`` are both valid; the
        former is re-bound per :meth:`PreparedStatement.execute` call.
        Works with or without a plan cache (without one, the prepared
        statement simply holds its own parsed AST).
        """
        normalized = normalize_statement(sql)
        if normalized is None:
            # Uncacheable shape: the prepared statement owns its parsed AST.
            return PreparedStatement(self, statement=parse_statement(sql))
        if self.plan_cache is not None:
            # Parse now (through the cache) so PREPARE surfaces syntax errors.
            self.plan_cache.get_or_create(normalized.fingerprint, self.catalog)
            return PreparedStatement(
                self, fingerprint=normalized.fingerprint, values=normalized.values
            )
        return PreparedStatement(
            self,
            statement=parse_statement(normalized.fingerprint),
            values=normalized.values,
        )

    def execute_script(self, sql: str, parameters: Optional[Dict[str, Any]] = None) -> List[ResultSet]:
        """Execute a semicolon-separated script; returns one result per statement."""
        return [self.executor.execute(stmt, parameters) for stmt in parse_script(sql)]

    def query_dicts(self, sql: str, parameters: Optional[Dict[str, Any]] = None) -> List[dict]:
        """Execute a SELECT and return rows as dictionaries."""
        return self.execute(sql, parameters).to_dicts()

    def query_scalar(self, sql: str, parameters: Optional[Dict[str, Any]] = None) -> Any:
        """Execute a SELECT expected to produce a single value."""
        return self.execute(sql, parameters).scalar()

    # ------------------------------------------------------------------ extension API

    def create_function(
        self,
        name: str,
        func: Callable[..., Any],
        *,
        return_type: Union[str, SQLType] = ANY,
        strict: bool = True,
        volatile: bool = False,
        replace: bool = True,
    ) -> FunctionDefinition:
        """Register a Python callable as a SQL scalar function (a UDF)."""
        if isinstance(return_type, str):
            return_type = type_from_name(return_type)
        definition = FunctionDefinition(name, func, return_type, strict=strict, volatile=volatile)
        self.catalog.register_function(definition, replace=replace)
        return definition

    def create_aggregate(
        self,
        name: str,
        *,
        transition: Callable[..., Any],
        merge: Optional[Callable[[Any, Any], Any]] = None,
        final: Optional[Callable[[Any], Any]] = None,
        initial_state: Any = None,
        strict: bool = True,
        return_type: Union[str, SQLType] = ANY,
        replace: bool = True,
    ) -> AggregateDefinition:
        """Register a user-defined aggregate (transition / merge / final)."""
        if isinstance(return_type, str):
            return_type = type_from_name(return_type)
        definition = AggregateDefinition(
            name,
            transition,
            merge=merge,
            final=final,
            initial_state=initial_state,
            strict=strict,
            return_type=return_type,
        )
        self.catalog.register_aggregate(definition, replace=replace)
        return definition

    # ------------------------------------------------------------------ table helpers

    def create_table(
        self,
        name: str,
        columns: Union[Schema, Sequence[Tuple[str, str]]],
        *,
        distributed_by: Optional[str] = None,
        temporary: bool = False,
        replace: bool = False,
    ) -> Table:
        """Create a table programmatically (columns as ``(name, sql_type)`` pairs)."""
        if replace and self.catalog.has_table(name):
            self.catalog.drop_table(name)
        schema = columns if isinstance(columns, Schema) else Schema.from_pairs(columns)
        table = Table(
            name,
            schema,
            num_segments=self.num_segments,
            distributed_by=distributed_by,
            temporary=temporary,
            columnar_storage=self.columnar_storage,
            columnar_compression=self.columnar_compression,
        )
        return self.catalog.create_table(table)

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-load rows into an existing table; returns the number inserted."""
        return self.catalog.get_table(name).insert_many(rows)

    def table(self, name: str) -> Table:
        """Look up a table object (raises CatalogError if missing)."""
        return self.catalog.get_table(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def drop_table(self, name: str, *, if_exists: bool = True) -> None:
        self.catalog.drop_table(name, if_exists=if_exists)

    def table_names(self) -> List[str]:
        return self.catalog.table_names()

    # ------------------------------------------------------------------ planner

    def analyze(self, table: Optional[str] = None) -> int:
        """Collect planner statistics (the ``ANALYZE [table]`` statement).

        Returns the number of tables analyzed.  Statistics land in the
        catalog (``catalog.statistics()`` lists them, the pg_stats analog)
        where the access-path planner and driver UDFs interrogate them.
        Delegates to the SQL statement so the two surfaces cannot diverge.
        """
        sql = "ANALYZE" if table is None else f"ANALYZE {table}"
        return self.execute(sql).rowcount

    def create_index(
        self, name: str, table: str, column: str, *, kind: str = "sorted"
    ) -> None:
        """Create a secondary index programmatically (``CREATE INDEX`` analog)."""
        self.catalog.create_index(name, table, column, kind=kind)

    def explain(
        self, sql: str, parameters: Optional[Dict[str, Any]] = None, *, analyze: bool = False
    ) -> str:
        """Render a statement's plan as text (``EXPLAIN [ANALYZE]`` analog)."""
        prefix = "EXPLAIN ANALYZE " if analyze else "EXPLAIN "
        result = self.execute(prefix + sql, parameters)
        return "\n".join(row[0] for row in result.rows)

    # ------------------------------------------------------------------ parallel workers

    @property
    def worker_pool(self) -> Optional[SegmentWorkerPool]:
        """The persistent segment worker pool, or None when ``parallel=0``."""
        return self._worker_pool

    def ensure_parallel_workers(self) -> None:
        """Start the worker pool now instead of on first use (idempotent).

        Driver iteration controllers call this so multipass methods pay the
        process-spawn cost once up front, never inside a timed iteration.
        """
        if self._worker_pool is not None:
            self._worker_pool.ensure_started()

    def close(self) -> None:
        """Release external resources (the worker pool); idempotent.

        Safe to call concurrently (the serving layer's teardown races
        ``__del__`` and explicit ``close`` calls): exactly one caller shuts
        the pool down, everyone else returns immediately.  The database
        object itself stays usable — subsequent queries simply run without
        the parallel tier.
        """
        with self._close_lock:
            pool, self._worker_pool = self._worker_pool, None
        if pool is not None:
            pool.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown timing
        # Last-resort cleanup so a served database dropped with in-flight
        # sessions cannot leak worker processes.  Everything here must
        # tolerate a partially torn-down interpreter.
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ segments

    def set_num_segments(self, num_segments: int, *, redistribute: bool = True) -> None:
        """Change the segment count, optionally redistributing existing tables.

        The Figure 4 / Figure 5 harness uses this to sweep cluster sizes over
        the same loaded data.
        """
        if num_segments < 1:
            raise ValidationError("num_segments must be at least 1")
        self.num_segments = num_segments
        if redistribute:
            for name in self.catalog.table_names():
                table = self.catalog.get_table(name)
                table.redistribute(num_segments, table.distributed_by)

    # ------------------------------------------------------------------ temp tables

    def unique_temp_name(self, prefix: str = "madlib_temp") -> str:
        """A fresh temp-table name (drivers stage inter-iteration state in these).

        Counter updates happen under a lock so two serving-layer sessions can
        never be handed the same name.
        """
        with self._temp_lock:
            self._temp_counter += 1
            candidate = f"{prefix}_{self._temp_counter}"
            while self.catalog.has_table(candidate):
                self._temp_counter += 1
                candidate = f"{prefix}_{self._temp_counter}"
            return candidate

    @contextmanager
    def temporary_table(self, prefix: str = "madlib_temp"):
        """Context manager yielding a fresh temp-table name, dropped on exit."""
        name = self.unique_temp_name(prefix)
        try:
            yield name
        finally:
            self.catalog.drop_table(name, if_exists=True)

    def drop_temporary_tables(self) -> int:
        return self.catalog.drop_temporary_tables()


class PreparedStatement:
    """A statement parsed (and plan-cached) once, executable many times.

    With a plan cache, the prepared statement holds only its *fingerprint*;
    every execution revalidates the shared cache entry, so DDL or data drift
    transparently replans instead of running a stale plan.  Without a cache
    it owns its parsed AST.  ``values`` carries the literals normalization
    extracted at PREPARE time; caller parameters are merged under them (the
    synthetic ``__cN`` names can never be overridden by callers).
    """

    def __init__(
        self,
        database: Database,
        *,
        fingerprint: Optional[str] = None,
        values: Optional[Dict[str, Any]] = None,
        statement: Optional[Any] = None,
    ) -> None:
        self.database = database
        self.fingerprint = fingerprint
        self.values = dict(values) if values else {}
        self._statement = statement

    @property
    def parameter_names(self) -> List[str]:
        """The caller-facing parameter names (synthetic literals excluded)."""
        if self.fingerprint is None:
            return []
        return sorted(
            {
                token.value
                for token in tokenize(self.fingerprint)
                if token.kind == "parameter"
                and not token.value.startswith(SYNTHETIC_PREFIX)
            }
        )

    def execute(self, parameters: Optional[Dict[str, Any]] = None) -> ResultSet:
        merged: Optional[Dict[str, Any]]
        if self.values:
            merged = dict(parameters) if parameters else {}
            merged.update(self.values)
        else:
            merged = parameters
        database = self.database
        if self.fingerprint is not None and database.plan_cache is not None:
            entry = database.plan_cache.get_or_create(self.fingerprint, database.catalog)
            return database._record_stats(database._run_cached(entry, merged))
        return database._record_stats(
            database.executor.execute(self._statement, merged)
        )


def connect(num_segments: int = 1, **kwargs: Any) -> Database:
    """Create a new in-memory database (named to read like a DB-API call)."""
    return Database(num_segments=num_segments, **kwargs)
