"""Typed packed column storage — the segment-native representation.

Greenplum stores a table's rows on its segments; this engine's fast paths
(batch aggregate kernels, packed worker pickling, hash-join builds, index
maintenance) all want *columns*, and until this module existed they derived
them from row tuples on every table version change.  A
:class:`ColumnStore` inverts that: each segment owns one typed packed
column per schema column — ``array('d')`` for ``double precision``,
``array('q')`` for ``integer``/``bigint``, a plain Python list for
everything else — plus a null bitmap, and row tuples become the *derived*
(cached) view used by code that still thinks in rows.

Representation invariants
-------------------------
* A ``double precision`` column stores SQL NULL as a NaN placeholder **and**
  a set bit in the null bitmap.  A genuine NaN value (which
  :func:`~repro.engine.types.is_null` also treats as NULL) stores as NaN with
  a *clear* bitmap bit, so ``None`` and ``float('nan')`` round-trip
  distinctly — ``format_value`` renders them differently.
* An ``integer``/``bigint`` column stores SQL NULL as a ``0`` placeholder
  plus a set bitmap bit.  A Python int that does not fit in a C int64
  *demotes* the whole column to a plain object list (append-time
  ``OverflowError``); demoted columns simply lose the packed fast paths,
  never correctness — ``numeric_view`` returns ``None`` and every consumer
  falls back to the row representation.
* NumPy views of packed buffers are **copies** (``np.array``), cached per
  column mutation: a true ``np.frombuffer`` view would pin the ``array``
  buffer and make subsequent appends raise ``BufferError``.  The copy is one
  C memcpy, amortized across queries by the cache.

The row-tuple view (:meth:`ColumnStore.rows_view`) is materialized lazily
and cached until the next mutation of *this segment* — per-segment
invalidation, so DML touching one segment never recomputes another
segment's view.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .schema import Schema
from .types import BIGINT, DOUBLE, INTEGER

__all__ = ["ColumnStore", "TypedColumn", "SelectedRows", "gather_positions"]

_NAN = float("nan")


class TypedColumn(Sequence):
    """One packed numeric column: typed ``array`` + null bitmap.

    Reads present Python values (``None`` for SQL NULL), so the column is a
    drop-in ``Sequence`` replacement for the ``list`` columns the engine used
    to cache.  Writers go through :meth:`append`, which may raise
    ``OverflowError`` for out-of-range ints — the owning :class:`ColumnStore`
    then demotes the column to an object list.
    """

    __slots__ = ("typecode", "data", "nulls", "null_count", "_values_cache", "_mask_cache")

    def __init__(self, typecode: str) -> None:
        if typecode not in ("d", "q"):
            raise ValueError(f"unsupported typecode {typecode!r}")
        self.typecode = typecode
        self.data = array(typecode)
        self.nulls = bytearray()
        self.null_count = 0
        self._values_cache: Optional[np.ndarray] = None
        self._mask_cache: Optional[np.ndarray] = None

    # -- writes -------------------------------------------------------------

    def append(self, value: Any) -> None:
        self._values_cache = None
        self._mask_cache = None
        if value is None:
            self.data.append(_NAN if self.typecode == "d" else 0)
            self.nulls.append(1)
            self.null_count += 1
        else:
            # May raise OverflowError/TypeError *before* mutating, so a
            # failed append leaves the column consistent for demotion.
            self.data.append(value)
            self.nulls.append(0)

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self.data)))]
        if self.nulls[index]:
            return None
        return self.data[index]

    def __iter__(self) -> Iterator[Any]:
        if not self.null_count:
            return iter(self.data)
        return (None if null else value for value, null in zip(self.data, self.nulls))

    def __array__(self, dtype=None, copy=None):
        # Lets NumPy-based batch kernels (variance, vector_sum) consume the
        # packed buffer directly.  With NULLs present the placeholders would
        # corrupt the result, so refuse — the kernel's caller falls back to
        # the row-at-a-time fold, exactly as a None in a list column would
        # have made np.asarray produce an object array and the kernel raise.
        if self.null_count:
            raise ValueError("column contains NULLs; no packed array view")
        values = self.values_array()
        if dtype is not None and values.dtype != dtype:
            return values.astype(dtype)
        return values

    # -- packed views ---------------------------------------------------------

    def values_array(self) -> np.ndarray:
        """Packed values as an ndarray (NULL placeholders included).

        A cached *copy* of the buffer — see the module docstring for why a
        zero-copy ``frombuffer`` view is unsafe here.
        """
        if self._values_cache is None:
            self._values_cache = np.array(
                self.data, dtype=np.float64 if self.typecode == "d" else np.int64
            )
        return self._values_cache

    def null_mask(self) -> Optional[np.ndarray]:
        """Boolean SQL-NULL mask (True where NULL), or ``None`` when clean.

        For float columns this covers genuine NaN values too (``is_null``
        treats NaN as NULL), not just stored ``None``.
        """
        if self.typecode == "d":
            if self._mask_cache is None:
                mask = np.isnan(self.values_array())
                self._mask_cache = mask if mask.any() else None
                if self._mask_cache is None:
                    return None
            return self._mask_cache
        if not self.null_count:
            return None
        if self._mask_cache is None:
            self._mask_cache = np.array(np.frombuffer(self.nulls, dtype=np.bool_))
        return self._mask_cache

    def null_positions(self) -> Optional[set]:
        """Strict-filter contract of ``vectorized._null_positions``: indices of
        SQL-NULL entries (None or NaN) as a set, or ``None`` when clean."""
        mask = self.null_mask()
        if mask is None:
            return None
        positions = set(np.flatnonzero(mask).tolist())
        return positions or None

    def take(self, positions: np.ndarray) -> "TypedColumn":
        """New column with the rows at ``positions`` (ascending), packed."""
        clone = TypedColumn(self.typecode)
        values = self.values_array()[positions]
        clone.data.frombytes(values.tobytes())
        kept_nulls = np.frombuffer(self.nulls, dtype=np.uint8)[positions]
        clone.nulls.extend(kept_nulls.tobytes())
        clone.null_count = int(kept_nulls.sum())
        return clone

    def packed_wire(self) -> Optional[Tuple[str, array]]:
        """Wire format for worker shipping, or ``None`` (→ generic packing).

        A clean column ships its ``array`` buffer as-is — pickling an
        ``array`` is one memcpy, so a segment batch crosses the process
        boundary near-zero-copy.  Columns with stored NULLs use the generic
        path (placeholders must not leak as values).
        """
        if self.null_count or not len(self.data):
            return None
        return ("f64" if self.typecode == "d" else "i64", self.data)


class ColumnStore(Sequence):
    """One segment's rows, stored as typed packed columns.

    Exposes the sequence-of-row-tuples protocol (``len``, indexing,
    iteration, ``append``) so every row-oriented consumer — index rebuilds,
    sequential scans, the parallel grouped dispatch — works unchanged, while
    column-oriented consumers read the packed columns directly.
    """

    __slots__ = ("schema", "_columns", "_length", "_rows_cache")

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._columns: List[Any] = [self._new_column(column.sql_type) for column in schema]
        self._length = 0
        self._rows_cache: Optional[List[Tuple[Any, ...]]] = None

    @staticmethod
    def _new_column(sql_type) -> Any:
        if sql_type is DOUBLE:
            return TypedColumn("d")
        if sql_type is INTEGER or sql_type is BIGINT:
            return TypedColumn("q")
        return []

    # -- writes -------------------------------------------------------------

    def append(self, row: Tuple[Any, ...]) -> None:
        self._rows_cache = None
        for i, value in enumerate(row):
            column = self._columns[i]
            if isinstance(column, TypedColumn):
                try:
                    column.append(value)
                except (OverflowError, TypeError):
                    # Demote: a value the packed representation cannot hold
                    # (e.g. an int beyond int64) turns the column into a
                    # plain object list.  Fast paths decline; results do not
                    # change.
                    demoted = list(column)
                    demoted.append(value)
                    self._columns[i] = demoted
            else:
                column.append(value)
        self._length += 1

    def clear(self) -> None:
        self._columns = [self._new_column(column.sql_type) for column in self.schema]
        self._length = 0
        self._rows_cache = None

    def keep_positions(self, positions: Sequence[int]) -> None:
        """Retain only the rows at ``positions`` (ascending) — segment DELETE."""
        index = np.asarray(positions, dtype=np.int64)
        new_columns: List[Any] = []
        for column in self._columns:
            if isinstance(column, TypedColumn):
                new_columns.append(column.take(index))
            else:
                new_columns.append([column[p] for p in index])
        self._columns = new_columns
        self._length = len(index)
        self._rows_cache = None

    # -- row-tuple view -------------------------------------------------------

    def rows_view(self) -> List[Tuple[Any, ...]]:
        """Materialized row tuples, cached until this segment next mutates.

        Callers treat the result as immutable (the same contract
        ``Table.segment_view`` always had); a mutation builds a fresh list,
        so snapshots held across DML stay self-consistent.
        """
        if self._rows_cache is None:
            if self._length:
                self._rows_cache = list(zip(*self._columns))
            else:
                self._rows_cache = []
        return self._rows_cache

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        return self.rows_view()[index]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows_view())

    # -- column access --------------------------------------------------------

    def column(self, index: int) -> Sequence[Any]:
        """One column as a value sequence (packed column or object list)."""
        return self._columns[index]

    def columns_view(self) -> Tuple[Sequence[Any], ...]:
        """All columns — the drop-in replacement for the derived columnar
        cache row-mode tables maintain."""
        return tuple(self._columns)

    def iter_column(self, index: int) -> Iterator[Any]:
        """Iterate one column's Python values (index-rebuild fast path)."""
        return iter(self._columns[index])

    def numeric_view(self, index: int) -> Optional[Tuple[np.ndarray, Optional[np.ndarray]]]:
        """``(values, null_mask)`` ndarrays for a packed numeric column.

        ``None`` for object-list columns (non-numeric types or demoted
        numeric columns) — vectorized consumers must then fall back.
        """
        column = self._columns[index]
        if not isinstance(column, TypedColumn):
            return None
        return column.values_array(), column.null_mask()


def gather_positions(column: Sequence[Any], positions: np.ndarray) -> List[Any]:
    """Late materialization: the values of ``column`` at ``positions``.

    Packed NULL-free columns gather with one NumPy fancy-index (+``tolist``,
    which restores genuine Python floats/ints); anything else gathers
    per-position, preserving ``None``.
    """
    if isinstance(column, TypedColumn) and not column.null_count:
        return column.values_array()[positions].tolist()
    return [column[int(p)] for p in positions]


class SelectedRows(Sequence):
    """Lazy row view of a bitmap-selected scan (late row materialization).

    Holds per-segment ``(store, selected positions)`` pairs; ``len`` is known
    up front, but row tuples are only built on first row access.  Aggregate
    queries that stay on the columnar stream path therefore never materialize
    a single row tuple for the rows the WHERE clause selected.
    """

    __slots__ = ("_parts", "_length", "_rows")

    def __init__(self, parts: List[Tuple[ColumnStore, np.ndarray]]) -> None:
        self._parts = parts
        self._length = sum(len(positions) for _, positions in parts)
        self._rows: Optional[List[Tuple[Any, ...]]] = None

    def _materialize(self) -> List[Tuple[Any, ...]]:
        if self._rows is None:
            rows: List[Tuple[Any, ...]] = []
            for store, positions in self._parts:
                if not len(positions):
                    continue
                view = store.rows_view()
                rows.extend(view[p] for p in positions)
            self._rows = rows
        return self._rows

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._materialize())
