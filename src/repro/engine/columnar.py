"""Typed packed column storage — the segment-native representation.

Greenplum stores a table's rows on its segments; this engine's fast paths
(batch aggregate kernels, packed worker pickling, hash-join builds, index
maintenance) all want *columns*, and until this module existed they derived
them from row tuples on every table version change.  A
:class:`ColumnStore` inverts that: each segment owns one typed packed
column per schema column — ``array('d')`` for ``double precision``,
``array('q')`` for ``integer``/``bigint``, a plain Python list for
everything else — plus a null bitmap, and row tuples become the *derived*
(cached) view used by code that still thinks in rows.

Representation invariants
-------------------------
* A ``double precision`` column stores SQL NULL as a NaN placeholder **and**
  a set bit in the null bitmap.  A genuine NaN value (which
  :func:`~repro.engine.types.is_null` also treats as NULL) stores as NaN with
  a *clear* bitmap bit, so ``None`` and ``float('nan')`` round-trip
  distinctly — ``format_value`` renders them differently.
* An ``integer``/``bigint`` column stores SQL NULL as a ``0`` placeholder
  plus a set bitmap bit.  A Python int that does not fit in a C int64
  *demotes* the whole column to a plain object list (append-time
  ``OverflowError``); demoted columns simply lose the packed fast paths,
  never correctness — ``numeric_view`` returns ``None`` and every consumer
  falls back to the row representation.
* NumPy views of packed buffers are **copies** (``np.array``), cached per
  column mutation: a true ``np.frombuffer`` view would pin the ``array``
  buffer and make subsequent appends raise ``BufferError``.  The copy is one
  C memcpy, amortized across queries by the cache.

The row-tuple view (:meth:`ColumnStore.rows_view`) is materialized lazily
and cached until the next mutation of *this segment* — per-segment
invalidation, so DML touching one segment never recomputes another
segment's view.

Compression
-----------
Text and boolean columns compress with dictionary encoding
(:class:`DictColumn`): values live once in a per-column dictionary and the
column itself is an ``array('h')`` of int16 codes (``-1`` = SQL NULL).  A
freshly created column starts in a run-length tier (runs of ``(code,
count)`` pairs — loads of sorted or constant data stay O(runs)); once runs
get short the column converts permanently to the packed code array.  A
column whose distinct count crosses :attr:`DictColumn.max_distinct` (or the
int16 code space) *demotes* to a plain object list, exactly like an int
column overflowing int64 — fast paths decline, results never change.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .schema import Schema
from .types import BIGINT, BOOLEAN, DOUBLE, INTEGER, TEXT, is_null

__all__ = [
    "ColumnStore",
    "DictColumn",
    "TypedColumn",
    "SelectedRows",
    "gather_positions",
]

_NAN = float("nan")

#: Key under which a genuine NaN value (which ``is_null`` treats as NULL but
#: which must round-trip distinctly from ``None``) lives in a dictionary —
#: NaN is not equal to itself, so it cannot key a dict directly.
_NAN_KEY = ("__nan__",)


def _dict_key(value: Any) -> Any:
    """Dictionary identity of a value: type-exact, NaN-safe.

    ``(type, value)`` keeps ``True`` / ``1`` / ``1.0`` distinct (tuple
    equality compares the classes first), so a round-trip through the
    dictionary returns the exact object kind that was stored.  Unhashable
    values raise ``TypeError`` — the owning store then demotes the column.
    """
    if isinstance(value, float) and value != value:
        return _NAN_KEY
    return (value.__class__, value)


class TypedColumn(Sequence):
    """One packed numeric column: typed ``array`` + null bitmap.

    Reads present Python values (``None`` for SQL NULL), so the column is a
    drop-in ``Sequence`` replacement for the ``list`` columns the engine used
    to cache.  Writers go through :meth:`append`, which may raise
    ``OverflowError`` for out-of-range ints — the owning :class:`ColumnStore`
    then demotes the column to an object list.
    """

    __slots__ = ("typecode", "data", "nulls", "null_count", "_values_cache", "_mask_cache")

    def __init__(self, typecode: str) -> None:
        if typecode not in ("d", "q"):
            raise ValueError(f"unsupported typecode {typecode!r}")
        self.typecode = typecode
        self.data = array(typecode)
        self.nulls = bytearray()
        self.null_count = 0
        self._values_cache: Optional[np.ndarray] = None
        self._mask_cache: Optional[np.ndarray] = None

    # -- writes -------------------------------------------------------------

    def append(self, value: Any) -> None:
        self._values_cache = None
        self._mask_cache = None
        if value is None:
            self.data.append(_NAN if self.typecode == "d" else 0)
            self.nulls.append(1)
            self.null_count += 1
        else:
            # May raise OverflowError/TypeError *before* mutating, so a
            # failed append leaves the column consistent for demotion.
            self.data.append(value)
            self.nulls.append(0)

    def set(self, position: int, value: Any) -> None:
        """Rewrite one existing position (bitmap-aware UPDATE).

        Same failure contract as :meth:`append`: an unrepresentable value
        raises *before* any mutation, so the owning store can demote and
        retry against the object list.
        """
        if value is None:
            self._values_cache = None
            self._mask_cache = None
            self.data[position] = _NAN if self.typecode == "d" else 0
            if not self.nulls[position]:
                self.nulls[position] = 1
                self.null_count += 1
        else:
            self.data[position] = value  # raises before any mutation
            self._values_cache = None
            self._mask_cache = None
            if self.nulls[position]:
                self.nulls[position] = 0
                self.null_count -= 1

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self.data)))]
        if self.nulls[index]:
            return None
        return self.data[index]

    def __iter__(self) -> Iterator[Any]:
        if not self.null_count:
            return iter(self.data)
        return (None if null else value for value, null in zip(self.data, self.nulls))

    def __array__(self, dtype=None, copy=None):
        # Lets NumPy-based batch kernels (variance, vector_sum) consume the
        # packed buffer directly.  With NULLs present the placeholders would
        # corrupt the result, so refuse — the kernel's caller falls back to
        # the row-at-a-time fold, exactly as a None in a list column would
        # have made np.asarray produce an object array and the kernel raise.
        if self.null_count:
            raise ValueError("column contains NULLs; no packed array view")
        values = self.values_array()
        if dtype is not None and values.dtype != dtype:
            return values.astype(dtype)
        return values

    # -- packed views ---------------------------------------------------------

    def values_array(self) -> np.ndarray:
        """Packed values as an ndarray (NULL placeholders included).

        A cached *copy* of the buffer — see the module docstring for why a
        zero-copy ``frombuffer`` view is unsafe here.
        """
        if self._values_cache is None:
            self._values_cache = np.array(
                self.data, dtype=np.float64 if self.typecode == "d" else np.int64
            )
        return self._values_cache

    def null_mask(self) -> Optional[np.ndarray]:
        """Boolean SQL-NULL mask (True where NULL), or ``None`` when clean.

        For float columns this covers genuine NaN values too (``is_null``
        treats NaN as NULL), not just stored ``None``.
        """
        if self.typecode == "d":
            if self._mask_cache is None:
                mask = np.isnan(self.values_array())
                self._mask_cache = mask if mask.any() else None
                if self._mask_cache is None:
                    return None
            return self._mask_cache
        if not self.null_count:
            return None
        if self._mask_cache is None:
            self._mask_cache = np.array(np.frombuffer(self.nulls, dtype=np.bool_))
        return self._mask_cache

    def null_positions(self) -> Optional[set]:
        """Strict-filter contract of ``vectorized._null_positions``: indices of
        SQL-NULL entries (None or NaN) as a set, or ``None`` when clean."""
        mask = self.null_mask()
        if mask is None:
            return None
        positions = set(np.flatnonzero(mask).tolist())
        return positions or None

    def take(self, positions: np.ndarray) -> "TypedColumn":
        """New column with the rows at ``positions`` (ascending), packed."""
        clone = TypedColumn(self.typecode)
        values = self.values_array()[positions]
        clone.data.frombytes(values.tobytes())
        kept_nulls = np.frombuffer(self.nulls, dtype=np.uint8)[positions]
        clone.nulls.extend(kept_nulls.tobytes())
        clone.null_count = int(kept_nulls.sum())
        return clone

    def packed_wire(self) -> Optional[Tuple[str, array]]:
        """Wire format for worker shipping, or ``None`` (→ generic packing).

        A clean column ships its ``array`` buffer as-is — pickling an
        ``array`` is one memcpy, so a segment batch crosses the process
        boundary near-zero-copy.  Columns with stored NULLs use the generic
        path (placeholders must not leak as values).
        """
        if self.null_count or not len(self.data):
            return None
        return ("f64" if self.typecode == "d" else "i64", self.data)


class DictColumn(Sequence):
    """One dictionary-encoded column: int16 codes + a value dictionary.

    Two physical tiers, both behind the same ``Sequence`` facade:

    * **RLE** (the initial tier): parallel ``(code, run length)`` arrays.
      Constant and sorted loads stay O(runs); once the mean run length drops
      below ~4 the column converts permanently to —
    * **packed**: one ``array('h')`` of codes in row order.

    SQL NULL is code ``-1``; a genuine NaN is a *dictionary entry* (keyed by
    a sentinel), so ``None`` and ``float('nan')`` round-trip distinctly just
    as they do through :class:`TypedColumn`.  :meth:`append`/:meth:`set`
    raise ``OverflowError`` before mutating when the dictionary would exceed
    :attr:`max_distinct` (or the int16 code space) and ``TypeError`` for
    unhashable values — the owning :class:`ColumnStore` then demotes the
    column to a plain object list.
    """

    __slots__ = (
        "values",
        "_code_of",
        "_codes",
        "_run_codes",
        "_run_counts",
        "_length",
        "_codes_cache",
        "_mask_cache",
        "max_distinct",
    )

    #: Demotion threshold: past this many distinct values the column is no
    #: longer "low cardinality" and dictionary lookups stop paying for
    #: themselves.  Kept well under the int16 code space.
    MAX_DISTINCT = 4096

    #: Hard ceiling from the ``array('h')`` code representation.
    _CODE_LIMIT = 32767

    #: RLE→packed conversion: convert when there are more than this many runs
    #: *and* the mean run length is below ``_RLE_MIN_MEAN_RUN``.
    _RLE_MIN_RUNS = 64
    _RLE_MIN_MEAN_RUN = 4

    def __init__(self, max_distinct: Optional[int] = None) -> None:
        self.values: List[Any] = []
        self._code_of: Dict[Any, int] = {}
        self._codes: Optional[array] = None  # packed tier
        self._run_codes: Optional[array] = array("h")  # RLE tier
        self._run_counts: Optional[array] = array("q")
        self._length = 0
        self._codes_cache: Optional[np.ndarray] = None
        self._mask_cache: Any = False  # False = not computed (None is valid)
        self.max_distinct = self.MAX_DISTINCT if max_distinct is None else max_distinct

    # -- encoding -------------------------------------------------------------

    def _encode(self, value: Any) -> int:
        """Code for ``value``, growing the dictionary; raises before mutating."""
        if value is None:
            return -1
        key = _dict_key(value)  # may raise TypeError (unhashable) → demotion
        code = self._code_of.get(key)
        if code is None:
            if len(self.values) >= min(self.max_distinct, self._CODE_LIMIT):
                raise OverflowError(
                    f"dictionary column exceeds {self.max_distinct} distinct values"
                )
            code = len(self.values)
            self._code_of[key] = code
            self.values.append(value)
        return code

    def _decode(self, code: int) -> Any:
        return None if code < 0 else self.values[code]

    def _invalidate(self) -> None:
        self._codes_cache = None
        self._mask_cache = False

    def _to_packed(self) -> None:
        """Convert the RLE tier to the packed code array (one-way)."""
        expanded = np.repeat(
            np.frombuffer(self._run_codes, dtype=np.int16),
            np.frombuffer(self._run_counts, dtype=np.int64),
        )
        codes = array("h")
        codes.frombytes(np.ascontiguousarray(expanded, dtype=np.int16).tobytes())
        self._codes = codes
        self._run_codes = None
        self._run_counts = None

    # -- writes ---------------------------------------------------------------

    def append(self, value: Any) -> None:
        code = self._encode(value)  # raises before any mutation
        self._invalidate()
        if self._codes is not None:
            self._codes.append(code)
        else:
            runs = self._run_codes
            if len(runs) and runs[-1] == code:
                self._run_counts[-1] += 1
            else:
                runs.append(code)
                self._run_counts.append(1)
                if (
                    len(runs) > self._RLE_MIN_RUNS
                    and len(runs) * self._RLE_MIN_MEAN_RUN > self._length + 1
                ):
                    self._to_packed()
        self._length += 1

    def set(self, position: int, value: Any) -> None:
        """Rewrite one existing position (bitmap-aware UPDATE).

        The RLE tier converts to packed first — point writes would split
        runs, and a column being point-updated has left the append-only
        load phase the RLE tier exists for.
        """
        code = self._encode(value)  # raises before any mutation
        if self._codes is None:
            self._to_packed()
        if not -self._length <= position < self._length:
            raise IndexError(position)
        self._invalidate()
        self._codes[position] = code

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._decode(int(c)) for c in self.codes_array()[index]]
        if self._codes is not None:
            return self._decode(self._codes[index])
        return self._decode(int(self.codes_array()[index]))

    def __iter__(self) -> Iterator[Any]:
        values = self.values
        if self._codes is not None:
            return (None if c < 0 else values[c] for c in self._codes)
        return (
            None if code < 0 else values[code]
            for code, count in zip(self._run_codes, self._run_counts)
            for _ in range(count)
        )

    # -- packed views ---------------------------------------------------------

    def codes_array(self) -> np.ndarray:
        """Row-order codes as an int16 ndarray (cached copy; ``-1`` = NULL)."""
        if self._codes_cache is None:
            if self._codes is not None:
                self._codes_cache = np.array(self._codes, dtype=np.int16)
            else:
                self._codes_cache = np.repeat(
                    np.frombuffer(self._run_codes, dtype=np.int16),
                    np.frombuffer(self._run_counts, dtype=np.int64),
                )
        return self._codes_cache

    def null_mask(self) -> Optional[np.ndarray]:
        """Boolean SQL-NULL mask (True where NULL), or ``None`` when clean.

        Covers both ``None`` (code ``-1``) and dictionary entries that are
        themselves SQL NULL (a stored NaN), mirroring ``TypedColumn``.
        """
        if self._mask_cache is False:
            lut = np.zeros(len(self.values) + 1, dtype=bool)
            lut[-1] = True  # code -1 wraps to the sentinel slot
            for code, value in enumerate(self.values):
                if is_null(value):
                    lut[code] = True
            mask = lut[self.codes_array()]
            self._mask_cache = mask if mask.any() else None
        return self._mask_cache

    def null_positions(self) -> Optional[set]:
        """Strict-filter contract of ``vectorized._null_positions``."""
        mask = self.null_mask()
        if mask is None:
            return None
        positions = set(np.flatnonzero(mask).tolist())
        return positions or None

    def gather(self, positions: np.ndarray) -> List[Any]:
        """Decoded values at ``positions`` (late materialization)."""
        values = self.values
        return [
            None if code < 0 else values[code]
            for code in self.codes_array()[positions].tolist()
        ]

    def take(self, positions: np.ndarray) -> "DictColumn":
        """New packed-tier column with the rows at ``positions`` (ascending)."""
        clone = DictColumn(max_distinct=self.max_distinct)
        clone.values = list(self.values)
        clone._code_of = dict(self._code_of)
        taken = np.ascontiguousarray(self.codes_array()[positions], dtype=np.int16)
        codes = array("h")
        codes.frombytes(taken.tobytes())
        clone._codes = codes
        clone._run_codes = None
        clone._run_counts = None
        clone._length = len(codes)
        return clone

    def packed_wire(self) -> Optional[Tuple[str, Tuple[array, Tuple[Any, ...]]]]:
        """Wire format for worker shipping: codes buffer + dictionary.

        Unlike ``TypedColumn``, NULLs need no special casing — code ``-1``
        decodes to ``None`` on the far side — so every non-empty column
        ships compressed.
        """
        if not self._length:
            return None
        if self._codes is not None:
            codes = self._codes
        else:
            codes = array("h")
            codes.frombytes(
                np.ascontiguousarray(self.codes_array(), dtype=np.int16).tobytes()
            )
        return ("dict16", (codes, tuple(self.values)))


class ColumnStore(Sequence):
    """One segment's rows, stored as typed packed columns.

    Exposes the sequence-of-row-tuples protocol (``len``, indexing,
    iteration, ``append``) so every row-oriented consumer — index rebuilds,
    sequential scans, the parallel grouped dispatch — works unchanged, while
    column-oriented consumers read the packed columns directly.
    """

    __slots__ = ("schema", "compression", "_columns", "_length", "_rows_cache")

    def __init__(self, schema: Schema, *, compression: bool = True) -> None:
        self.schema = schema
        self.compression = bool(compression)
        self._columns: List[Any] = [self._new_column(column.sql_type) for column in schema]
        self._length = 0
        self._rows_cache: Optional[List[Tuple[Any, ...]]] = None

    def _new_column(self, sql_type) -> Any:
        if sql_type is DOUBLE:
            return TypedColumn("d")
        if sql_type is INTEGER or sql_type is BIGINT:
            return TypedColumn("q")
        if self.compression and (sql_type is TEXT or sql_type is BOOLEAN):
            # Dictionary encoding only for types whose consumers never need
            # a numeric packed view — an int column behind a dictionary
            # would lose ``numeric_view`` and with it the numeric bitmap
            # path, a net loss.
            return DictColumn()
        return []

    # -- writes -------------------------------------------------------------

    def append(self, row: Tuple[Any, ...]) -> None:
        self._rows_cache = None
        for i, value in enumerate(row):
            column = self._columns[i]
            if isinstance(column, (TypedColumn, DictColumn)):
                try:
                    column.append(value)
                except (OverflowError, TypeError):
                    # Demote: a value the packed representation cannot hold
                    # (an int beyond int64, a dictionary past its distinct
                    # threshold, an unhashable value) turns the column into
                    # a plain object list.  Fast paths decline; results do
                    # not change.
                    demoted = list(column)
                    demoted.append(value)
                    self._columns[i] = demoted
            else:
                column.append(value)
        self._length += 1

    def set_rows(
        self,
        positions: Sequence[int],
        rows: Sequence[Tuple[Any, ...]],
        column_indices: Optional[Sequence[int]] = None,
    ) -> None:
        """Rewrite the rows at ``positions`` in place (bitmap-aware UPDATE).

        ``rows`` holds one full coerced row per position; ``column_indices``
        limits the writes to the assigned columns (the rest are untouched
        storage).  A packed column that cannot hold a new value demotes to
        an object list and the writes are re-applied — sets are absolute,
        so re-applying those already made is idempotent.
        """
        self._rows_cache = None
        indices = range(len(self._columns)) if column_indices is None else column_indices
        for i in indices:
            column = self._columns[i]
            if isinstance(column, (TypedColumn, DictColumn)):
                try:
                    for position, row in zip(positions, rows):
                        column.set(position, row[i])
                    continue
                except (OverflowError, TypeError):
                    demoted = list(column)
                    self._columns[i] = column = demoted
            for position, row in zip(positions, rows):
                column[position] = row[i]

    def clear(self) -> None:
        self._columns = [self._new_column(column.sql_type) for column in self.schema]
        self._length = 0
        self._rows_cache = None

    def keep_positions(self, positions: Sequence[int]) -> None:
        """Retain only the rows at ``positions`` (ascending) — segment DELETE."""
        index = np.asarray(positions, dtype=np.int64)
        new_columns: List[Any] = []
        for column in self._columns:
            if isinstance(column, (TypedColumn, DictColumn)):
                new_columns.append(column.take(index))
            else:
                new_columns.append([column[p] for p in index])
        self._columns = new_columns
        self._length = len(index)
        self._rows_cache = None

    # -- row-tuple view -------------------------------------------------------

    def rows_view(self) -> List[Tuple[Any, ...]]:
        """Materialized row tuples, cached until this segment next mutates.

        Callers treat the result as immutable (the same contract
        ``Table.segment_view`` always had); a mutation builds a fresh list,
        so snapshots held across DML stay self-consistent.
        """
        if self._rows_cache is None:
            if self._length:
                self._rows_cache = list(zip(*self._columns))
            else:
                self._rows_cache = []
        return self._rows_cache

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        return self.rows_view()[index]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows_view())

    # -- column access --------------------------------------------------------

    def column(self, index: int) -> Sequence[Any]:
        """One column as a value sequence (packed column or object list)."""
        return self._columns[index]

    def columns_view(self) -> Tuple[Sequence[Any], ...]:
        """All columns — the drop-in replacement for the derived columnar
        cache row-mode tables maintain."""
        return tuple(self._columns)

    def iter_column(self, index: int) -> Iterator[Any]:
        """Iterate one column's Python values (index-rebuild fast path)."""
        return iter(self._columns[index])

    def numeric_view(self, index: int) -> Optional[Tuple[np.ndarray, Optional[np.ndarray]]]:
        """``(values, null_mask)`` ndarrays for a packed numeric column.

        ``None`` for object-list columns (non-numeric types or demoted
        numeric columns) — vectorized consumers must then fall back.
        """
        column = self._columns[index]
        if not isinstance(column, TypedColumn):
            return None
        return column.values_array(), column.null_mask()

    def dict_view(self, index: int) -> Optional[Tuple[np.ndarray, List[Any]]]:
        """``(codes, dictionary values)`` for a dictionary-encoded column.

        ``None`` for anything else (plain lists, numeric columns, demoted
        dictionary columns) — code-space predicate programs must then fall
        back to the row path.
        """
        column = self._columns[index]
        if not isinstance(column, DictColumn):
            return None
        return column.codes_array(), column.values


def gather_positions(column: Sequence[Any], positions: np.ndarray) -> List[Any]:
    """Late materialization: the values of ``column`` at ``positions``.

    Packed NULL-free columns gather with one NumPy fancy-index (+``tolist``,
    which restores genuine Python floats/ints); dictionary columns gather in
    code space and decode; anything else gathers per-position, preserving
    ``None``.
    """
    if isinstance(column, TypedColumn) and not column.null_count:
        return column.values_array()[positions].tolist()
    if isinstance(column, DictColumn):
        return column.gather(positions)
    return [column[int(p)] for p in positions]


class SelectedRows(Sequence):
    """Lazy row view of a bitmap-selected scan (late row materialization).

    Holds per-segment ``(store, selected positions)`` pairs; ``len`` is known
    up front, but row tuples are only built on first row access.  Aggregate
    queries that stay on the columnar stream path therefore never materialize
    a single row tuple for the rows the WHERE clause selected.
    """

    __slots__ = ("_parts", "_length", "_rows")

    def __init__(self, parts: List[Tuple[ColumnStore, np.ndarray]]) -> None:
        self._parts = parts
        self._length = sum(len(positions) for _, positions in parts)
        self._rows: Optional[List[Tuple[Any, ...]]] = None

    def _materialize(self) -> List[Tuple[Any, ...]]:
        if self._rows is None:
            rows: List[Tuple[Any, ...]] = []
            for store, positions in self._parts:
                if not len(positions):
                    continue
                view = store.rows_view()
                rows.extend(view[p] for p in positions)
            self._rows = rows
        return self._rows

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._materialize())
