"""Window-function evaluation.

Section 3.1.2 of the paper lists "window aggregates for stateful iteration"
as one of the SQL workarounds for iterative algorithms; the Florida/Berkeley
MCMC work (Section 5.2) carries Markov-chain state across rows with exactly
this construct.  The engine supports aggregate window calls (running when an
``ORDER BY`` is present, whole-partition otherwise) plus the ranking and
offset functions ``row_number``, ``rank``, ``dense_rank``, ``lag`` and
``lead``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from .aggregates import AggregateDefinition, AggregateRunner
from .expressions import RowContext, WindowCall
from .types import hashable_key, is_null

__all__ = ["compute_window_values", "RANKING_FUNCTIONS"]

RANKING_FUNCTIONS = {"row_number", "rank", "dense_rank", "lag", "lead", "first_value", "last_value"}


def _sort_partition(
    partition: List[int],
    rows: Sequence[RowContext],
    order_by: Sequence[Tuple[Any, bool]],
) -> List[int]:
    if not order_by:
        return partition
    ordered = list(partition)
    # Stable sorts applied from the least-significant key to the most.
    for expression, ascending in reversed(list(order_by)):
        keys = {index: expression.evaluate(rows[index]) for index in ordered}
        ordered.sort(key=lambda index: (keys[index] is None, keys[index]), reverse=not ascending)
    return ordered


def _evaluate_ranking(
    call: WindowCall,
    ordered: List[int],
    rows: Sequence[RowContext],
) -> Dict[int, Any]:
    name = call.function.name.lower()
    args = call.function.args
    results: Dict[int, Any] = {}
    if name == "row_number":
        for rank, index in enumerate(ordered, start=1):
            results[index] = rank
        return results
    if name in ("rank", "dense_rank"):
        order_by = call.spec.order_by
        previous_key = object()
        rank = 0
        dense = 0
        for position, index in enumerate(ordered, start=1):
            key = tuple(hashable_key(expr.evaluate(rows[index])) for expr, _ in order_by)
            if key != previous_key:
                dense += 1
                rank = position
                previous_key = key
            results[index] = rank if name == "rank" else dense
        return results
    if name in ("lag", "lead"):
        offset = 1
        default = None
        if len(args) >= 2:
            offset = int(args[1].evaluate(rows[ordered[0]])) if ordered else 1
        if len(args) >= 3 and ordered:
            default = args[2].evaluate(rows[ordered[0]])
        step = -offset if name == "lag" else offset
        for position, index in enumerate(ordered):
            source = position + step
            if 0 <= source < len(ordered):
                results[index] = args[0].evaluate(rows[ordered[source]])
            else:
                results[index] = default
        return results
    if name in ("first_value", "last_value"):
        if not ordered:
            return results
        target = ordered[0] if name == "first_value" else ordered[-1]
        value = args[0].evaluate(rows[target])
        for index in ordered:
            results[index] = value
        return results
    raise ExecutionError(f"unsupported window function {name!r}")


def _evaluate_window_aggregate(
    call: WindowCall,
    ordered: List[int],
    rows: Sequence[RowContext],
    aggregate: AggregateDefinition,
) -> Dict[int, Any]:
    runner = AggregateRunner(aggregate)
    results: Dict[int, Any] = {}
    args = call.function.args
    running = bool(call.spec.order_by)
    if not running:
        argument_rows = []
        for index in ordered:
            if call.function.star:
                argument_rows.append((1,))
            else:
                argument_rows.append(tuple(arg.evaluate(rows[index]) for arg in args))
        value = runner.run(argument_rows)
        for index in ordered:
            results[index] = value
        return results
    # Running aggregate: fold incrementally in window order, carrying state
    # across rows (the paper's "stateful iteration" pattern).
    state = aggregate.make_state()
    for index in ordered:
        if call.function.star:
            argument_values: Tuple[Any, ...] = (1,)
        else:
            argument_values = tuple(arg.evaluate(rows[index]) for arg in args)
        if not (aggregate.strict and any(is_null(v) for v in argument_values)):
            state = aggregate.transition(state, *argument_values)
        results[index] = aggregate.finalize(_copy_state(state))
    return results


def _copy_state(state: Any) -> Any:
    """Best-effort copy so finalize cannot mutate the running state."""
    import copy

    try:
        return copy.deepcopy(state)
    except Exception:  # pragma: no cover - exotic states
        return state


def compute_window_values(
    window_calls: Sequence[WindowCall],
    rows: Sequence[RowContext],
    aggregates: Dict[str, AggregateDefinition],
) -> List[Dict[str, Any]]:
    """Compute every window call for every row.

    Returns one dict per row mapping the synthetic key ``__win_<id>`` (the key
    :class:`WindowCall` looks up during evaluation) to the computed value.
    """
    per_row: List[Dict[str, Any]] = [{} for _ in rows]
    for call in window_calls:
        # Partition rows.
        partitions: Dict[Any, List[int]] = {}
        for index, row in enumerate(rows):
            key = tuple(hashable_key(expr.evaluate(row)) for expr in call.spec.partition_by)
            partitions.setdefault(key, []).append(index)
        name = call.function.name.lower()
        for partition in partitions.values():
            ordered = _sort_partition(partition, rows, call.spec.order_by)
            if name in RANKING_FUNCTIONS:
                values = _evaluate_ranking(call, ordered, rows)
            elif name in aggregates:
                values = _evaluate_window_aggregate(call, ordered, rows, aggregates[name])
            else:
                raise ExecutionError(f"unknown window function {name!r}")
            key = f"__win_{id(call)}"
            for index, value in values.items():
                per_row[index][key] = value
    return per_row
