"""Scalar function registry and the built-in SQL function library.

MADlib's micro-programming layer exposes its inner loops as user-defined
scalar functions (Sections 3.2–3.3); the engine therefore needs a uniform way
to register Python callables under SQL names and to invoke them from
expressions.  The built-ins below cover the SQL surface the MADlib-style
methods in this repository rely on: math, string, array and a handful of
PostgreSQL-isms (``coalesce``, ``array_agg`` lives with aggregates,
``generate_series`` is a table function handled by the executor).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import FunctionError
from .types import ANY, BOOLEAN, DOUBLE, DOUBLE_ARRAY, INTEGER, SQLType, TEXT, is_null

__all__ = ["FunctionDefinition", "builtin_functions"]


@dataclass
class FunctionDefinition:
    """A scalar function callable from SQL.

    Attributes
    ----------
    name:
        SQL name (case-insensitive at call sites).
    func:
        The Python callable. Receives already-evaluated argument values.
    return_type:
        Declared SQL return type (``ANY`` for polymorphic functions).
    strict:
        When true (the PostgreSQL default for most builtins) the function is
        not called if any argument is NULL — the result is NULL. MADlib's C++
        abstraction layer provides the same "finiteness checks" service.
    volatile:
        Whether repeated calls with equal arguments may differ (e.g. random()).
        Kept as metadata; the executor does not cache either way.
    """

    name: str
    func: Callable[..., Any]
    return_type: SQLType = ANY
    strict: bool = True
    volatile: bool = False

    def __call__(self, *args: Any) -> Any:
        if self.strict and any(is_null(arg) for arg in args):
            return None
        try:
            return self.func(*args)
        except FunctionError:
            raise
        except Exception as exc:  # pragma: no cover - defensive re-wrap
            raise FunctionError(f"function {self.name!r} failed: {exc}") from exc


# ---------------------------------------------------------------------------
# Built-in function implementations
# ---------------------------------------------------------------------------


def _as_array(value: Any) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


def _array_dot(left: Any, right: Any) -> float:
    return float(np.dot(_as_array(left), _as_array(right)))


def _array_add(left: Any, right: Any) -> np.ndarray:
    return _as_array(left) + _as_array(right)


def _array_sub(left: Any, right: Any) -> np.ndarray:
    return _as_array(left) - _as_array(right)


def _array_scalar_mult(array: Any, scalar: Any) -> np.ndarray:
    return _as_array(array) * float(scalar)


def _array_squared_distance(left: Any, right: Any) -> float:
    diff = _as_array(left) - _as_array(right)
    return float(np.dot(diff, diff))


def _closest_column(matrix: Any, vector: Any) -> int:
    """Index of the matrix column closest (in Euclidean distance) to ``vector``.

    This is the ``closest_column(a, b)`` UDF the paper uses for the explicit
    k-means point-to-centroid assignment (Section 4.3.1).  The matrix is
    stored column-major as a 2-D double precision array.
    """
    m = np.asarray(matrix, dtype=np.float64)
    v = np.asarray(vector, dtype=np.float64)
    if m.ndim == 1:
        m = m.reshape(len(v), -1)
    diffs = m - v[:, None]
    return int(np.argmin(np.einsum("ij,ij->j", diffs, diffs)))


def _regexp_matches(text: str, pattern: str) -> bool:
    return re.search(pattern, text) is not None


def _string_to_array(text: str, delimiter: str) -> List[str]:
    return text.split(delimiter)


def _array_upper(value: Any, dimension: int) -> int:
    arr = np.asarray(value)
    if dimension < 1 or dimension > arr.ndim:
        raise FunctionError(f"array_upper: dimension {dimension} out of range")
    return int(arr.shape[dimension - 1])


def _madlib_version() -> str:
    return "repro-madlib 0.3 (python engine)"


def builtin_functions() -> List[FunctionDefinition]:
    """The function definitions registered in every new database."""
    defs: List[FunctionDefinition] = [
        # math ---------------------------------------------------------------
        FunctionDefinition("abs", abs, DOUBLE),
        FunctionDefinition("sqrt", math.sqrt, DOUBLE),
        FunctionDefinition("exp", math.exp, DOUBLE),
        FunctionDefinition("ln", math.log, DOUBLE),
        FunctionDefinition("log", math.log10, DOUBLE),
        FunctionDefinition("power", lambda a, b: float(a) ** float(b), DOUBLE),
        FunctionDefinition("floor", lambda x: float(math.floor(x)), DOUBLE),
        FunctionDefinition("ceil", lambda x: float(math.ceil(x)), DOUBLE),
        FunctionDefinition("ceiling", lambda x: float(math.ceil(x)), DOUBLE),
        FunctionDefinition("round", lambda x, digits=0: round(float(x), int(digits)), DOUBLE),
        FunctionDefinition("sign", lambda x: float(np.sign(x)), DOUBLE),
        FunctionDefinition("greatest", lambda *xs: max(xs), ANY),
        FunctionDefinition("least", lambda *xs: min(xs), ANY),
        FunctionDefinition("mod", lambda a, b: a % b, INTEGER),
        FunctionDefinition("random", np.random.random, DOUBLE, strict=False, volatile=True),
        # string --------------------------------------------------------------
        FunctionDefinition("lower", lambda s: s.lower(), TEXT),
        FunctionDefinition("upper", lambda s: s.upper(), TEXT),
        FunctionDefinition("length", lambda s: len(s), INTEGER),
        FunctionDefinition("substr", lambda s, start, count=None: (
            s[int(start) - 1:] if count is None else s[int(start) - 1:int(start) - 1 + int(count)]
        ), TEXT),
        FunctionDefinition("trim", lambda s: s.strip(), TEXT),
        FunctionDefinition("btrim", lambda s: s.strip(), TEXT),
        FunctionDefinition("replace", lambda s, old, new: s.replace(old, new), TEXT),
        FunctionDefinition("concat", lambda *parts: "".join(str(p) for p in parts if p is not None),
                           TEXT, strict=False),
        FunctionDefinition("regexp_matches", _regexp_matches, BOOLEAN),
        FunctionDefinition("string_to_array", _string_to_array, ANY),
        FunctionDefinition("position", lambda needle, haystack: haystack.find(needle) + 1, INTEGER),
        # null handling ---------------------------------------------------------
        FunctionDefinition(
            "coalesce",
            lambda *xs: next((x for x in xs if not is_null(x)), None),
            ANY,
            strict=False,
        ),
        FunctionDefinition(
            "nullif", lambda a, b: None if a == b else a, ANY, strict=False
        ),
        # arrays (the MADlib array-operations support module surface) -----------
        FunctionDefinition("array_dot", _array_dot, DOUBLE),
        FunctionDefinition("array_add", _array_add, DOUBLE_ARRAY),
        FunctionDefinition("array_sub", _array_sub, DOUBLE_ARRAY),
        FunctionDefinition("array_scalar_mult", _array_scalar_mult, DOUBLE_ARRAY),
        FunctionDefinition("array_squared_distance", _array_squared_distance, DOUBLE),
        FunctionDefinition("array_upper", _array_upper, INTEGER),
        FunctionDefinition("array_length", lambda a, dim=1: _array_upper(a, dim), INTEGER),
        FunctionDefinition("cardinality", lambda a: int(np.asarray(a).size), INTEGER),
        FunctionDefinition("closest_column", _closest_column, INTEGER),
        FunctionDefinition("array_to_string", lambda a, sep: sep.join(str(v) for v in np.asarray(a).tolist()), TEXT),
        # misc -------------------------------------------------------------------
        FunctionDefinition("madlib_version", _madlib_version, TEXT, strict=False),
    ]
    return defs
