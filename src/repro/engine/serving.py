"""The concurrent serving layer: a TCP front door for a :class:`Database`.

"Architecture of a Database System" (Hellerstein, Stonebraker & Hamilton)
opens with the components every DBMS grows around its query processor: a
process/session model, admission control, prepared statements and a shared
plan cache.  This module is that front door for our engine — the piece that
turns the single-caller in-process :class:`~repro.engine.database.Database`
into a server many clients can hit at once.

Wire protocol (see ``docs/serving.md`` for the full specification)
------------------------------------------------------------------

Length-prefixed JSON frames: every message is a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON.  Requests are objects with
an ``op`` field:

``connect``                     → ``{ok, session, version}``
``query   {sql, params?}``      → ``{ok, columns, rows, rowcount}``
``prepare {sql}``               → ``{ok, handle, params}``
``execute {handle, params?}``   → ``{ok, columns, rows, rowcount}``
``stats``                       → ``{ok, server, plan_cache}``
``close``                       → ``{ok}`` and the connection closes

Failures are ``{ok: false, error: {code, message}}`` with a typed ``code``
(``SYNTAX``, ``CATALOG``, ``BUSY``, ``TIMEOUT``, ``PROTOCOL``, ...); the
session survives every error except a broken frame boundary (truncated or
oversized frame), which closes the connection.

Concurrency model
-----------------

A coarse FIFO-fair readers/writer lock guards the database: any number of
read statements (SELECT, plain EXPLAIN) run concurrently on a thread pool,
while a write statement (DML, DDL, ANALYZE) excludes everything else.  Read
statements additionally capture every table's ``_data_version`` before and
after execution and raise ``SNAPSHOT_VIOLATION`` if the two differ — the
lock makes that impossible by construction, so the validation is a live
assertion that the isolation actually holds (the concurrency stress suite
leans on it).

Admission control is a bounded counter: at most ``max_concurrent`` admitted
statements run at once and at most ``max_queue`` more may wait; past that
the server *sheds* the statement with a typed ``BUSY`` error (carrying a
``retry_after_ms`` hint sized to the backlog) instead of letting latency
grow without bound.  Each statement also gets a ``statement_timeout``; on
expiry the client receives ``TIMEOUT`` while the abandoned thread keeps the
lock until the statement actually finishes (a Python thread cannot be
killed), so isolation is never compromised.

Resilience (see ``docs/robustness.md``)
---------------------------------------

A client that disconnects mid-statement no longer strands its batch: the
connection loop races socket reads against the in-flight batch, and EOF
cancels the *await* (the statement thread runs to completion and the
readers/writer lock is released by its done-callback, exactly as on
timeout — the lock can never leak to a vanished client).  ``stop()``
performs a graceful drain — stop accepting, finish in-flight batches,
bounded by ``drain_timeout`` — and reports whether the drain completed.
A :class:`~repro.engine.faults.FaultInjector` can be wired to the
``serving.send`` site to truncate response frames mid-write, which is how
the chaos harness (``tests/serving/test_chaos.py``) creates in-doubt
acknowledgements.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from collections import deque
from concurrent.futures import Future as ThreadFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import __version__
from ..errors import (
    CatalogError,
    ExecutionError,
    FunctionError,
    MethodError,
    ReproError,
    SQLSyntaxError,
    TypeMismatchError,
    ValidationError,
)
from .database import Database, PreparedStatement
from .faults import WIRE_TRUNCATE, FaultInjector
from .parser import parse_statement
from .parser.lexer import tokenize
from .plancache import PlanCache, statement_is_read_only
from .result import ResultSet

__all__ = [
    "ServingError",
    "ProtocolError",
    "ServerBusyError",
    "StatementTimeoutError",
    "SnapshotViolationError",
    "RemoteError",
    "ReadWriteLock",
    "ServerStats",
    "Session",
    "DatabaseServer",
    "ServerThread",
    "ServingClient",
    "error_code_for",
]

_HEADER = struct.Struct(">I")

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: (``stop(drain_timeout=None)`` means wait forever).
_UNSET: Any = object()

#: Default cap on one frame's JSON body.  Large enough for bulk INSERTs and
#: wide result sets, small enough that a garbage length prefix cannot make
#: the server try to buffer gigabytes.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for serving-layer failures; ``code`` goes over the wire."""

    code = "SERVING"


class ProtocolError(ServingError):
    """The client sent something that is not a well-formed request.

    ``fatal`` marks violations after which the frame boundary cannot be
    trusted (oversized declared length) — the server answers and then closes
    the connection.
    """

    code = "PROTOCOL"

    def __init__(self, message: str, *, fatal: bool = False) -> None:
        super().__init__(message)
        self.fatal = fatal


class ServerBusyError(ServingError):
    """Admission control shed the statement; retry later.

    ``retry_after_ms`` is a backoff hint sized to the current backlog — it
    rides along in the error frame so well-behaved clients can pace their
    retries instead of hammering an overloaded server.
    """

    code = "BUSY"

    def __init__(self, message: str, *, retry_after_ms: Optional[int] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class StatementTimeoutError(ServingError):
    """The statement exceeded the per-statement timeout."""

    code = "TIMEOUT"


class SnapshotViolationError(ServingError):
    """A read statement observed a table version change mid-execution."""

    code = "SNAPSHOT_VIOLATION"


class RemoteError(ReproError):
    """Client-side mirror of a typed error frame received from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


#: Engine exception → wire code, most specific class first.
_ERROR_CODES: Tuple[Tuple[type, str], ...] = (
    (ServingError, ""),  # placeholder; serving errors carry their own code
    (SQLSyntaxError, "SYNTAX"),
    (CatalogError, "CATALOG"),
    (TypeMismatchError, "TYPE_MISMATCH"),
    (FunctionError, "FUNCTION"),
    (ExecutionError, "EXECUTION"),
    (ValidationError, "VALIDATION"),
    (MethodError, "METHOD"),
    (ReproError, "ENGINE"),
)


def error_code_for(exc: BaseException) -> str:
    """The wire error code for an exception (``INTERNAL`` for foreign ones)."""
    if isinstance(exc, ServingError):
        return exc.code
    for klass, code in _ERROR_CODES[1:]:
        if isinstance(exc, klass):
            return code
    return "INTERNAL"


# ---------------------------------------------------------------------------
# FIFO-fair readers/writer lock
# ---------------------------------------------------------------------------


class ReadWriteLock:
    """An asyncio readers/writer lock with FIFO fairness.

    Readers share; a writer excludes everyone.  Grants happen in arrival
    order — a waiting writer blocks later readers (no writer starvation),
    and consecutive queued readers are granted as one batch.  ``release_*``
    are plain callables (not coroutines) so a worker thread's done-callback
    can invoke them via ``loop.call_soon_threadsafe``.
    """

    def __init__(self) -> None:
        self._active_readers = 0
        self._writer_active = False
        #: (kind, future) in arrival order; dead (cancelled) futures are
        #: skipped at wake time.
        self._waiters: Deque[Tuple[str, asyncio.Future]] = deque()

    # -- introspection ------------------------------------------------------

    @property
    def active_readers(self) -> int:
        return self._active_readers

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    @property
    def waiters(self) -> int:
        """Queued (not yet granted, not yet reaped-cancelled) waiters."""
        return sum(1 for _, future in self._waiters if not future.done())

    @property
    def idle(self) -> bool:
        """No holder and nobody queued — the leak-freedom invariant."""
        return (
            not self._writer_active
            and self._active_readers == 0
            and self.waiters == 0
        )

    # -- acquire ------------------------------------------------------------

    async def acquire_read(self) -> None:
        if not self._writer_active and not self._waiters:
            self._active_readers += 1
            return
        await self._wait("r")

    async def acquire_write(self) -> None:
        if not self._writer_active and self._active_readers == 0 and not self._waiters:
            self._writer_active = True
            return
        await self._wait("w")

    async def _wait(self, kind: str) -> None:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._waiters.append((kind, future))
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Granted and cancelled in the same tick: hand it back.
                if kind == "r":
                    self.release_read()
                else:
                    self.release_write()
            else:
                try:
                    self._waiters.remove((kind, future))
                except ValueError:
                    pass
                self._wake()
            raise

    # -- release ------------------------------------------------------------

    def release_read(self) -> None:
        if self._active_readers <= 0:
            raise RuntimeError("release_read without a matching acquire")
        self._active_readers -= 1
        if self._active_readers == 0:
            self._wake()

    def release_write(self) -> None:
        if not self._writer_active:
            raise RuntimeError("release_write without a matching acquire")
        self._writer_active = False
        self._wake()

    def _wake(self) -> None:
        while self._waiters:
            kind, future = self._waiters[0]
            if future.done():  # cancelled while queued
                self._waiters.popleft()
                continue
            if kind == "w":
                if self._active_readers == 0 and not self._writer_active:
                    self._waiters.popleft()
                    self._writer_active = True
                    future.set_result(None)
                return
            if self._writer_active:
                return
            # Grant this reader and keep going: consecutive readers batch.
            self._waiters.popleft()
            self._active_readers += 1
            future.set_result(None)


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class Session:
    """Per-connection state: an id and the prepared-statement handles."""

    def __init__(self, session_id: int) -> None:
        self.id = session_id
        self.statements: Dict[str, Tuple[PreparedStatement, bool]] = {}
        self._next_handle = 0

    def add_statement(self, prepared: PreparedStatement, read_only: bool) -> str:
        self._next_handle += 1
        handle = f"s{self._next_handle}"
        self.statements[handle] = (prepared, read_only)
        return handle

    def get_statement(self, handle: str) -> Tuple[PreparedStatement, bool]:
        try:
            return self.statements[handle]
        except KeyError:
            raise ProtocolError(f"unknown statement handle {handle!r}") from None


def _classify_sql(sql: str) -> str:
    """``"read"`` or ``"write"`` for lock selection, before any parse.

    SELECT (including UNION chains) is a read; EXPLAIN is a read unless it
    is EXPLAIN ANALYZE of a write (that actually runs its target), which
    needs the full parse to see.  Anything unrecognized is conservatively a
    write — the statement still executes correctly, just without reader
    concurrency.
    """
    tokens = tokenize(sql)
    if not tokens or tokens[0].kind != "keyword":
        return "write"
    first = tokens[0].value.lower()
    if first == "select":
        return "read"
    if first == "explain":
        return "read" if statement_is_read_only(parse_statement(sql)) else "write"
    return "write"


def _prepared_is_read_only(prepared: PreparedStatement) -> bool:
    if prepared.fingerprint is not None:
        return prepared.fingerprint.split(" ", 1)[0] == "select"
    return statement_is_read_only(prepared._statement)


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


def _result_payload(result: ResultSet) -> Dict[str, Any]:
    return {
        "ok": True,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "rowcount": result.rowcount,
    }


def _error_payload(exc: BaseException) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": error_code_for(exc), "message": str(exc)}
    retry_after = getattr(exc, "retry_after_ms", None)
    if retry_after is not None:
        error["retry_after_ms"] = retry_after
    return {"ok": False, "error": error}


@dataclass
class ServerStats:
    """Monitoring counters for one :class:`DatabaseServer` (``stats`` op).

    ``statements_cancelled`` counts in-flight batches whose awaiting client
    disconnected (the statement thread still finishes and releases the lock;
    only the response is abandoned).  ``client_disconnects`` counts
    connections that ended without a clean ``close`` op.
    """

    statements_served: int = 0
    statements_shed: int = 0
    statements_timed_out: int = 0
    statements_cancelled: int = 0
    client_disconnects: int = 0
    truncated_sends: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "served": self.statements_served,
            "shed": self.statements_shed,
            "timed_out": self.statements_timed_out,
            "cancelled": self.statements_cancelled,
            "disconnects": self.client_disconnects,
            "truncated_sends": self.truncated_sends,
        }


class DatabaseServer:
    """Serve one :class:`Database` over TCP to many concurrent clients.

    Parameters
    ----------
    database:
        The engine to serve.  If it has no plan cache, one of capacity
        ``plan_cache`` is installed (pass ``plan_cache=0`` to serve fully
        uncached — the benchmark's baseline mode).
    host, port:
        Listen address; port ``0`` picks a free port (``self.port`` has the
        real one after :meth:`start`).
    max_concurrent:
        Worker-thread count = maximum statements executing at once.
    max_queue:
        Statements allowed to wait beyond ``max_concurrent`` before
        admission control sheds new arrivals with ``BUSY``.
    statement_timeout:
        Seconds before an admitted statement fails with ``TIMEOUT``.
    drain_timeout:
        Default bound (seconds) on :meth:`stop`'s graceful drain; ``None``
        waits for in-flight work indefinitely (the pre-chaos behaviour).
    faults:
        Optional :class:`~repro.engine.faults.FaultInjector` probed at the
        ``serving.send`` site (response truncation).  ``None`` in
        production: the cost is one attribute check per batch.
    """

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_concurrent: int = 8,
        max_queue: int = 16,
        statement_timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        plan_cache: int = 256,
        drain_timeout: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValidationError("max_concurrent must be at least 1")
        if max_queue < 0:
            raise ValidationError("max_queue must not be negative")
        self.database = database
        if database.plan_cache is None and plan_cache:
            database.plan_cache = PlanCache(plan_cache)
            database.plan_cache_size = plan_cache
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.statement_timeout = statement_timeout
        self.max_frame_bytes = max_frame_bytes
        self.drain_timeout = drain_timeout
        self.faults = faults
        self._lock = ReadWriteLock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[int, Session] = {}
        self._connections: set = set()
        self._next_session = 0
        self._inflight = 0
        self._active_batches = 0
        self._stopping = False
        # Monitoring counters (exposed by the ``stats`` op).
        self.stats = ServerStats()

    # Back-compat aliases for the pre-ServerStats counter attributes.
    @property
    def statements_served(self) -> int:
        return self.stats.statements_served

    @property
    def statements_shed(self) -> int:
        return self.stats.statements_shed

    @property
    def statements_timed_out(self) -> int:
        return self.stats.statements_timed_out

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(
        self,
        *,
        close_database: bool = False,
        drain_timeout: Optional[float] = _UNSET,
    ) -> bool:
        """Graceful drain and stop; returns whether the drain completed.

        Phases: (1) stop accepting — the listener closes and admission
        control sheds new statements with BUSY; (2) drain — wait for every
        in-flight batch to finish and flush its responses, bounded by
        ``drain_timeout`` (the constructor default if not given, ``None`` =
        unbounded); (3) disconnect survivors and shut the thread pool down.
        When the deadline expires with work still running the pool is shut
        down without waiting (a Python thread cannot be killed) and
        ``False`` is returned so callers — e.g. the ``repro.serve`` CLI —
        can exit nonzero.  Only a completed drain may close the database:
        worker-pool teardown must never race a live statement.
        """
        if drain_timeout is _UNSET:
            drain_timeout = self.drain_timeout
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = await self._drain(drain_timeout)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        # Blocks until every submitted statement thread has finished — unless
        # the drain already gave up on a wedged statement.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._pool.shutdown(wait=drained)
        )
        if close_database and drained:
            self.database.close()
        return drained

    async def _drain(self, timeout: Optional[float]) -> bool:
        """Wait for in-flight batches and statements to reach zero."""
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while self._active_batches or self._inflight:
            if deadline is not None and loop.time() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self._next_session += 1
        session = Session(self._next_session)
        self._sessions[session.id] = session
        buffer = bytearray()
        recv: Optional[asyncio.Task] = None
        batch: Optional[asyncio.Task] = None
        clean_close = False
        try:
            while True:
                items = self._extract_frames(buffer)
                if not items:
                    if recv is None:
                        recv = asyncio.ensure_future(reader.read(65536))
                    chunk = await recv
                    recv = None
                    if not chunk:
                        break  # client disconnected (possibly mid-frame)
                    buffer.extend(chunk)
                    continue
                # Race the batch against further socket reads so a client
                # that vanishes mid-statement cancels the *await* instead of
                # stranding the connection until the statement finishes.
                # Data that arrives while the batch runs (a pipelining
                # client) is buffered for the next iteration.
                batch = asyncio.ensure_future(
                    self._process_batch(session, items, writer)
                )
                disconnected = False
                while not batch.done():
                    if recv is None:
                        recv = asyncio.ensure_future(reader.read(65536))
                    await asyncio.wait(
                        {batch, recv}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if not recv.done():
                        continue
                    try:
                        chunk = recv.result()
                    except (ConnectionError, OSError):
                        chunk = b""
                    recv = None
                    if chunk:
                        buffer.extend(chunk)
                    elif not batch.done():
                        # EOF with the batch still in flight: abandon the
                        # response.  The statement thread runs to completion
                        # and its done-callback releases the lock.
                        batch.cancel()
                        try:
                            await batch
                        except asyncio.CancelledError:
                            pass
                        batch = None
                        self.stats.statements_cancelled += 1
                        disconnected = True
                        break
                if disconnected:
                    break
                close = batch.result()
                batch = None
                if close:
                    clean_close = True
                    break
        except asyncio.CancelledError:
            pass  # server shutdown
        except ConnectionError:
            pass  # mid-query disconnect: results are discarded
        finally:
            if not clean_close:
                self.stats.client_disconnects += 1
            for pending in (recv, batch):
                if pending is not None and not pending.done():
                    pending.cancel()
                    try:
                        await pending
                    except (asyncio.CancelledError, ConnectionError, OSError):
                        pass
            self._sessions.pop(session.id, None)
            self._connections.discard(task)
            _shutdown_transport(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    def _extract_frames(self, buffer: bytearray) -> List[Any]:
        """Parse every complete frame out of the receive buffer.

        Pipelined clients land many frames per socket read; draining them
        all here is what lets :meth:`_process_batch` amortize the
        thread-pool hop across a whole batch.  Returns parsed request dicts
        interleaved (in arrival order) with :class:`ProtocolError` markers
        for frames whose body is broken; an oversized declared length is a
        *fatal* marker — the boundary is gone, nothing after it can be
        trusted.
        """
        items: List[Any] = []
        while len(buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack_from(buffer)
            if length > self.max_frame_bytes:
                items.append(
                    ProtocolError(
                        f"frame of {length} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit",
                        fatal=True,
                    )
                )
                buffer.clear()
                break
            if len(buffer) < _HEADER.size + length:
                break
            body = bytes(buffer[_HEADER.size : _HEADER.size + length])
            del buffer[: _HEADER.size + length]
            try:
                request = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                items.append(ProtocolError(f"malformed JSON frame: {exc}"))
                continue
            if not isinstance(request, dict):
                items.append(ProtocolError("request frame must be a JSON object"))
                continue
            items.append(request)
        return items

    # -- dispatch -----------------------------------------------------------

    async def _process_batch(
        self, session: Session, items: List[Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one batch of requests, in order; returns ``close?``.

        Consecutive *read* statements are executed as a single admitted unit
        on one worker-thread submission — the pipelining fast path.  Writes,
        control ops, and protocol errors act as barriers: queued reads flush
        first so every response lands in request order.
        """
        self._active_batches += 1
        try:
            return await self._process_batch_inner(session, items, writer)
        finally:
            self._active_batches -= 1

    async def _process_batch_inner(
        self, session: Session, items: List[Any], writer: asyncio.StreamWriter
    ) -> bool:
        frames: List[bytes] = []
        close = False
        pending_reads: List[Any] = []

        async def flush_reads() -> None:
            if pending_reads:
                batch = list(pending_reads)
                del pending_reads[:]
                frames.extend(await self._run_read_batch(batch))

        for item in items:
            if isinstance(item, ProtocolError):
                await flush_reads()
                frames.append(json_frame(_error_payload(item)))
                if item.fatal:
                    close = True
                    break
                continue
            try:
                op = item.get("op")
                if op in ("query", "execute"):
                    kind, run = self._statement_thunk(session, item)
                    if kind == "read":
                        pending_reads.append(run)
                        continue
                    await flush_reads()
                    frames.append(await self._admit("write", run))
                    continue
                await flush_reads()
                frame, close = await self._dispatch_control(session, item)
                frames.append(frame)
                if close:
                    break
            except BaseException as exc:
                if isinstance(
                    exc, (asyncio.CancelledError, KeyboardInterrupt, SystemExit)
                ):
                    raise
                self._count_error(exc)
                await flush_reads()
                frames.append(json_frame(_error_payload(exc)))
        await flush_reads()
        blob = b"".join(frames)
        if self.faults is not None and blob:
            fault = self.faults.probe("serving.send")
            if fault is not None and fault.kind == WIRE_TRUNCATE:
                # Chaos: lose the tail of the response batch.  The work is
                # already committed — the client sees a broken frame and must
                # treat unacknowledged statements as in-doubt.
                self.stats.truncated_sends += 1
                writer.write(blob[: max(1, len(blob) // 2)])
                await writer.drain()
                return True
        writer.write(blob)
        await writer.drain()
        return close

    def _statement_thunk(self, session: Session, request: Dict[str, Any]):
        """``(kind, thunk)`` for a query/execute request; the thunk runs on
        a worker thread and returns the response frame."""
        if request["op"] == "query":
            sql = self._require_sql(request)
            params = self._params_of(request)
            # Classification is a token scan (a parse only for EXPLAIN) —
            # cheap enough to run inline, and it must not queue behind the
            # worker pool or a slow statement would stall admission itself.
            try:
                kind = _classify_sql(sql)
            except ReproError:
                kind = "write"  # let the statement fail with its real error
            return kind, lambda: self._run_statement(
                kind, lambda: self.database.execute(sql, params)
            )
        handle = request.get("handle")
        if not isinstance(handle, str):
            raise ProtocolError("request needs a 'handle' string")
        prepared, read_only = session.get_statement(handle)
        params = self._params_of(request)
        kind = "read" if read_only else "write"
        return kind, lambda: self._run_statement(kind, lambda: prepared.execute(params))

    async def _run_read_batch(self, thunks: List[Any]) -> List[bytes]:
        """Run queued read thunks as one admitted worker-thread unit.

        Engine errors are isolated per statement (each becomes its own error
        frame); admission failures — BUSY, TIMEOUT — apply to the whole
        batch, one identical error frame per statement so the response count
        always matches the request count.
        """

        def run_all() -> List[bytes]:
            return [self._safe_frame(thunk) for thunk in thunks]

        try:
            return await self._admit("read", run_all)
        except (ServerBusyError, StatementTimeoutError) as exc:
            self._count_error(exc)
            return [json_frame(_error_payload(exc))] * len(thunks)

    def _safe_frame(self, thunk) -> bytes:
        try:
            return thunk()
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return json_frame(_error_payload(exc))

    def _count_error(self, exc: BaseException) -> None:
        if isinstance(exc, StatementTimeoutError):
            self.stats.statements_timed_out += 1
        if isinstance(exc, ServerBusyError):
            self.stats.statements_shed += 1

    async def _dispatch_control(
        self, session: Session, request: Dict[str, Any]
    ) -> Tuple[bytes, bool]:
        """Non-statement ops: connect, prepare, stats, close, unknown."""
        op = request.get("op")
        if op == "connect":
            return json_frame(
                {
                    "ok": True,
                    "session": session.id,
                    "version": __version__,
                    "max_frame_bytes": self.max_frame_bytes,
                }
            ), False
        if op == "prepare":
            return await self._op_prepare(session, request), False
        if op == "stats":
            return json_frame(self._op_stats()), False
        if op == "close":
            return json_frame({"ok": True}), True
        raise ProtocolError(f"unknown op {op!r}")

    def _require_sql(self, request: Dict[str, Any]) -> str:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("request needs a non-empty 'sql' string")
        return sql

    @staticmethod
    def _params_of(request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        params = request.get("params")
        if params is None:
            return None
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        return params

    async def _op_prepare(self, session: Session, request: Dict[str, Any]) -> bytes:
        sql = self._require_sql(request)
        loop = asyncio.get_running_loop()

        def prepare() -> bytes:
            prepared = self.database.prepare(sql)
            read_only = _prepared_is_read_only(prepared)
            handle = session.add_statement(prepared, read_only)
            return json_frame(
                {
                    "ok": True,
                    "handle": handle,
                    "params": prepared.parameter_names,
                    "read_only": read_only,
                }
            )

        # PREPARE parses (and may touch the shared plan cache) but never
        # mutates table data; the cache has its own lock.
        return await loop.run_in_executor(self._pool, prepare)

    def _retry_after_ms(self) -> int:
        """Backoff hint for a shed statement, sized to the backlog.

        Rough model: each queued statement ahead of the retrier takes some
        slice of a worker; 20 ms per backlogged statement, clamped to
        [25 ms, 2 s], is enough to spread a thundering herd without making a
        briefly-saturated server look down.
        """
        backlog = max(0, self._inflight - self.max_concurrent)
        return max(25, min(2000, 20 * (backlog + 1)))

    def _op_stats(self) -> Dict[str, Any]:
        cache = self.database.plan_cache
        server = {
            "sessions": len(self._sessions),
            "inflight": self._inflight,
            "active_batches": self._active_batches,
        }
        server.update(self.stats.as_dict())
        worker_pool = getattr(self.database, "_worker_pool", None)
        return {
            "ok": True,
            "server": server,
            "lock": {
                "active_readers": self._lock.active_readers,
                "writer_active": self._lock.writer_active,
                "waiters": self._lock.waiters,
            },
            "worker_pool": None if worker_pool is None else worker_pool.stats(),
            "plan_cache": None if cache is None else cache.stats(),
            "matviews": self.database.catalog.matviews(),
        }

    # -- statement execution ------------------------------------------------

    def _run_statement(self, kind: str, execute) -> bytes:
        """Worker-thread body: run one statement, serialize the response.

        Read statements capture every table's data version before and after
        and fail with ``SNAPSHOT_VIOLATION`` on drift — under the
        readers/writer lock this can never fire; it exists to *prove* that.
        JSON serialization happens here too, off the event loop.
        """
        catalog = self.database.catalog
        if kind == "read":
            before = self._version_snapshot(catalog)
            result = execute()
            after = self._version_snapshot(catalog)
            if before != after:
                raise SnapshotViolationError(
                    "table versions changed during a read statement: "
                    f"{sorted(set(before.items()) ^ set(after.items()))[:4]}"
                )
        else:
            result = execute()
        self.stats.statements_served += 1
        return json_frame(_result_payload(result))

    @staticmethod
    def _version_snapshot(catalog) -> Dict[str, Any]:
        snapshot: Dict[str, Any] = {
            name: catalog.get_table(name)._data_version
            for name in catalog.table_names()
        }
        for name in catalog.matview_names():
            # Keyed off the view's *source* tables, not its content version:
            # a read of a stale view lazily recomputes it (bumping the
            # content version mid-read), which is not concurrent drift.
            snapshot[f"matview:{name}"] = catalog.get_matview(name).snapshot_token(
                catalog
            )
        return snapshot

    async def _admit(self, kind: str, run) -> bytes:
        """Admission control + lock + timeout around a worker-thread body."""
        if self._stopping:
            raise ServerBusyError("server is shutting down")
        if self._inflight >= self.max_concurrent + self.max_queue:
            raise ServerBusyError(
                f"server at capacity ({self._inflight} statements in flight)",
                retry_after_ms=self._retry_after_ms(),
            )
        self._inflight += 1
        try:
            if kind == "read":
                await self._lock.acquire_read()
                release = self._lock.release_read
            else:
                await self._lock.acquire_write()
                release = self._lock.release_write
            loop = asyncio.get_running_loop()
            try:
                thread_future: ThreadFuture = self._pool.submit(run)
            except RuntimeError:
                # Pool already shut down (stop raced a late batch).  Without
                # a thread future there is no done-callback, so release here
                # or the lock leaks forever.
                release()
                raise ServerBusyError("server is shutting down") from None

            def on_done(_: ThreadFuture) -> None:
                # The lock is held until the statement thread truly finishes,
                # even when the awaiting client timed out or disconnected.
                try:
                    loop.call_soon_threadsafe(release)
                except RuntimeError:
                    release()  # loop already closed (interpreter teardown)

            thread_future.add_done_callback(on_done)
            wrapped = asyncio.wrap_future(thread_future, loop=loop)
            try:
                return await asyncio.wait_for(
                    asyncio.shield(wrapped), self.statement_timeout
                )
            except asyncio.TimeoutError:
                thread_future.cancel()  # no-op if already running
                wrapped.add_done_callback(_swallow_exception)
                raise StatementTimeoutError(
                    f"statement exceeded the {self.statement_timeout}s timeout"
                ) from None
        finally:
            self._inflight -= 1


def _shutdown_transport(writer: asyncio.StreamWriter) -> None:
    """Send FIN explicitly before closing a connection's transport.

    ``transport.close()`` only closes this process's file descriptor.  The
    parallel worker pool forks, and forked workers inherit every open fd —
    including accepted client sockets — so the kernel keeps the connection
    alive after our close and the client hangs on read until its own
    timeout instead of seeing EOF.  ``socket.shutdown`` acts on the
    *connection*, not the fd refcount: the FIN goes out no matter who else
    holds a copy.  Skipped when the transport still buffers unflushed
    response bytes (shutdown would drop them); ``close()`` flushes first
    in that rare case.
    """
    transport = writer.transport
    if transport.is_closing() or transport.get_write_buffer_size():
        return
    sock = writer.get_extra_info("socket")
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_WR)
    except OSError:
        pass


def _swallow_exception(future: "asyncio.Future[Any]") -> None:
    if not future.cancelled():
        future.exception()


def json_frame(payload: Dict[str, Any]) -> bytes:
    """Encode one payload as a length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":"), default=str).encode("utf-8")
    return _HEADER.pack(len(body)) + body


# ---------------------------------------------------------------------------
# Background-thread server (tests, benchmarks, embedding)
# ---------------------------------------------------------------------------


class ServerThread:
    """Run a :class:`DatabaseServer` on a dedicated event-loop thread.

    ``start()`` returns once the port is bound; ``stop()`` drains and joins.
    Usable as a context manager.
    """

    def __init__(self, database: Database, **server_kwargs: Any) -> None:
        self.server = DatabaseServer(database, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            loop.close()

    def stop(
        self,
        *,
        close_database: bool = False,
        drain_timeout: Optional[float] = _UNSET,
    ) -> bool:
        loop = self._loop
        if loop is None or not loop.is_running():
            return True
        done = threading.Event()
        outcome = {"drained": True}

        async def drain() -> None:
            try:
                outcome["drained"] = await self.server.stop(
                    close_database=close_database, drain_timeout=drain_timeout
                )
            finally:
                done.set()
                loop.stop()

        asyncio.run_coroutine_threadsafe(drain(), loop)
        done.wait()
        if self._thread is not None:
            self._thread.join()
        self._loop = None
        return outcome["drained"]

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Synchronous client
# ---------------------------------------------------------------------------


class ServingClient:
    """Blocking-socket client for the wire protocol (tests, benchmarks, CLI).

    One request/response per call, plus :meth:`pipeline` which writes a batch
    of requests before reading the batch of responses — amortizing network
    round trips exactly the way a DB-API driver's ``executemany`` does.
    """

    def __init__(self, host: str, port: int, *, timeout: Optional[float] = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self.session: Optional[int] = None
        reply = self.request({"op": "connect"})
        self.session = reply.get("session")

    # -- framing ------------------------------------------------------------

    def _write_frame(self, payload: Dict[str, Any]) -> None:
        self._file.write(json_frame(payload))

    def _read_frame(self) -> Dict[str, Any]:
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ConnectionError("server closed the connection")
        (length,) = _HEADER.unpack(header)
        body = self._file.read(length)
        if len(body) < length:
            raise ConnectionError("truncated frame from server")
        return json.loads(body.decode("utf-8"))

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and return its (checked) response."""
        self._write_frame(payload)
        self._file.flush()
        return self._check(self._read_frame())

    def pipeline(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Send all requests, then read all responses (errors returned, not raised)."""
        for payload in payloads:
            self._write_frame(payload)
        self._file.flush()
        return [self._read_frame() for _ in payloads]

    @staticmethod
    def _check(reply: Dict[str, Any]) -> Dict[str, Any]:
        if not reply.get("ok", False):
            error = reply.get("error") or {}
            raise RemoteError(
                error.get("code", "INTERNAL"), error.get("message", "unknown error")
            )
        return reply

    # -- operations ---------------------------------------------------------

    def query(self, sql: str, params: Optional[Dict[str, Any]] = None) -> "RemoteResult":
        payload: Dict[str, Any] = {"op": "query", "sql": sql}
        if params is not None:
            payload["params"] = params
        return RemoteResult(self.request(payload))

    def prepare(self, sql: str) -> str:
        return self.request({"op": "prepare", "sql": sql})["handle"]

    def execute(self, handle: str, params: Optional[Dict[str, Any]] = None) -> "RemoteResult":
        payload: Dict[str, Any] = {"op": "execute", "handle": handle}
        if params is not None:
            payload["params"] = params
        return RemoteResult(self.request(payload))

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def close(self) -> None:
        try:
            self._write_frame({"op": "close"})
            self._file.flush()
            self._read_frame()
        except (OSError, ConnectionError):
            pass
        finally:
            try:
                self._file.close()
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteResult:
    """Client-side view of a result frame (rows re-tupled like a ResultSet)."""

    def __init__(self, reply: Dict[str, Any]) -> None:
        self.columns: List[str] = reply.get("columns", [])
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in reply.get("rows", [])]
        self.rowcount: int = reply.get("rowcount", len(self.rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]
