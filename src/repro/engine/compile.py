"""Query-time expression compilation.

The interpreted evaluator (:mod:`repro.engine.expressions`) builds a
``RowContext`` dict per row and tree-walks ``Expression.evaluate`` per node —
fine for correctness, but the Figure 4/5 benchmarks then measure interpreter
overhead instead of the aggregation pattern the paper studies.  This module
compiles an :class:`~repro.engine.expressions.Expression` tree **once per
query** into a Python closure over *positional* row tuples: column names are
resolved to tuple indices at plan time, scalar functions are looked up once,
and each node becomes a small closure, so per-row evaluation is a chain of
direct calls with no dict building and no ``isinstance`` dispatch.

Compilation is best-effort: :func:`compile_expression` returns ``None`` for
any construct it does not cover (window calls, aggregate calls, unresolvable
names, unbound parameters), and the executor falls back to the interpreted
path — the two tiers must produce identical results, which
``tests/engine/test_compiled_parity.py`` asserts over a corpus of queries.

NULL semantics are inherited rather than re-implemented: compiled closures
call the *same* operator functions (``_BINARY_OPS``, :func:`is_null`,
``values_equal``, ``like_match``) the interpreted nodes use.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .expressions import (
    _BINARY_OPS,
    ArrayLiteral,
    Between,
    BinaryOp,
    Cast,
    CaseExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Parameter,
    Star,
    Subscript,
    UnaryOp,
    WindowCall,
    like_match,
    like_regex,
)
from .types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    SQLType,
    TEXT,
    coerce_value,
    is_null,
    type_from_name,
    values_equal,
)

__all__ = [
    "ColumnLayout",
    "VectorPredicate",
    "compile_expression",
    "compile_predicate_vector",
    "keys_for_columns",
]

#: Compiled row function: takes one positional row tuple, returns a value.
RowFunction = Callable[[Tuple[Any, ...]], Any]


class _Uncompilable(Exception):
    """Raised internally when a subtree cannot be compiled (fallback signal)."""


def keys_for_columns(
    columns: Sequence[Tuple[Optional[str], str]]
) -> List[List[str]]:
    """The row-dict keys each ``(alias, name)`` column populates.

    This is the canonical name-visibility rule for a relation: a qualified key
    when the column has a source alias, plus the bare name when it is unique
    across the relation.  ``Executor._Relation.context_keys`` (interpreted
    tier) and :class:`ColumnLayout` (compiled tier) both derive from it, and
    the join planner uses it to build layouts for the *two-relation* case —
    each side alone plus the combined ``left.columns + right.columns`` row —
    so a pushed-down predicate resolves names exactly as the post-join row
    would.
    """
    bare_counts: Dict[str, int] = {}
    for _, name in columns:
        bare_counts[name.lower()] = bare_counts.get(name.lower(), 0) + 1
    keys: List[List[str]] = []
    for alias, name in columns:
        column_keys = []
        if alias:
            column_keys.append(f"{alias.lower()}.{name.lower()}")
        if bare_counts[name.lower()] == 1:
            column_keys.append(name.lower())
        elif not alias:
            column_keys.append(name.lower())
        keys.append(column_keys)
    return keys


class ColumnLayout:
    """Positional name resolution for one relation.

    Mirrors the key layout ``Executor._make_contexts`` builds (qualified key,
    then bare key when unambiguous, later duplicates winning) so that a
    compiled ``ColumnRef`` reads the same value the interpreted lookup would.
    """

    def __init__(self, keys_per_column: Sequence[Sequence[str]]) -> None:
        self.width = len(keys_per_column)
        self.key_to_index: Dict[str, int] = {}
        for index, keys in enumerate(keys_per_column):
            for key in keys:
                self.key_to_index[key] = index

    @classmethod
    def for_columns(cls, columns: Sequence[Tuple[Optional[str], str]]) -> "ColumnLayout":
        """Layout for a relation given as ``(alias, name)`` columns."""
        return cls(keys_for_columns(columns))

    def column_indices(self, expression: Expression) -> Optional[frozenset]:
        """Tuple indices of every column reference in ``expression``.

        ``None`` when any reference fails to resolve (missing or ambiguous
        name) — the join planner then abandons its plan so the interpreted
        path can raise the proper error.  An expression with no column
        references returns the empty set (a constant predicate).
        """
        indices = set()
        for node in expression.walk():
            if isinstance(node, ColumnRef):
                index = self.resolve(node.name, node.qualifier)
                if index is None:
                    return None
                indices.add(index)
        return frozenset(indices)

    def resolve(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        """Tuple index for a column reference, or ``None`` if unresolvable.

        Follows ``RowContext.lookup``: qualified key first, then bare key,
        then a unique qualified match for a bare reference.  Ambiguous or
        missing names return ``None`` so the interpreted path can raise the
        proper error.
        """
        if qualifier is not None:
            return self.key_to_index.get(f"{qualifier.lower()}.{name.lower()}")
        key = name.lower()
        if key in self.key_to_index:
            return self.key_to_index[key]
        suffix = "." + key
        matches = [k for k in self.key_to_index if k.endswith(suffix)]
        if len(matches) == 1:
            return self.key_to_index[matches[0]]
        return None


def compile_expression(
    expression: Expression,
    layout: ColumnLayout,
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]] = None,
    aggregate_names: Optional[frozenset] = None,
) -> Optional[RowFunction]:
    """Compile an expression tree to a closure over positional row tuples.

    Returns ``None`` when any node is outside the compilable subset; callers
    must then use the interpreted ``Expression.evaluate`` path.
    """
    try:
        return _compile(expression, layout, functions, parameters or {}, aggregate_names or frozenset())
    except _Uncompilable:
        return None


def _compile(
    node: Expression,
    layout: ColumnLayout,
    functions: Dict[str, Callable[..., Any]],
    parameters: Dict[str, Any],
    aggregate_names: frozenset,
) -> RowFunction:
    recurse = lambda child: _compile(child, layout, functions, parameters, aggregate_names)

    if isinstance(node, Literal):
        value = node.value
        return lambda row: value

    if isinstance(node, ColumnRef):
        index = layout.resolve(node.name, node.qualifier)
        if index is None:
            raise _Uncompilable(node.qualified_name)
        return lambda row: row[index]

    if isinstance(node, Parameter):
        if node.name not in parameters:
            # Unbound parameter: let the interpreted path raise the error.
            raise _Uncompilable(node.name)
        value = parameters[node.name]
        return lambda row: value

    if isinstance(node, BinaryOp):
        op = node.op.lower()
        left = recurse(node.left)
        right = recurse(node.right)
        if op == "like":
            if isinstance(node.right, Literal) and isinstance(node.right.value, str):
                # Literal pattern (the common case): build the regex once at
                # plan time instead of once per row.
                regex = like_regex(node.right.value)
                return lambda row: (
                    None
                    if is_null(text := left(row))
                    else regex.match(str(text)) is not None
                )
            return lambda row: like_match(left(row), right(row))
        try:
            func = _BINARY_OPS[op]
        except KeyError:
            raise _Uncompilable(node.op) from None
        return lambda row: func(left(row), right(row))

    if isinstance(node, UnaryOp):
        operand = recurse(node.operand)
        op = node.op.lower()
        if op == "-":
            return lambda row: None if is_null(value := operand(row)) else -value
        if op == "+":
            return operand
        if op == "not":
            def negate(row):
                value = operand(row)
                if value is None:
                    return None
                return not bool(value)

            return negate
        raise _Uncompilable(node.op)

    if isinstance(node, WindowCall) or isinstance(node, Star):
        raise _Uncompilable(type(node).__name__)

    if isinstance(node, FunctionCall):
        name = node.name.lower()
        if node.star or node.distinct or name in aggregate_names:
            # Aggregates are evaluated by the executor, never per row.
            raise _Uncompilable(name)
        try:
            func = functions[name]
        except KeyError:
            raise _Uncompilable(name) from None
        arg_fns = [recurse(arg) for arg in node.args]
        if not arg_fns:
            return lambda row: func()
        if len(arg_fns) == 1:
            only = arg_fns[0]
            return lambda row: func(only(row))
        if len(arg_fns) == 2:
            first, second = arg_fns
            return lambda row: func(first(row), second(row))
        return lambda row: func(*[fn(row) for fn in arg_fns])

    if isinstance(node, CaseExpr):
        whens = [(recurse(cond), recurse(result)) for cond, result in node.whens]
        else_fn = recurse(node.else_result) if node.else_result is not None else None

        def case(row):
            for condition, result in whens:
                if condition(row) is True:
                    return result(row)
            if else_fn is not None:
                return else_fn(row)
            return None

        return case

    if isinstance(node, ArrayLiteral):
        item_fns = [recurse(item) for item in node.items]

        def array(row):
            values = [fn(row) for fn in item_fns]
            if values and all(isinstance(v, str) for v in values):
                return values
            return np.asarray(values, dtype=np.float64)

        return array

    if isinstance(node, Subscript):
        base = recurse(node.base)
        index_fn = recurse(node.index)

        def subscript(row):
            array = base(row)
            position = index_fn(row)
            if is_null(array) or is_null(position):
                return None
            idx = int(position) - 1
            if idx < 0 or idx >= len(array):
                return None
            value = array[idx]
            if isinstance(value, np.generic):
                return value.item()
            return value

        return subscript

    if isinstance(node, Cast):
        operand = recurse(node.operand)
        try:
            sql_type = type_from_name(node.type_name)
        except Exception:
            raise _Uncompilable(node.type_name) from None
        return lambda row: coerce_value(operand(row), sql_type)

    if isinstance(node, InList):
        operand = recurse(node.operand)
        item_fns = [recurse(item) for item in node.items]
        negated = node.negated

        def in_list(row):
            value = operand(row)
            if is_null(value):
                return None
            found = any(values_equal(value, fn(row)) for fn in item_fns)
            return (not found) if negated else found

        return in_list

    if isinstance(node, IsNull):
        operand = recurse(node.operand)
        if node.negated:
            return lambda row: not is_null(operand(row))
        return lambda row: is_null(operand(row))

    if isinstance(node, Between):
        operand = recurse(node.operand)
        low_fn = recurse(node.low)
        high_fn = recurse(node.high)
        negated = node.negated

        def between(row):
            value = operand(row)
            low = low_fn(row)
            high = high_fn(row)
            if is_null(value) or is_null(low) or is_null(high):
                return None
            result = low <= value <= high
            return (not result) if negated else result

        return between

    raise _Uncompilable(type(node).__name__)


# ---------------------------------------------------------------------------
# Vectorized predicate compilation (columnar storage)
#
# A second, column-level compiler: instead of a closure called once per row,
# a supported WHERE clause compiles to a program that reads a segment's
# packed columns (:class:`~repro.engine.columnar.ColumnStore`) and evaluates
# the whole predicate with NumPy — one selection bitmap per segment, no
# per-row Python at all.
#
# The contract is the same as ``compile_expression``'s: byte-identical
# results or no compilation.  Anything whose NumPy semantics could diverge
# from the row operators declines, either at compile time
# (``compile_predicate_vector`` returns None) or at runtime
# (``VectorPredicate.mask`` returns None — e.g. a column demoted to an
# object list).  The executor then re-runs the query on the row path.
#
# Divergence hazards this subset is engineered around:
#
# * **int64 vs float comparisons.**  NumPy promotes int64 to float64, which
#   is inexact beyond 2**53; Python compares int-to-float exactly.  Whenever
#   an int column meets a float operand the mask aborts if any stored value
#   exceeds 2**53 in magnitude.  Int *literals* beyond 2**53 decline at
#   compile time for the same reason.
# * **int64 arithmetic.**  NumPy int64 arithmetic wraps silently where
#   Python promotes to arbitrary precision, so ``+ - *`` vectorize only when
#   every column operand is ``double precision``; int columns may still be
#   *compared*, where int64 is exact.
# * **NaN from float arithmetic.**  ``inf - inf`` is NaN, which SQL-side is
#   NULL (``is_null``); arithmetic results fold ``isnan`` into the null mask
#   so ``NOT (a - b > 0)`` agrees with the row path's three-valued logic.
# * **Three-valued logic.**  Boolean nodes carry ``(true_mask, null_mask)``;
#   AND/OR/NOT combine them with Kleene rules, mirroring ``_logical_and`` /
#   ``_logical_or`` exactly (False dominates AND, True dominates OR).
# ---------------------------------------------------------------------------

#: Largest int magnitude that float64 represents exactly — the admission
#: bound for int literals and the runtime guard for int columns meeting
#: float operands.
_SAFE_INT = 2 ** 53

_VECTOR_COMPARE_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_VECTOR_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


class _VectorAbort(Exception):
    """Raised at mask time when a runtime precondition fails (→ row path)."""


class VectorPredicate:
    """A compiled segment-at-a-time WHERE program.

    :meth:`mask` evaluates the predicate over one segment's packed columns
    and returns the selection bitmap (True where the WHERE is satisfied), or
    ``None`` when a runtime precondition fails — the caller must then fall
    back to row-at-a-time evaluation for the whole statement.
    """

    __slots__ = ("_program",)

    def __init__(self, program) -> None:
        self._program = program

    def mask(self, store) -> Optional[np.ndarray]:
        length = len(store)
        try:
            true_mask, _nulls = self._program(store, length)
        except _VectorAbort:
            return None
        return true_mask


def compile_predicate_vector(
    expression: Expression,
    layout: ColumnLayout,
    column_types: Sequence[SQLType],
    parameters: Optional[Dict[str, Any]] = None,
) -> Optional[VectorPredicate]:
    """Compile a WHERE clause to a bitmap program, or ``None``.

    ``column_types`` gives the stored SQL type at each tuple position
    (``layout`` must resolve names to those same positions — i.e. the
    relation is a base-table scan in schema order).
    """
    try:
        program = _vector_bool(expression, layout, column_types, parameters or {})
    except _Uncompilable:
        return None
    return VectorPredicate(program)


def _mask_or(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _check_int_exact(values: np.ndarray) -> None:
    """Abort when an int64 column holds values float64 cannot represent
    exactly (the comparison would be rounded; Python's would not)."""
    if len(values) and (values.max() > _SAFE_INT or values.min() < -_SAFE_INT):
        raise _VectorAbort


def _resolve_operand(spec, store, length):
    kind, payload = spec
    if kind == "scalar":
        return payload, None
    return payload(store, length)


def _vector_num(
    node: Expression,
    layout: ColumnLayout,
    column_types: Sequence[SQLType],
    parameters: Dict[str, Any],
):
    """Compile a numeric subtree to ``(kind, payload)``.

    ``kind`` is ``"scalar"`` (payload: the constant Python value),
    ``"f64"`` or ``"i64"`` (payload: ``fn(store, length) -> (values,
    null_mask)``).  Raises ``_Uncompilable`` outside the subset.
    """
    recurse = lambda child: _vector_num(child, layout, column_types, parameters)

    if isinstance(node, (Literal, Parameter)):
        if isinstance(node, Parameter):
            if node.name not in parameters:
                raise _Uncompilable(node.name)
            value = parameters[node.name]
        else:
            value = node.value
        if isinstance(value, bool):
            return ("scalar", value)
        if isinstance(value, int):
            if not -_SAFE_INT <= value <= _SAFE_INT:
                raise _Uncompilable("int literal beyond exact float64 range")
            return ("scalar", value)
        if isinstance(value, float):
            if math.isnan(value):
                # A NULL constant: let the row path run its NULL semantics.
                raise _Uncompilable("NaN literal")
            return ("scalar", value)
        raise _Uncompilable(type(value).__name__)

    if isinstance(node, ColumnRef):
        index = layout.resolve(node.name, node.qualifier)
        if index is None or index >= len(column_types):
            raise _Uncompilable(node.qualified_name)
        sql_type = column_types[index]
        if sql_type is DOUBLE:
            kind = "f64"
        elif sql_type is INTEGER or sql_type is BIGINT:
            kind = "i64"
        else:
            raise _Uncompilable(str(sql_type))

        def load(store, length, _index=index):
            view = store.numeric_view(_index)
            if view is None:
                # Demoted column (e.g. int beyond int64) — no packed buffer.
                raise _VectorAbort
            return view

        return (kind, load)

    if isinstance(node, UnaryOp):
        op = node.op.lower()
        if op == "+":
            return recurse(node.operand)
        if op == "-":
            kind, payload = recurse(node.operand)
            if kind == "scalar":
                return ("scalar", -payload)
            if kind != "f64":
                # Negating int64 can wrap at the boundary; Python cannot.
                raise _Uncompilable("negated int column")

            def negate(store, length, _inner=payload):
                values, nulls = _inner(store, length)
                return -values, nulls

            return ("f64", negate)
        raise _Uncompilable(node.op)

    if isinstance(node, BinaryOp):
        op = _VECTOR_ARITH_OPS.get(node.op.lower())
        if op is None:
            raise _Uncompilable(node.op)
        left = recurse(node.left)
        right = recurse(node.right)
        if left[0] == "scalar" and right[0] == "scalar":
            folded = op(left[1], right[1])
            if isinstance(folded, int) and not -_SAFE_INT <= folded <= _SAFE_INT:
                raise _Uncompilable("folded constant beyond exact float64 range")
            if isinstance(folded, float) and math.isnan(folded):
                raise _Uncompilable("folded NaN constant")
            return ("scalar", folded)
        if left[0] == "i64" or right[0] == "i64":
            # NumPy int64 arithmetic wraps; Python ints do not.  Comparisons
            # on int columns stay vectorized — arithmetic does not.
            raise _Uncompilable("int column arithmetic")

        def arith(store, length, _l=left, _r=right, _op=op):
            lv, ln = _resolve_operand(_l, store, length)
            rv, rn = _resolve_operand(_r, store, length)
            with np.errstate(all="ignore"):
                values = _op(lv, rv)
            nulls = _mask_or(ln, rn)
            # Float arithmetic can *produce* NaN (inf - inf) which SQL-side
            # is NULL; stored-NULL placeholders are NaN and propagate here,
            # so isnan covers both.
            nan_mask = np.isnan(values)
            if nan_mask.any():
                nulls = _mask_or(nulls, nan_mask)
            return values, nulls

        return ("f64", arith)

    raise _Uncompilable(type(node).__name__)


def _vector_compare(op, left, right):
    """Comparison program over two numeric operand specs → bool program."""
    if left[0] == "scalar" and right[0] == "scalar":
        # Constant predicate: no bitmap width driver, row path handles it.
        raise _Uncompilable("constant comparison")

    # An int64 operand meeting any float operand is promoted to float64 by
    # NumPy (inexact beyond 2**53) where Python compares exactly — guard the
    # int side's magnitude at mask time.  Scalar ints are admitted only
    # within the exact range, so int-vs-int never needs the guard.
    def _is_floatish(spec):
        return spec[0] == "f64" or (
            spec[0] == "scalar" and isinstance(spec[1], float)
        )

    guard_left = left[0] == "i64" and _is_floatish(right)
    guard_right = right[0] == "i64" and _is_floatish(left)

    def compare(store, length, _l=left, _r=right, _op=op):
        lv, ln = _resolve_operand(_l, store, length)
        rv, rn = _resolve_operand(_r, store, length)
        if guard_left:
            _check_int_exact(lv)
        if guard_right:
            _check_int_exact(rv)
        with np.errstate(invalid="ignore"):
            result = _op(lv, rv)
        nulls = _mask_or(ln, rn)
        if nulls is not None:
            result = result & ~nulls
        return result, nulls

    return compare


# ---------------------------------------------------------------------------
# Code-space predicate programs (dictionary-encoded columns)
#
# A predicate over a dictionary-encoded text/boolean column needs the row
# operator evaluated once **per distinct value**, not per row: evaluate the
# exact row-tier operator over the dictionary (plus the NULL entry) into a
# pair of lookup tables, then one fancy-index over the int16 code array
# yields the (true, null) bitmaps.  Constants therefore resolve against the
# dictionary once per segment; a constant no dictionary entry satisfies
# simply produces an all-false table — Kleene short-circuit for free.
# Because the *row operators themselves* build the tables, NULL constants,
# type mismatches and three-valued logic agree with the row path by
# construction; anything the row operator raises on aborts the mask and the
# row path re-runs (and re-raises) it.
# ---------------------------------------------------------------------------

#: Stored types eligible for dictionary encoding (must mirror
#: ``ColumnStore._new_column``).
_DICT_TYPES = (TEXT, BOOLEAN)


def _dict_column(
    node: Expression, layout: ColumnLayout, column_types: Sequence[SQLType]
) -> Optional[int]:
    """Tuple index of a dictionary-eligible column reference, or ``None``."""
    if not isinstance(node, ColumnRef):
        return None
    index = layout.resolve(node.name, node.qualifier)
    if index is None or index >= len(column_types):
        return None
    if column_types[index] not in _DICT_TYPES:
        return None
    return index


def _dict_constant(node: Expression, parameters: Dict[str, Any]) -> Any:
    """The Python value of a constant operand (any type — the row operator
    decides what it means, including NULL)."""
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, Parameter):
        if node.name not in parameters:
            raise _Uncompilable(node.name)
        return parameters[node.name]
    raise _Uncompilable(type(node).__name__)


def _dict_program(column_index: int, rowfn: Callable[[Any], Any]):
    """Boolean program evaluating ``rowfn`` over a column's dictionary.

    ``rowfn`` is a closure over the row-tier operator and the resolved
    constant; it is called once per dictionary entry plus once for ``None``
    and must return ``True``/``False``/``None`` (SQL three-valued result).
    Anything else — including an exception — aborts to the row path.
    """

    def program(store, length, _index=column_index, _rowfn=rowfn):
        view_fn = getattr(store, "dict_view", None)
        view = view_fn(_index) if view_fn is not None else None
        if view is None:
            # Compression off, demoted column, or a store without
            # dictionaries at all — no code space to run in.
            raise _VectorAbort
        codes, values = view
        size = len(values)
        true_lut = np.zeros(size + 1, dtype=bool)
        null_lut = np.zeros(size + 1, dtype=bool)
        try:
            for code in range(size + 1):
                # The final slot is the NULL entry; code -1 wraps to it.
                result = _rowfn(values[code] if code < size else None)
                if result is None:
                    null_lut[code] = True
                elif result is True:
                    true_lut[code] = True
                elif result is not False:
                    raise _VectorAbort
        except _VectorAbort:
            raise
        except Exception:
            # The row operator would raise for this column/constant pairing
            # (e.g. a cross-type ordering) — let the row path raise it.
            raise _VectorAbort
        true_mask = true_lut[codes]
        null_mask = null_lut[codes]
        return true_mask, (null_mask if null_mask.any() else None)

    return program


def _dict_compare(
    node: BinaryOp,
    layout: ColumnLayout,
    column_types: Sequence[SQLType],
    parameters: Dict[str, Any],
):
    """Comparison of a dictionary column against a constant, in code space."""
    func = _BINARY_OPS.get(node.op.lower())
    if func is None:
        raise _Uncompilable(node.op)
    left_index = _dict_column(node.left, layout, column_types)
    right_index = _dict_column(node.right, layout, column_types)
    if left_index is not None and right_index is None:
        constant = _dict_constant(node.right, parameters)
        return _dict_program(
            left_index, lambda value, _f=func, _c=constant: _f(value, _c)
        )
    if right_index is not None and left_index is None:
        constant = _dict_constant(node.left, parameters)
        return _dict_program(
            right_index, lambda value, _f=func, _c=constant: _f(_c, value)
        )
    raise _Uncompilable(node.op)


def _vector_bool(
    node: Expression,
    layout: ColumnLayout,
    column_types: Sequence[SQLType],
    parameters: Dict[str, Any],
):
    """Compile a boolean subtree to ``fn(store, length) -> (true, nulls)``.

    ``true`` is the satisfied-row bitmap; ``nulls`` marks rows where the
    predicate evaluates to SQL NULL (``None`` when provably none do).  False
    rows are the remainder — exactly Kleene three-valued logic.
    """
    recurse = lambda child: _vector_bool(child, layout, column_types, parameters)
    recurse_num = lambda child: _vector_num(child, layout, column_types, parameters)

    if isinstance(node, BinaryOp):
        op_name = node.op.lower()
        compare_op = _VECTOR_COMPARE_OPS.get(op_name)
        if compare_op is not None:
            try:
                operands = (recurse_num(node.left), recurse_num(node.right))
            except _Uncompilable:
                # Outside the numeric subset — a text/boolean comparison may
                # still run in code space over a dictionary column.
                return _dict_compare(node, layout, column_types, parameters)
            return _vector_compare(compare_op, *operands)
        if op_name == "like":
            index = _dict_column(node.left, layout, column_types)
            if index is None:
                raise _Uncompilable("like")
            pattern = _dict_constant(node.right, parameters)
            # ``like_match`` is the row tier's operator (NULL-propagating,
            # ``str(text)``); evaluated per dictionary entry the regex still
            # compiles only once per distinct value per segment.
            return _dict_program(
                index, lambda value, _p=pattern: like_match(value, _p)
            )
        if op_name == "and":
            left, right = recurse(node.left), recurse(node.right)

            def kleene_and(store, length, _l=left, _r=right):
                t1, n1 = _l(store, length)
                t2, n2 = _r(store, length)
                t = t1 & t2
                if n1 is None and n2 is None:
                    return t, None
                f1 = ~t1 if n1 is None else ~(t1 | n1)
                f2 = ~t2 if n2 is None else ~(t2 | n2)
                n = ~(t | f1 | f2)
                return t, (n if n.any() else None)

            return kleene_and
        if op_name == "or":
            left, right = recurse(node.left), recurse(node.right)

            def kleene_or(store, length, _l=left, _r=right):
                t1, n1 = _l(store, length)
                t2, n2 = _r(store, length)
                t = t1 | t2
                if n1 is None and n2 is None:
                    return t, None
                f1 = ~t1 if n1 is None else ~(t1 | n1)
                f2 = ~t2 if n2 is None else ~(t2 | n2)
                n = ~(t | (f1 & f2))
                return t, (n if n.any() else None)

            return kleene_or
        raise _Uncompilable(node.op)

    if isinstance(node, UnaryOp):
        if node.op.lower() != "not":
            raise _Uncompilable(node.op)
        inner = recurse(node.operand)

        def kleene_not(store, length, _inner=inner):
            t, n = _inner(store, length)
            return (~t if n is None else ~(t | n)), n

        return kleene_not

    if isinstance(node, IsNull):
        negated = node.negated
        try:
            spec = recurse_num(node.operand)
        except _Uncompilable:
            index = _dict_column(node.operand, layout, column_types)
            if index is None:
                raise
            return _dict_program(
                index,
                lambda value, _n=negated: (not is_null(value)) if _n else is_null(value),
            )
        if spec[0] == "scalar":
            raise _Uncompilable("IS NULL on constant")

        def is_null_mask(store, length, _spec=spec):
            _, nulls = _resolve_operand(_spec, store, length)
            if negated:
                return (np.ones(length, dtype=bool) if nulls is None else ~nulls), None
            return (np.zeros(length, dtype=bool) if nulls is None else nulls), None

        return is_null_mask

    if isinstance(node, InList):
        index = _dict_column(node.operand, layout, column_types)
        if index is None:
            raise _Uncompilable("in")
        items = [_dict_constant(item, parameters) for item in node.items]
        negated = node.negated

        # Mirrors the compiled row tier's ``in_list`` closure exactly:
        # NULL operand → NULL; membership via ``values_equal``.
        def in_dictionary(value, _items=items, _negated=negated):
            if is_null(value):
                return None
            found = any(values_equal(value, item) for item in _items)
            return (not found) if _negated else found

        return _dict_program(index, in_dictionary)

    if isinstance(node, Between):
        # BETWEEN is the conjunction of two comparisons; the operands' null
        # masks are shared, so Kleene AND reproduces the row semantics ("any
        # NULL → NULL") exactly.  NOT BETWEEN is Kleene NOT of the range.
        inrange = BinaryOp(
            "and",
            BinaryOp("<=", node.low, node.operand),
            BinaryOp("<=", node.operand, node.high),
        )
        program = recurse(inrange)
        if not node.negated:
            return program

        def negate(store, length, _inner=program):
            t, n = _inner(store, length)
            return (~t if n is None else ~(t | n)), n

        return negate

    raise _Uncompilable(type(node).__name__)
