"""Query-time expression compilation.

The interpreted evaluator (:mod:`repro.engine.expressions`) builds a
``RowContext`` dict per row and tree-walks ``Expression.evaluate`` per node —
fine for correctness, but the Figure 4/5 benchmarks then measure interpreter
overhead instead of the aggregation pattern the paper studies.  This module
compiles an :class:`~repro.engine.expressions.Expression` tree **once per
query** into a Python closure over *positional* row tuples: column names are
resolved to tuple indices at plan time, scalar functions are looked up once,
and each node becomes a small closure, so per-row evaluation is a chain of
direct calls with no dict building and no ``isinstance`` dispatch.

Compilation is best-effort: :func:`compile_expression` returns ``None`` for
any construct it does not cover (window calls, aggregate calls, unresolvable
names, unbound parameters), and the executor falls back to the interpreted
path — the two tiers must produce identical results, which
``tests/engine/test_compiled_parity.py`` asserts over a corpus of queries.

NULL semantics are inherited rather than re-implemented: compiled closures
call the *same* operator functions (``_BINARY_OPS``, :func:`is_null`,
``values_equal``, ``like_match``) the interpreted nodes use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .expressions import (
    _BINARY_OPS,
    ArrayLiteral,
    Between,
    BinaryOp,
    Cast,
    CaseExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Parameter,
    Star,
    Subscript,
    UnaryOp,
    WindowCall,
    like_match,
    like_regex,
)
from .types import coerce_value, is_null, type_from_name, values_equal

__all__ = ["ColumnLayout", "compile_expression", "keys_for_columns"]

#: Compiled row function: takes one positional row tuple, returns a value.
RowFunction = Callable[[Tuple[Any, ...]], Any]


class _Uncompilable(Exception):
    """Raised internally when a subtree cannot be compiled (fallback signal)."""


def keys_for_columns(
    columns: Sequence[Tuple[Optional[str], str]]
) -> List[List[str]]:
    """The row-dict keys each ``(alias, name)`` column populates.

    This is the canonical name-visibility rule for a relation: a qualified key
    when the column has a source alias, plus the bare name when it is unique
    across the relation.  ``Executor._Relation.context_keys`` (interpreted
    tier) and :class:`ColumnLayout` (compiled tier) both derive from it, and
    the join planner uses it to build layouts for the *two-relation* case —
    each side alone plus the combined ``left.columns + right.columns`` row —
    so a pushed-down predicate resolves names exactly as the post-join row
    would.
    """
    bare_counts: Dict[str, int] = {}
    for _, name in columns:
        bare_counts[name.lower()] = bare_counts.get(name.lower(), 0) + 1
    keys: List[List[str]] = []
    for alias, name in columns:
        column_keys = []
        if alias:
            column_keys.append(f"{alias.lower()}.{name.lower()}")
        if bare_counts[name.lower()] == 1:
            column_keys.append(name.lower())
        elif not alias:
            column_keys.append(name.lower())
        keys.append(column_keys)
    return keys


class ColumnLayout:
    """Positional name resolution for one relation.

    Mirrors the key layout ``Executor._make_contexts`` builds (qualified key,
    then bare key when unambiguous, later duplicates winning) so that a
    compiled ``ColumnRef`` reads the same value the interpreted lookup would.
    """

    def __init__(self, keys_per_column: Sequence[Sequence[str]]) -> None:
        self.width = len(keys_per_column)
        self.key_to_index: Dict[str, int] = {}
        for index, keys in enumerate(keys_per_column):
            for key in keys:
                self.key_to_index[key] = index

    @classmethod
    def for_columns(cls, columns: Sequence[Tuple[Optional[str], str]]) -> "ColumnLayout":
        """Layout for a relation given as ``(alias, name)`` columns."""
        return cls(keys_for_columns(columns))

    def column_indices(self, expression: Expression) -> Optional[frozenset]:
        """Tuple indices of every column reference in ``expression``.

        ``None`` when any reference fails to resolve (missing or ambiguous
        name) — the join planner then abandons its plan so the interpreted
        path can raise the proper error.  An expression with no column
        references returns the empty set (a constant predicate).
        """
        indices = set()
        for node in expression.walk():
            if isinstance(node, ColumnRef):
                index = self.resolve(node.name, node.qualifier)
                if index is None:
                    return None
                indices.add(index)
        return frozenset(indices)

    def resolve(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        """Tuple index for a column reference, or ``None`` if unresolvable.

        Follows ``RowContext.lookup``: qualified key first, then bare key,
        then a unique qualified match for a bare reference.  Ambiguous or
        missing names return ``None`` so the interpreted path can raise the
        proper error.
        """
        if qualifier is not None:
            return self.key_to_index.get(f"{qualifier.lower()}.{name.lower()}")
        key = name.lower()
        if key in self.key_to_index:
            return self.key_to_index[key]
        suffix = "." + key
        matches = [k for k in self.key_to_index if k.endswith(suffix)]
        if len(matches) == 1:
            return self.key_to_index[matches[0]]
        return None


def compile_expression(
    expression: Expression,
    layout: ColumnLayout,
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]] = None,
    aggregate_names: Optional[frozenset] = None,
) -> Optional[RowFunction]:
    """Compile an expression tree to a closure over positional row tuples.

    Returns ``None`` when any node is outside the compilable subset; callers
    must then use the interpreted ``Expression.evaluate`` path.
    """
    try:
        return _compile(expression, layout, functions, parameters or {}, aggregate_names or frozenset())
    except _Uncompilable:
        return None


def _compile(
    node: Expression,
    layout: ColumnLayout,
    functions: Dict[str, Callable[..., Any]],
    parameters: Dict[str, Any],
    aggregate_names: frozenset,
) -> RowFunction:
    recurse = lambda child: _compile(child, layout, functions, parameters, aggregate_names)

    if isinstance(node, Literal):
        value = node.value
        return lambda row: value

    if isinstance(node, ColumnRef):
        index = layout.resolve(node.name, node.qualifier)
        if index is None:
            raise _Uncompilable(node.qualified_name)
        return lambda row: row[index]

    if isinstance(node, Parameter):
        if node.name not in parameters:
            # Unbound parameter: let the interpreted path raise the error.
            raise _Uncompilable(node.name)
        value = parameters[node.name]
        return lambda row: value

    if isinstance(node, BinaryOp):
        op = node.op.lower()
        left = recurse(node.left)
        right = recurse(node.right)
        if op == "like":
            if isinstance(node.right, Literal) and isinstance(node.right.value, str):
                # Literal pattern (the common case): build the regex once at
                # plan time instead of once per row.
                regex = like_regex(node.right.value)
                return lambda row: (
                    None
                    if is_null(text := left(row))
                    else regex.match(str(text)) is not None
                )
            return lambda row: like_match(left(row), right(row))
        try:
            func = _BINARY_OPS[op]
        except KeyError:
            raise _Uncompilable(node.op) from None
        return lambda row: func(left(row), right(row))

    if isinstance(node, UnaryOp):
        operand = recurse(node.operand)
        op = node.op.lower()
        if op == "-":
            return lambda row: None if is_null(value := operand(row)) else -value
        if op == "+":
            return operand
        if op == "not":
            def negate(row):
                value = operand(row)
                if value is None:
                    return None
                return not bool(value)

            return negate
        raise _Uncompilable(node.op)

    if isinstance(node, WindowCall) or isinstance(node, Star):
        raise _Uncompilable(type(node).__name__)

    if isinstance(node, FunctionCall):
        name = node.name.lower()
        if node.star or node.distinct or name in aggregate_names:
            # Aggregates are evaluated by the executor, never per row.
            raise _Uncompilable(name)
        try:
            func = functions[name]
        except KeyError:
            raise _Uncompilable(name) from None
        arg_fns = [recurse(arg) for arg in node.args]
        if not arg_fns:
            return lambda row: func()
        if len(arg_fns) == 1:
            only = arg_fns[0]
            return lambda row: func(only(row))
        if len(arg_fns) == 2:
            first, second = arg_fns
            return lambda row: func(first(row), second(row))
        return lambda row: func(*[fn(row) for fn in arg_fns])

    if isinstance(node, CaseExpr):
        whens = [(recurse(cond), recurse(result)) for cond, result in node.whens]
        else_fn = recurse(node.else_result) if node.else_result is not None else None

        def case(row):
            for condition, result in whens:
                if condition(row) is True:
                    return result(row)
            if else_fn is not None:
                return else_fn(row)
            return None

        return case

    if isinstance(node, ArrayLiteral):
        item_fns = [recurse(item) for item in node.items]

        def array(row):
            values = [fn(row) for fn in item_fns]
            if values and all(isinstance(v, str) for v in values):
                return values
            return np.asarray(values, dtype=np.float64)

        return array

    if isinstance(node, Subscript):
        base = recurse(node.base)
        index_fn = recurse(node.index)

        def subscript(row):
            array = base(row)
            position = index_fn(row)
            if is_null(array) or is_null(position):
                return None
            idx = int(position) - 1
            if idx < 0 or idx >= len(array):
                return None
            value = array[idx]
            if isinstance(value, np.generic):
                return value.item()
            return value

        return subscript

    if isinstance(node, Cast):
        operand = recurse(node.operand)
        try:
            sql_type = type_from_name(node.type_name)
        except Exception:
            raise _Uncompilable(node.type_name) from None
        return lambda row: coerce_value(operand(row), sql_type)

    if isinstance(node, InList):
        operand = recurse(node.operand)
        item_fns = [recurse(item) for item in node.items]
        negated = node.negated

        def in_list(row):
            value = operand(row)
            if is_null(value):
                return None
            found = any(values_equal(value, fn(row)) for fn in item_fns)
            return (not found) if negated else found

        return in_list

    if isinstance(node, IsNull):
        operand = recurse(node.operand)
        if node.negated:
            return lambda row: not is_null(operand(row))
        return lambda row: is_null(operand(row))

    if isinstance(node, Between):
        operand = recurse(node.operand)
        low_fn = recurse(node.low)
        high_fn = recurse(node.high)
        negated = node.negated

        def between(row):
            value = operand(row)
            low = low_fn(row)
            high = high_fn(row)
            if is_null(value) or is_null(low) or is_null(high):
                return None
            result = low <= value <= high
            return (not result) if negated else result

        return between

    raise _Uncompilable(type(node).__name__)
