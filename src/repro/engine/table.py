"""In-memory table storage with shared-nothing segment partitioning.

The Greenplum database the paper evaluates on stores every table
hash-distributed across *segments* (one query process per core).  Aggregation
then runs the user-defined aggregate's transition function independently per
segment and combines the partial states with the merge function
(Section 3.1.1).  This module reproduces that storage model: a
:class:`Table` is a set of per-segment stores plus a partitioning of rows
into segments, so the executor can run per-segment scans and the benchmark
harness can measure per-segment work.

Storage comes in two modes:

* **Columnar** (the default): each segment is a
  :class:`~repro.engine.columnar.ColumnStore` of typed packed columns —
  ``array('d')``/``array('q')`` plus a null bitmap for numeric columns,
  object lists otherwise.  Row tuples are a derived, per-segment-cached
  view; the vectorized WHERE path, batch aggregate kernels and worker
  shipping read the packed columns directly.
* **Row tuples** (``Database(columnar_storage=False)``): each segment is a
  plain list of row tuples and the columnar view is derived and cached, as
  in the original engine.  Both modes are observationally identical —
  ``tests/engine/test_columnar.py`` holds them to byte-identical results.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError, TypeMismatchError
from .columnar import ColumnStore, gather_positions
from .schema import Schema
from .types import coerce_value, hashable_key

__all__ = ["Row", "Table"]

Row = Tuple[Any, ...]


def _distribution_hash(value: Any) -> int:
    """Stable hash used to assign a row to a segment.

    Python's builtin ``hash`` of strings is randomized per process which would
    make segment assignment (and therefore simulated parallel timings)
    non-deterministic across runs, so we use a small FNV-1a implementation.
    """
    data = repr(hashable_key(value)).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class Table:
    """A named, typed table distributed across shared-nothing segments.

    Parameters
    ----------
    name:
        Table name as registered in the catalog.
    schema:
        Column names and types.
    num_segments:
        Number of shared-nothing segments the table is distributed over.
    distributed_by:
        Optional column name used for hash distribution; rows with equal
        distribution keys land on the same segment (Greenplum's
        ``DISTRIBUTED BY``).  When omitted, rows are distributed round-robin,
        which is what Greenplum calls ``DISTRIBUTED RANDOMLY``.
    temporary:
        Whether the table is a session temp table (the inter-iteration state
        tables created by driver functions are temporary).
    columnar_storage:
        When true (default), segments store typed packed columns
        (:class:`~repro.engine.columnar.ColumnStore`); when false, lists of
        row tuples.  See the module docstring.
    columnar_compression:
        When true (default), columnar segments dictionary-encode text and
        boolean columns (:class:`~repro.engine.columnar.DictColumn`).  No
        effect in row-tuple mode.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        num_segments: int = 1,
        distributed_by: Optional[str] = None,
        temporary: bool = False,
        columnar_storage: bool = True,
        columnar_compression: bool = True,
    ) -> None:
        if num_segments < 1:
            raise ExecutionError("a table needs at least one segment")
        self.name = name
        self.schema = schema
        self.temporary = temporary
        self.num_segments = num_segments
        self.distributed_by = distributed_by
        self.columnar_storage = bool(columnar_storage)
        self.columnar_compression = bool(columnar_compression)
        if distributed_by is not None:
            # Validates the column exists.
            self._distribution_index: Optional[int] = schema.index_of(distributed_by)
        else:
            self._distribution_index = None
        self._segments: List[Any] = [self._new_segment() for _ in range(num_segments)]
        self._row_count = 0
        self._round_robin_cursor = 0
        # Monotonic mutation counters: ``_data_version`` for the whole table
        # (ANALYZE statistics snapshots record it for staleness tracking) and
        # one counter per segment, so derived per-segment views invalidate
        # only for the segments a mutation actually touched.
        self._data_version = 0
        self._segment_versions: List[int] = [0] * num_segments
        self._columnar_cache: dict = {}
        #: Secondary indexes attached by the catalog
        #: (:mod:`repro.engine.index`), maintained by the mutation hooks
        #: below: inserts append entries, TRUNCATE clears, deletes remap one
        #: segment's surviving positions, and bulk loads / full replaces /
        #: redistribution rebuild.
        self._indexes: List = []

    def _new_segment(self):
        if self.columnar_storage:
            return ColumnStore(self.schema, compression=self.columnar_compression)
        return []

    def _touch(self, segment: int) -> None:
        """Record a mutation of one segment (version counters + caches)."""
        self._data_version += 1
        self._segment_versions[segment] += 1
        self._columnar_cache.pop(segment, None)

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table({self.name!r}, rows={self._row_count}, segments={self.num_segments})"

    @property
    def column_names(self) -> List[str]:
        return self.schema.names

    @property
    def columnar(self) -> bool:
        """Whether segments store typed packed columns (vectorizable)."""
        return self.columnar_storage

    def column_store(self, segment: int) -> Optional[ColumnStore]:
        """One segment's :class:`ColumnStore`, or ``None`` in row mode."""
        if not self.columnar_storage:
            return None
        return self._segments[segment]

    # -- mutation -----------------------------------------------------------

    def _coerce_row(self, values: Sequence[Any]) -> Row:
        if len(values) != len(self.schema):
            raise TypeMismatchError(
                f"table {self.name!r} has {len(self.schema)} columns, got {len(values)} values"
            )
        return tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(values, self.schema)
        )

    def _segment_for(self, row: Row) -> int:
        if self.num_segments == 1:
            return 0
        if self._distribution_index is not None:
            return _distribution_hash(row[self._distribution_index]) % self.num_segments
        segment = self._round_robin_cursor % self.num_segments
        self._round_robin_cursor += 1
        return segment

    #: At or above this many incoming rows, ``insert_many`` on an indexed
    #: table suspends incremental maintenance and rebuilds each index once at
    #: the end — a sorted index pays O(n) list-insert per incremental add, so
    #: bulk loads would otherwise degenerate to O(n²).
    _BULK_REBUILD_ROWS = 256

    def insert(self, values: Sequence[Any]) -> None:
        """Insert a single row (values in schema order)."""
        row = self._coerce_row(values)
        segment = self._segment_for(row)
        self._segments[segment].append(row)
        self._row_count += 1
        self._touch(segment)
        if self._indexes:
            position = len(self._segments[segment]) - 1
            for index in self._indexes:
                index.add(row[index.column_index], segment, position)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        if self._indexes:
            rows = list(rows)
            if len(rows) >= self._BULK_REBUILD_ROWS:
                return self._with_index_rebuild(lambda: self._insert_all(rows))
        return self._insert_all(rows)

    def _insert_all(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def _with_index_rebuild(self, mutate) -> int:
        """Run a bulk mutation with index maintenance suspended, then rebuild.

        The rebuild runs even when the mutation raises partway (e.g. a row
        failing type coercion mid-load): rows inserted before the failure are
        in the table, so skipping the rebuild would leave indexes silently
        stale and index probes returning wrong results.
        """
        indexes, self._indexes = self._indexes, []
        try:
            return mutate()
        finally:
            self._indexes = indexes
            for index in indexes:
                index.rebuild(self._segments)

    def truncate(self) -> None:
        """Remove all rows but keep the schema and distribution policy."""
        self._segments = [self._new_segment() for _ in range(self.num_segments)]
        self._row_count = 0
        self._round_robin_cursor = 0
        self._data_version += 1
        self._segment_versions = [v + 1 for v in self._segment_versions]
        self._columnar_cache.clear()
        for index in self._indexes:
            index.clear()

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Replace the full contents (used by CREATE TABLE AS and bulk loads)."""
        if self._indexes:
            return self._with_index_rebuild(lambda: self._replace_all(rows))
        return self._replace_all(rows)

    def update_rows_in_place(
        self,
        updates_per_segment: Sequence[Tuple[Sequence[int], Sequence[Row]]],
        changed_columns: Sequence[int],
    ) -> int:
        """Bitmap-aware UPDATE: rewrite only the matched positions, per segment.

        ``updates_per_segment`` holds one ``(positions, coerced full rows)``
        pair per segment; ``changed_columns`` names the assigned column
        indices (storage writes and index maintenance are limited to them).
        Rows never move between segments — UPDATE does not redistribute
        (Greenplum's historical rule), so untouched segments keep their
        caches and only indexes on assigned columns see any work: entries
        are replaced in place below the bulk threshold, rebuilt once above
        it.  Returns the number of rows updated.
        """
        total = sum(len(positions) for positions, _ in updates_per_segment)
        if not total:
            return 0
        changed = set(changed_columns)
        affected = [index for index in self._indexes if index.column_index in changed]
        incremental = affected and total < self._BULK_REBUILD_ROWS
        for segment_index, (positions, rows) in enumerate(updates_per_segment):
            if not len(positions):
                continue
            segment = self._segments[segment_index]
            old_values: List[List[Any]] = []
            if incremental:
                view = self.segment_view(segment_index)
                old_values = [
                    [view[position][index.column_index] for position in positions]
                    for index in affected
                ]
            if self.columnar_storage:
                segment.set_rows(positions, rows, changed_columns)
            else:
                for position, row in zip(positions, rows):
                    segment[position] = tuple(row)
            self._touch(segment_index)
            if incremental:
                for index, olds in zip(affected, old_values):
                    for position, old, row in zip(positions, olds, rows):
                        index.replace(
                            old, row[index.column_index], segment_index, position
                        )
        if affected and not incremental:
            for index in affected:
                index.rebuild(self._segments)
        return total

    def _replace_all(self, rows: Iterable[Sequence[Any]]) -> int:
        self.truncate()
        return self.insert_many(rows)

    def delete_where(self, predicate) -> int:
        """Delete rows for which ``predicate(row_dict)`` is true; returns count deleted."""
        names = self.schema.names
        return self._delete_segments(lambda row: predicate(dict(zip(names, row))))

    def delete_where_rows(self, predicate) -> int:
        """Delete rows for which ``predicate(row_tuple)`` is true; returns count.

        The positional-tuple counterpart of :meth:`delete_where`, used by the
        compiled DML path: the executor hands a predicate closure compiled
        against the schema's column layout, so no per-row dict is built.
        Rows stay on their segments — deletion never rehashes.
        """
        return self._delete_segments(predicate)

    def _delete_segments(self, predicate) -> int:
        """Shared per-segment deletion; indexes remap surviving positions."""
        deleted = 0
        for segment_index in range(self.num_segments):
            rows = self.segment_view(segment_index)
            kept_positions = [
                position for position, row in enumerate(rows) if not predicate(row)
            ]
            deleted += self._apply_keep(segment_index, kept_positions, rows)
        if deleted:
            self._row_count -= deleted
        return deleted

    def keep_segment_positions(self, kept_per_segment: Sequence[Sequence[int]]) -> int:
        """Bitmap DELETE: retain only the given positions on each segment.

        ``kept_per_segment`` holds one ascending position sequence per
        segment (the complement of a vectorized WHERE's selection bitmap).
        Returns the number of rows deleted.  Index entries are remapped per
        segment, exactly as the predicate-based delete does.
        """
        deleted = 0
        for segment_index, kept_positions in enumerate(kept_per_segment):
            deleted += self._apply_keep(segment_index, kept_positions, None)
        if deleted:
            self._row_count -= deleted
        return deleted

    def _apply_keep(self, segment_index: int, kept_positions, rows) -> int:
        """Keep only ``kept_positions`` on one segment; returns rows removed."""
        segment = self._segments[segment_index]
        removed = len(segment) - len(kept_positions)
        if not removed:
            return 0
        if self.columnar_storage:
            segment.keep_positions(kept_positions)
        else:
            if rows is None:
                rows = segment
            self._segments[segment_index] = [rows[p] for p in kept_positions]
        self._touch(segment_index)
        for index in self._indexes:
            index.remap_segment(segment_index, list(kept_positions))
        return removed

    # -- secondary indexes ----------------------------------------------------

    @property
    def indexes(self) -> List:
        """Secondary indexes attached to this table (catalog-owned objects)."""
        return list(self._indexes)

    def attach_index(self, index) -> None:
        """Attach (and build) a secondary index; the catalog calls this."""
        if any(existing.name.lower() == index.name.lower() for existing in self._indexes):
            raise ExecutionError(f"index {index.name!r} is already attached to {self.name!r}")
        index.rebuild(self._segments)
        self._indexes.append(index)

    def detach_index(self, name: str) -> None:
        self._indexes = [
            index for index in self._indexes if index.name.lower() != name.lower()
        ]

    # -- access -------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows (segment order, then insertion order)."""
        for segment in range(self.num_segments):
            yield from self.segment_view(segment)

    def segment_rows(self, segment: int) -> List[Row]:
        """Rows stored on one segment."""
        return list(self.segment_view(segment))

    def segment_view(self, segment: int) -> Sequence[Row]:
        """Read-only view of one segment's rows (no copy — do not mutate).

        In columnar mode this is the segment's cached row-tuple
        materialization (built lazily, invalidated per segment on mutation);
        in row mode it is the backing list itself.
        """
        store = self._segments[segment]
        if self.columnar_storage:
            return store.rows_view()
        return store

    def segment_columns(self, segment: int) -> Tuple[Sequence[Any], ...]:
        """Columnar view of one segment.

        In columnar mode these are the live packed columns — the source of
        truth, no materialization at all.  In row mode the transposed view is
        cached per segment until *that segment* next mutates (DML touching
        one segment never recomputes another's view).
        """
        if self.columnar_storage:
            return self._segments[segment].columns_view()
        entry = self._columnar_cache.get(segment)
        version = self._segment_versions[segment]
        if entry is not None and entry[0] == version:
            return entry[1]
        rows = self._segments[segment]
        if rows:
            columns = tuple(list(column) for column in zip(*rows))
        else:
            columns = tuple([] for _ in self.schema)
        self._columnar_cache[segment] = (version, columns)
        return columns

    def segment_batch(
        self,
        segment: int,
        column_indices: Sequence[int],
        *,
        positions=None,
    ) -> "ColumnBatch":
        """One segment's values for the given columns, as a ``ColumnBatch``.

        Zero-copy-ish export for the aggregate fast path and the parallel
        worker pool: the batch holds references to the stored columns (packed
        columns in columnar mode, the cached transposed view in row mode),
        and ``ColumnBatch`` pickles packed columns as typed buffers when a
        batch is shipped to a worker process.

        ``positions`` (ascending row positions within the segment, e.g. a
        vectorized WHERE's selection) gathers just those rows per column —
        late materialization for filtered aggregates, no row tuples built.
        """
        from .vectorized import ColumnBatch

        columns = self.segment_columns(segment)
        if positions is None:
            exported = tuple(columns[i] for i in column_indices)
            for column in exported:
                # Build packed-column ndarray views now (they are cached), so
                # the timed per-segment folds measure the fold itself — the
                # same place the row-mode transpose cost is paid.
                warm = getattr(column, "values_array", None)
                if warm is not None:
                    warm()
                    column.null_mask()
            return ColumnBatch(exported)
        return ColumnBatch(
            tuple(gather_positions(columns[i], positions) for i in column_indices)
        )

    def segment_sizes(self) -> List[int]:
        """Number of rows per segment (used to report distribution skew)."""
        return [len(segment) for segment in self._segments]

    def to_dicts(self) -> List[dict]:
        """Materialize all rows as dictionaries keyed by column name."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows()]

    # -- reorganisation -----------------------------------------------------

    def redistribute(self, num_segments: int, distributed_by: Optional[str] = None) -> None:
        """Re-partition the table across a new number of segments.

        The benchmark harness uses this to sweep the segment count for the
        Figure 4 / Figure 5 experiments without reloading data.
        """
        if num_segments < 1:
            raise ExecutionError("a table needs at least one segment")
        rows = list(self.rows())
        self.num_segments = num_segments
        self.distributed_by = distributed_by if distributed_by is not None else self.distributed_by
        self._distribution_index = (
            self.schema.index_of(self.distributed_by) if self.distributed_by else None
        )
        self._segments = [self._new_segment() for _ in range(num_segments)]
        self._row_count = 0
        self._round_robin_cursor = 0
        self._data_version += 1
        self._segment_versions = [0] * num_segments
        self._columnar_cache.clear()
        for row in rows:
            self._segments[self._segment_for(row)].append(row)
            self._row_count += 1
        # Entries are (segment, position) pairs, so moving rows between
        # segments invalidates every index: rebuild.
        for index in self._indexes:
            index.rebuild(self._segments)
