"""In-memory table storage with shared-nothing segment partitioning.

The Greenplum database the paper evaluates on stores every table
hash-distributed across *segments* (one query process per core).  Aggregation
then runs the user-defined aggregate's transition function independently per
segment and combines the partial states with the merge function
(Section 3.1.1).  This module reproduces that storage model: a
:class:`Table` is a list of row tuples plus a partitioning of row indices
into segments, so the executor can run per-segment scans and the benchmark
harness can measure per-segment work.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError, TypeMismatchError
from .schema import Schema
from .types import coerce_value, hashable_key

__all__ = ["Row", "Table"]

Row = Tuple[Any, ...]


def _distribution_hash(value: Any) -> int:
    """Stable hash used to assign a row to a segment.

    Python's builtin ``hash`` of strings is randomized per process which would
    make segment assignment (and therefore simulated parallel timings)
    non-deterministic across runs, so we use a small FNV-1a implementation.
    """
    data = repr(hashable_key(value)).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class Table:
    """A named, typed, row-oriented table distributed across segments.

    Parameters
    ----------
    name:
        Table name as registered in the catalog.
    schema:
        Column names and types.
    num_segments:
        Number of shared-nothing segments the table is distributed over.
    distributed_by:
        Optional column name used for hash distribution; rows with equal
        distribution keys land on the same segment (Greenplum's
        ``DISTRIBUTED BY``).  When omitted, rows are distributed round-robin,
        which is what Greenplum calls ``DISTRIBUTED RANDOMLY``.
    temporary:
        Whether the table is a session temp table (the inter-iteration state
        tables created by driver functions are temporary).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        num_segments: int = 1,
        distributed_by: Optional[str] = None,
        temporary: bool = False,
    ) -> None:
        if num_segments < 1:
            raise ExecutionError("a table needs at least one segment")
        self.name = name
        self.schema = schema
        self.temporary = temporary
        self.num_segments = num_segments
        self.distributed_by = distributed_by
        if distributed_by is not None:
            # Validates the column exists.
            self._distribution_index: Optional[int] = schema.index_of(distributed_by)
        else:
            self._distribution_index = None
        self._segments: List[List[Row]] = [[] for _ in range(num_segments)]
        self._row_count = 0
        self._round_robin_cursor = 0
        # Monotonic mutation counter; the cached columnar views below are
        # valid only for the version they were built at, and ANALYZE
        # statistics snapshots record it for staleness tracking.
        self._data_version = 0
        self._columnar_cache: dict = {}
        #: Secondary indexes attached by the catalog
        #: (:mod:`repro.engine.index`), maintained by the mutation hooks
        #: below: inserts append entries, TRUNCATE clears, deletes remap one
        #: segment's surviving positions, and bulk loads / full replaces /
        #: redistribution rebuild.
        self._indexes: List = []

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table({self.name!r}, rows={self._row_count}, segments={self.num_segments})"

    @property
    def column_names(self) -> List[str]:
        return self.schema.names

    # -- mutation -----------------------------------------------------------

    def _coerce_row(self, values: Sequence[Any]) -> Row:
        if len(values) != len(self.schema):
            raise TypeMismatchError(
                f"table {self.name!r} has {len(self.schema)} columns, got {len(values)} values"
            )
        return tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(values, self.schema)
        )

    def _segment_for(self, row: Row) -> int:
        if self.num_segments == 1:
            return 0
        if self._distribution_index is not None:
            return _distribution_hash(row[self._distribution_index]) % self.num_segments
        segment = self._round_robin_cursor % self.num_segments
        self._round_robin_cursor += 1
        return segment

    #: At or above this many incoming rows, ``insert_many`` on an indexed
    #: table suspends incremental maintenance and rebuilds each index once at
    #: the end — a sorted index pays O(n) list-insert per incremental add, so
    #: bulk loads would otherwise degenerate to O(n²).
    _BULK_REBUILD_ROWS = 256

    def insert(self, values: Sequence[Any]) -> None:
        """Insert a single row (values in schema order)."""
        row = self._coerce_row(values)
        segment = self._segment_for(row)
        self._segments[segment].append(row)
        self._row_count += 1
        self._data_version += 1
        if self._indexes:
            position = len(self._segments[segment]) - 1
            for index in self._indexes:
                index.add(row[index.column_index], segment, position)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        if self._indexes:
            rows = list(rows)
            if len(rows) >= self._BULK_REBUILD_ROWS:
                return self._with_index_rebuild(lambda: self._insert_all(rows))
        return self._insert_all(rows)

    def _insert_all(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def _with_index_rebuild(self, mutate) -> int:
        """Run a bulk mutation with index maintenance suspended, then rebuild.

        The rebuild runs even when the mutation raises partway (e.g. a row
        failing type coercion mid-load): rows inserted before the failure are
        in the table, so skipping the rebuild would leave indexes silently
        stale and index probes returning wrong results.
        """
        indexes, self._indexes = self._indexes, []
        try:
            return mutate()
        finally:
            self._indexes = indexes
            for index in indexes:
                index.rebuild(self._segments)

    def truncate(self) -> None:
        """Remove all rows but keep the schema and distribution policy."""
        self._segments = [[] for _ in range(self.num_segments)]
        self._row_count = 0
        self._round_robin_cursor = 0
        self._data_version += 1
        for index in self._indexes:
            index.clear()

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Replace the full contents (used by UPDATE and CREATE TABLE AS)."""
        if self._indexes:
            return self._with_index_rebuild(lambda: self._replace_all(rows))
        return self._replace_all(rows)

    def _replace_all(self, rows: Iterable[Sequence[Any]]) -> int:
        self.truncate()
        return self.insert_many(rows)

    def delete_where(self, predicate) -> int:
        """Delete rows for which ``predicate(row_dict)`` is true; returns count deleted."""
        names = self.schema.names
        return self._delete_segments(lambda row: predicate(dict(zip(names, row))))

    def delete_where_rows(self, predicate) -> int:
        """Delete rows for which ``predicate(row_tuple)`` is true; returns count.

        The positional-tuple counterpart of :meth:`delete_where`, used by the
        compiled DML path: the executor hands a predicate closure compiled
        against the schema's column layout, so no per-row dict is built.
        Rows stay on their segments — deletion never rehashes.
        """
        return self._delete_segments(predicate)

    def _delete_segments(self, predicate) -> int:
        """Shared per-segment deletion; indexes remap surviving positions."""
        deleted = 0
        for segment_index, segment in enumerate(self._segments):
            if self._indexes:
                kept: List[Row] = []
                kept_positions: List[int] = []
                for position, row in enumerate(segment):
                    if not predicate(row):
                        kept.append(row)
                        kept_positions.append(position)
                removed = len(segment) - len(kept)
                if removed:
                    self._segments[segment_index] = kept
                    for index in self._indexes:
                        index.remap_segment(segment_index, kept_positions)
                    deleted += removed
            else:
                kept = [row for row in segment if not predicate(row)]
                removed = len(segment) - len(kept)
                if removed:
                    self._segments[segment_index] = kept
                    deleted += removed
        if deleted:
            self._row_count -= deleted
            self._data_version += 1
        return deleted

    # -- secondary indexes ----------------------------------------------------

    @property
    def indexes(self) -> List:
        """Secondary indexes attached to this table (catalog-owned objects)."""
        return list(self._indexes)

    def attach_index(self, index) -> None:
        """Attach (and build) a secondary index; the catalog calls this."""
        if any(existing.name.lower() == index.name.lower() for existing in self._indexes):
            raise ExecutionError(f"index {index.name!r} is already attached to {self.name!r}")
        index.rebuild(self._segments)
        self._indexes.append(index)

    def detach_index(self, name: str) -> None:
        self._indexes = [
            index for index in self._indexes if index.name.lower() != name.lower()
        ]

    # -- access -------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows (segment order, then insertion order)."""
        for segment in self._segments:
            yield from segment

    def segment_rows(self, segment: int) -> List[Row]:
        """Rows stored on one segment."""
        return list(self._segments[segment])

    def segment_view(self, segment: int) -> Sequence[Row]:
        """Read-only view of one segment's rows (no copy — do not mutate)."""
        return self._segments[segment]

    def segment_columns(self, segment: int) -> Tuple[List[Any], ...]:
        """Columnar view of one segment, cached until the next mutation.

        The executor's vectorized aggregate path slices these directly into
        per-segment :class:`~repro.engine.vectorized.ColumnBatch` streams, so
        the columns are materialized at most once per table version however
        many aggregates a query (or a benchmark sweep) runs.
        """
        entry = self._columnar_cache.get(segment)
        if entry is not None and entry[0] == self._data_version:
            return entry[1]
        rows = self._segments[segment]
        if rows:
            columns = tuple(list(column) for column in zip(*rows))
        else:
            columns = tuple([] for _ in self.schema)
        self._columnar_cache[segment] = (self._data_version, columns)
        return columns

    def segment_batch(self, segment: int, column_indices: Sequence[int]) -> "ColumnBatch":
        """One segment's values for the given columns, as a ``ColumnBatch``.

        Zero-copy-ish export for the aggregate fast path and the parallel
        worker pool: the batch holds references into the cached columnar view
        (no per-row materialization; the columns are built at most once per
        table version), and ``ColumnBatch`` itself pickles float columns as
        packed double buffers when a batch is shipped to a worker process.
        """
        from .vectorized import ColumnBatch

        columns = self.segment_columns(segment)
        return ColumnBatch(tuple(columns[i] for i in column_indices))

    def segment_sizes(self) -> List[int]:
        """Number of rows per segment (used to report distribution skew)."""
        return [len(segment) for segment in self._segments]

    def to_dicts(self) -> List[dict]:
        """Materialize all rows as dictionaries keyed by column name."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows()]

    # -- reorganisation -----------------------------------------------------

    def redistribute(self, num_segments: int, distributed_by: Optional[str] = None) -> None:
        """Re-partition the table across a new number of segments.

        The benchmark harness uses this to sweep the segment count for the
        Figure 4 / Figure 5 experiments without reloading data.
        """
        if num_segments < 1:
            raise ExecutionError("a table needs at least one segment")
        rows = list(self.rows())
        self.num_segments = num_segments
        self.distributed_by = distributed_by if distributed_by is not None else self.distributed_by
        self._distribution_index = (
            self.schema.index_of(self.distributed_by) if self.distributed_by else None
        )
        self._segments = [[] for _ in range(num_segments)]
        self._row_count = 0
        self._round_robin_cursor = 0
        self._data_version += 1
        self._columnar_cache.clear()
        for row in rows:
            self._segments[self._segment_for(row)].append(row)
            self._row_count += 1
        # Entries are (segment, position) pairs, so moving rows between
        # segments invalidates every index: rebuild.
        for index in self._indexes:
            index.rebuild(self._segments)
