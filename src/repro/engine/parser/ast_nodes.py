"""Statement-level AST nodes produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..expressions import Expression

__all__ = [
    "Statement",
    "SelectItem",
    "TableRef",
    "SubquerySource",
    "FunctionSource",
    "Join",
    "OrderItem",
    "SelectStatement",
    "UnionStatement",
    "ColumnDefinition",
    "CreateTableStatement",
    "CreateTableAsStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "DropTableStatement",
    "TruncateStatement",
    "AlterTableRenameStatement",
    "CreateIndexStatement",
    "DropIndexStatement",
    "AnalyzeStatement",
    "ExplainStatement",
    "CreateMaterializedViewStatement",
    "DropMaterializedViewStatement",
    "RefreshMaterializedViewStatement",
]


class Statement:
    """Base class for executable SQL statements."""


@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A base-table reference in a FROM clause."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass
class SubquerySource:
    """A derived table: ``(SELECT ...) alias``."""

    select: "SelectStatement"
    alias: str


@dataclass
class FunctionSource:
    """A table function in FROM, e.g. ``generate_series(1, 10) t(i)``."""

    name: str
    args: List[Expression]
    alias: str
    column_names: List[str] = field(default_factory=list)


@dataclass
class Join:
    """A join between two FROM items."""

    left: object
    right: object
    kind: str = "inner"  # inner | left | cross
    condition: Optional[Expression] = None


@dataclass
class OrderItem:
    expression: Expression
    ascending: bool = True
    nulls_last: bool = True


@dataclass
class SelectStatement(Statement):
    select_items: List[SelectItem]
    from_items: List[object] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass
class UnionStatement(Statement):
    """``SELECT ... UNION [ALL] SELECT ...`` (chain of selects)."""

    selects: List[SelectStatement]
    all: bool = False


@dataclass
class ColumnDefinition:
    name: str
    type_name: str


@dataclass
class CreateTableStatement(Statement):
    name: str
    columns: List[ColumnDefinition]
    temporary: bool = False
    if_not_exists: bool = False
    distributed_by: Optional[str] = None
    distributed_randomly: bool = False


@dataclass
class CreateTableAsStatement(Statement):
    name: str
    select: Statement  # SelectStatement or UnionStatement
    temporary: bool = False
    replace: bool = False
    distributed_by: Optional[str] = None


@dataclass
class InsertStatement(Statement):
    table: str
    columns: List[str] = field(default_factory=list)
    values_rows: List[List[Expression]] = field(default_factory=list)
    select: Optional[Statement] = None


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class DropTableStatement(Statement):
    names: List[str]
    if_exists: bool = False


@dataclass
class TruncateStatement(Statement):
    name: str


@dataclass
class AlterTableRenameStatement(Statement):
    old_name: str
    new_name: str


@dataclass
class CreateIndexStatement(Statement):
    """``CREATE INDEX name ON table [USING hash|btree] (column)``."""

    name: str
    table: str
    column: str
    method: str = "sorted"  # sorted (btree analog) | hash
    if_not_exists: bool = False


@dataclass
class DropIndexStatement(Statement):
    names: List[str]
    if_exists: bool = False


@dataclass
class CreateMaterializedViewStatement(Statement):
    """``CREATE MATERIALIZED VIEW name AS SELECT ...``."""

    name: str
    select: Statement  # SelectStatement or UnionStatement
    sql: Optional[str] = None  # defining-query text, kept for observability
    if_not_exists: bool = False


@dataclass
class DropMaterializedViewStatement(Statement):
    names: List[str]
    if_exists: bool = False


@dataclass
class RefreshMaterializedViewStatement(Statement):
    name: str


@dataclass
class AnalyzeStatement(Statement):
    """``ANALYZE [table]`` — collect planner statistics into the catalog."""

    table: Optional[str] = None


@dataclass
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE] <statement>`` — show (and optionally run) the plan."""

    target: Statement
    analyze: bool = False
