"""Recursive-descent parser for the engine's SQL subset.

The grammar covers the SQL surface that MADlib-style macro-programming needs
(Section 3.1 of the paper): SELECT with joins, grouping, ordering and window
clauses; CREATE [TEMP] TABLE ... AS SELECT for inter-iteration state staging;
INSERT / UPDATE / DELETE; DROP / TRUNCATE / ALTER RENAME; array literals and
subscripts; CAST and ``::`` casts; and ``%(name)s`` bind parameters used by
templated queries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import SQLSyntaxError
from ..expressions import (
    ArrayLiteral,
    Between,
    BinaryOp,
    CaseExpr,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Parameter,
    Star,
    Subscript,
    UnaryOp,
    WindowCall,
    WindowSpec,
)
from .ast_nodes import (
    AlterTableRenameStatement,
    AnalyzeStatement,
    ColumnDefinition,
    CreateIndexStatement,
    CreateMaterializedViewStatement,
    CreateTableAsStatement,
    CreateTableStatement,
    DeleteStatement,
    DropIndexStatement,
    DropMaterializedViewStatement,
    DropTableStatement,
    ExplainStatement,
    FunctionSource,
    InsertStatement,
    Join,
    OrderItem,
    RefreshMaterializedViewStatement,
    SelectItem,
    SelectStatement,
    Statement,
    SubquerySource,
    TableRef,
    TruncateStatement,
    UnionStatement,
    UpdateStatement,
)
from .lexer import Token, tokenize

__all__ = ["parse_statement", "parse_script", "parse_expression"]


_TABLE_FUNCTIONS = {"generate_series"}


class _Parser:
    def __init__(self, tokens: List[Token], sql: Optional[str] = None) -> None:
        self.tokens = tokens
        self.position = 0
        # Original statement text, when available: lets CREATE MATERIALIZED
        # VIEW capture its defining-query text for catalog observability.
        self._sql = sql

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        return self.current.matches(kind, value)

    def check_keyword(self, *words: str) -> bool:
        return self.current.kind == "keyword" and self.current.value.lower() in words

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.check_keyword(*words):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            expected = value or kind
            raise SQLSyntaxError(
                f"expected {expected!r} but found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.check_keyword(word):
            raise SQLSyntaxError(
                f"expected keyword {word!r} but found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_name(self) -> str:
        # Allow non-reserved keywords to be used as identifiers where a name
        # is required (e.g. a column called "values" would be unusual, but
        # "state", "left", "right" are common in MADlib scripts).
        if self.current.kind in ("name", "keyword"):
            return self.advance().value
        raise SQLSyntaxError(
            f"expected identifier but found {self.current.value!r}", self.current.position
        )

    # -- entry points ----------------------------------------------------------

    def parse_script(self) -> List[Statement]:
        statements: List[Statement] = []
        while not self.check("eof"):
            if self.accept("operator", ";"):
                continue
            statements.append(self.parse_statement())
            if not self.check("eof"):
                self.expect("operator", ";")
        return statements

    def parse_statement(self) -> Statement:
        if self.check_keyword("select"):
            return self.parse_select_union()
        if self.check_keyword("create"):
            return self.parse_create()
        if self.check_keyword("insert"):
            return self.parse_insert()
        if self.check_keyword("update"):
            return self.parse_update()
        if self.check_keyword("delete"):
            return self.parse_delete()
        if self.check_keyword("drop"):
            return self.parse_drop()
        if self.check_keyword("truncate"):
            return self.parse_truncate()
        if self.check_keyword("alter"):
            return self.parse_alter()
        if self.check_keyword("explain"):
            return self.parse_explain()
        if self.check_keyword("analyze"):
            return self.parse_analyze()
        # "refresh" is not a reserved keyword (tables may use the name), so it
        # only acts as a statement head in the exact REFRESH MATERIALIZED VIEW
        # position, where no other statement can start.
        if self.check("name", "refresh"):
            return self.parse_refresh_matview()
        raise SQLSyntaxError(
            f"unsupported statement starting with {self.current.value!r}",
            self.current.position,
        )

    # -- SELECT ------------------------------------------------------------------

    def parse_select_union(self) -> Statement:
        first = self.parse_select()
        selects = [first]
        union_all = False
        while self.accept_keyword("union"):
            union_all = bool(self.accept_keyword("all")) or union_all
            selects.append(self.parse_select())
        if len(selects) == 1:
            return first
        return UnionStatement(selects, all=union_all)

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = bool(self.accept_keyword("distinct"))
        select_items = [self.parse_select_item()]
        while self.accept("operator", ","):
            select_items.append(self.parse_select_item())

        from_items: List[object] = []
        if self.accept_keyword("from"):
            from_items.append(self.parse_from_item())
            while True:
                if self.accept("operator", ","):
                    from_items.append(self.parse_from_item())
                    continue
                join = self.try_parse_join(from_items)
                if join:
                    continue
                break

        where = self.parse_expression() if self.accept_keyword("where") else None

        group_by: List[Expression] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expression())
            while self.accept("operator", ","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self.accept_keyword("having") else None

        order_by: List[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept("operator", ","):
                order_by.append(self.parse_order_item())

        limit = None
        offset = None
        if self.accept_keyword("limit"):
            limit = int(self.expect("number").value)
        if self.accept_keyword("offset"):
            offset = int(self.expect("number").value)

        return SelectStatement(
            select_items=select_items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.current.kind == "name":
            alias = self.advance().value
        return SelectItem(expression, alias)

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self.accept_keyword("asc"):
            ascending = True
        elif self.accept_keyword("desc"):
            ascending = False
        nulls_last = True
        if self.accept_keyword("nulls"):
            if self.accept_keyword("first"):
                nulls_last = False
            else:
                self.expect_keyword("last")
        return OrderItem(expression, ascending, nulls_last)

    def parse_from_item(self):
        if self.accept("operator", "("):
            # Either a subquery or a parenthesized join; only subqueries supported.
            select = self.parse_select_union()
            self.expect("operator", ")")
            self.accept_keyword("as")
            alias = self.expect_name()
            return SubquerySource(select, alias)  # type: ignore[arg-type]
        name = self.expect_name()
        if name.lower() in _TABLE_FUNCTIONS and self.check("operator", "("):
            self.expect("operator", "(")
            args: List[Expression] = []
            if not self.check("operator", ")"):
                args.append(self.parse_expression())
                while self.accept("operator", ","):
                    args.append(self.parse_expression())
            self.expect("operator", ")")
            alias = name
            column_names: List[str] = []
            if self.accept_keyword("as") or self.current.kind == "name":
                alias = self.expect_name()
                if self.accept("operator", "("):
                    column_names.append(self.expect_name())
                    while self.accept("operator", ","):
                        column_names.append(self.expect_name())
                    self.expect("operator", ")")
            return FunctionSource(name, args, alias, column_names)
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.current.kind == "name":
            alias = self.advance().value
        return TableRef(name, alias)

    def try_parse_join(self, from_items: List[object]) -> bool:
        kind = None
        if self.accept_keyword("cross"):
            kind = "cross"
            self.expect_keyword("join")
        elif self.accept_keyword("inner"):
            kind = "inner"
            self.expect_keyword("join")
        elif self.accept_keyword("left"):
            kind = "left"
            self.accept_keyword("outer")
            self.expect_keyword("join")
        elif self.accept_keyword("join"):
            kind = "inner"
        if kind is None:
            return False
        right = self.parse_from_item()
        condition = None
        if kind != "cross":
            self.expect_keyword("on")
            condition = self.parse_expression()
        left = from_items.pop()
        from_items.append(Join(left, right, kind, condition))
        return True

    # -- DDL / DML ------------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_keyword("create")
        if self.check_keyword("index"):
            return self.parse_create_index()
        if self.check("name", "materialized"):
            return self.parse_create_matview()
        temporary = bool(self.accept_keyword("temp", "temporary"))
        self.expect_keyword("table")
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        name = self.expect_name()
        while self.accept("operator", "."):
            # Schema-qualified names are flattened ("madlib.linregr_model").
            name = name + "_" + self.expect_name()
        if self.check_keyword("as"):
            self.expect_keyword("as")
            select = self.parse_select_union()
            distributed_by = self._parse_distribution()[0]
            return CreateTableAsStatement(
                name, select, temporary=temporary, distributed_by=distributed_by
            )
        self.expect("operator", "(")
        columns = [self.parse_column_definition()]
        while self.accept("operator", ","):
            columns.append(self.parse_column_definition())
        self.expect("operator", ")")
        distributed_by, distributed_randomly = self._parse_distribution()
        return CreateTableStatement(
            name,
            columns,
            temporary=temporary,
            if_not_exists=if_not_exists,
            distributed_by=distributed_by,
            distributed_randomly=distributed_randomly,
        )

    def parse_create_matview(self) -> CreateMaterializedViewStatement:
        self.expect("name", "materialized")
        self.expect("name", "view")
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        name = self.expect_name()
        self.expect_keyword("as")
        start = self.current.position
        select = self.parse_select_union()
        sql = None
        if self._sql is not None:
            # Slice the defining-query text out of the original statement (the
            # eof token's position is len(sql), so this also works unterminated).
            sql = self._sql[start : self.current.position].strip().rstrip(";").strip()
        return CreateMaterializedViewStatement(
            name, select, sql=sql, if_not_exists=if_not_exists
        )

    def parse_refresh_matview(self) -> RefreshMaterializedViewStatement:
        self.expect("name", "refresh")
        self.expect("name", "materialized")
        self.expect("name", "view")
        return RefreshMaterializedViewStatement(self.expect_name())

    def _parse_distribution(self) -> Tuple[Optional[str], bool]:
        if not self.accept_keyword("distributed"):
            return None, False
        if self.accept_keyword("randomly"):
            return None, True
        self.expect_keyword("by")
        self.expect("operator", "(")
        column = self.expect_name()
        self.expect("operator", ")")
        return column, False

    def parse_column_definition(self) -> ColumnDefinition:
        name = self.expect_name()
        type_parts = [self.expect_name()]
        # Multi-word types: "double precision", "character varying".
        while self.current.kind in ("name", "keyword") and self.current.value.lower() in (
            "precision",
            "varying",
        ):
            type_parts.append(self.advance().value)
        type_name = " ".join(type_parts)
        if self.accept("operator", "["):
            self.expect("operator", "]")
            type_name += "[]"
        # Ignore column constraints we do not enforce (NOT NULL, PRIMARY KEY...).
        while self.current.kind in ("name", "keyword") and not self.check("operator", ",") and \
                not self.check("operator", ")"):
            if self.current.value.lower() in ("not", "null", "primary", "key", "unique", "default"):
                self.advance()
                if self.tokens[self.position - 1].value.lower() == "default":
                    self.parse_expression()
            else:
                break
        return ColumnDefinition(name, type_name)

    def parse_create_index(self) -> CreateIndexStatement:
        self.expect_keyword("index")
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        name = self.expect_name()
        self.expect_keyword("on")
        table = self.expect_name()
        method = "sorted"
        if self.accept_keyword("using"):
            word = self.expect_name().lower()
            if word == "hash":
                method = "hash"
            elif word in ("btree", "sorted"):
                method = "sorted"
            else:
                raise SQLSyntaxError(
                    f"unknown index method {word!r} (expected hash or btree)",
                    self.tokens[self.position - 1].position,
                )
        self.expect("operator", "(")
        column = self.expect_name()
        self.expect("operator", ")")
        return CreateIndexStatement(
            name, table, column, method=method, if_not_exists=if_not_exists
        )

    def parse_explain(self) -> ExplainStatement:
        self.expect_keyword("explain")
        analyze = bool(self.accept_keyword("analyze"))
        if self.check_keyword("explain"):
            raise SQLSyntaxError("EXPLAIN cannot be nested", self.current.position)
        return ExplainStatement(self.parse_statement(), analyze=analyze)

    def parse_analyze(self) -> AnalyzeStatement:
        self.expect_keyword("analyze")
        if self.check("eof") or self.check("operator", ";"):
            return AnalyzeStatement(None)
        return AnalyzeStatement(self.expect_name())

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_name()
        columns: List[str] = []
        if self.accept("operator", "("):
            columns.append(self.expect_name())
            while self.accept("operator", ","):
                columns.append(self.expect_name())
            self.expect("operator", ")")
        if self.accept_keyword("values"):
            rows = [self.parse_value_row()]
            while self.accept("operator", ","):
                rows.append(self.parse_value_row())
            return InsertStatement(table, columns, values_rows=rows)
        select = self.parse_select_union()
        return InsertStatement(table, columns, select=select)

    def parse_value_row(self) -> List[Expression]:
        self.expect("operator", "(")
        row = [self.parse_expression()]
        while self.accept("operator", ","):
            row.append(self.parse_expression())
        self.expect("operator", ")")
        return row

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self.expect_name()
        self.expect_keyword("set")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self.expect_name()
            self.expect("operator", "=")
            assignments.append((column, self.parse_expression()))
            if not self.accept("operator", ","):
                break
        where = self.parse_expression() if self.accept_keyword("where") else None
        return UpdateStatement(table, assignments, where)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_name()
        where = self.parse_expression() if self.accept_keyword("where") else None
        return DeleteStatement(table, where)

    def parse_drop(self) -> Statement:
        self.expect_keyword("drop")
        dropping_matview = False
        if self.check("name", "materialized"):
            self.advance()
            self.expect("name", "view")
            dropping_matview = True
        dropping_index = False if dropping_matview else bool(self.accept_keyword("index"))
        if not dropping_index and not dropping_matview:
            self.expect_keyword("table")
        if_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            if_exists = True
        names = [self.expect_name()]
        while self.accept("operator", ","):
            names.append(self.expect_name())
        if dropping_matview:
            return DropMaterializedViewStatement(names, if_exists)
        if dropping_index:
            return DropIndexStatement(names, if_exists)
        return DropTableStatement(names, if_exists)

    def parse_truncate(self) -> TruncateStatement:
        self.expect_keyword("truncate")
        self.accept_keyword("table")
        return TruncateStatement(self.expect_name())

    def parse_alter(self) -> AlterTableRenameStatement:
        self.expect_keyword("alter")
        self.expect_keyword("table")
        old = self.expect_name()
        self.expect_keyword("rename")
        self.expect_keyword("to")
        new = self.expect_name()
        return AlterTableRenameStatement(old, new)

    # -- expressions -------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        while True:
            if self.current.kind == "operator" and self.current.value in (
                "=", "!=", "<>", "<", "<=", ">", ">=",
            ):
                op = self.advance().value
                left = BinaryOp(op, left, self.parse_additive())
                continue
            if self.check_keyword("is"):
                self.advance()
                negated = bool(self.accept_keyword("not"))
                self.expect_keyword("null")
                left = IsNull(left, negated)
                continue
            if self.check_keyword("like"):
                self.advance()
                left = BinaryOp("like", left, self.parse_additive())
                continue
            if self.check_keyword("between"):
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("and")
                high = self.parse_additive()
                left = Between(left, low, high)
                continue
            if self.check_keyword("not") and self.tokens[self.position + 1].matches("keyword", "in"):
                self.advance()
                self.advance()
                left = self._parse_in(left, negated=True)
                continue
            if self.check_keyword("not") and self.tokens[self.position + 1].matches("keyword", "between"):
                self.advance()
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("and")
                high = self.parse_additive()
                left = Between(left, low, high, negated=True)
                continue
            if self.check_keyword("in"):
                self.advance()
                left = self._parse_in(left, negated=False)
                continue
            break
        return left

    def _parse_in(self, operand: Expression, negated: bool) -> Expression:
        self.expect("operator", "(")
        items = [self.parse_expression()]
        while self.accept("operator", ","):
            items.append(self.parse_expression())
        self.expect("operator", ")")
        return InList(operand, items, negated)

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.current.kind == "operator" and self.current.value in ("+", "-", "||"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.current.kind == "operator" and self.current.value in ("*", "/", "%", "^"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expression:
        if self.current.kind == "operator" and self.current.value in ("-", "+"):
            op = self.advance().value
            return UnaryOp(op, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expression:
        expression = self.parse_primary()
        while True:
            if self.check("operator", "["):
                self.advance()
                index = self.parse_expression()
                self.expect("operator", "]")
                expression = Subscript(expression, index)
                continue
            if self.check("operator", "::"):
                self.advance()
                type_parts = [self.expect_name()]
                while self.current.kind in ("name", "keyword") and self.current.value.lower() in (
                    "precision", "varying",
                ):
                    type_parts.append(self.advance().value)
                type_name = " ".join(type_parts)
                if self.accept("operator", "["):
                    self.expect("operator", "]")
                    type_name += "[]"
                expression = Cast(expression, type_name)
                continue
            if self.check("operator", "."):
                # Composite-field access like (linregr(...)).coef is treated as
                # a column qualifier when the base is a ColumnRef and otherwise
                # an error; we only need the ColumnRef case.
                if isinstance(expression, ColumnRef) and expression.qualifier is None:
                    self.advance()
                    if self.accept("operator", "*"):
                        expression = Star(expression.name)
                    else:
                        field_name = self.expect_name()
                        expression = ColumnRef(field_name, expression.name)
                    continue
            break
        return expression

    def parse_primary(self) -> Expression:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            if any(c in text for c in ".eE"):
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "parameter":
            self.advance()
            return Parameter(token.value)
        if token.kind == "keyword":
            word = token.value.lower()
            if word == "null":
                self.advance()
                return Literal(None)
            if word == "true":
                self.advance()
                return Literal(True)
            if word == "false":
                self.advance()
                return Literal(False)
            if word == "case":
                return self.parse_case()
            if word == "cast":
                return self.parse_cast()
            if word == "array":
                return self.parse_array()
            if word == "distinct":
                raise SQLSyntaxError("misplaced DISTINCT", token.position)
            # Non-reserved keyword used as identifier/function name.
            return self.parse_name_expression()
        if token.kind == "name":
            return self.parse_name_expression()
        if token.kind == "operator" and token.value == "(":
            self.advance()
            expression = self.parse_expression()
            self.expect("operator", ")")
            return expression
        if token.kind == "operator" and token.value == "*":
            self.advance()
            return Star()
        raise SQLSyntaxError(f"unexpected token {token.value!r}", token.position)

    def parse_name_expression(self) -> Expression:
        name = self.advance().value
        if self.check("operator", "("):
            return self.parse_function_call(name)
        if self.check("operator", ".") and self.tokens[self.position + 1].matches("operator", "*"):
            self.advance()
            self.advance()
            return Star(name)
        return ColumnRef(name)

    def parse_function_call(self, name: str) -> Expression:
        self.expect("operator", "(")
        distinct = bool(self.accept_keyword("distinct"))
        args: List[Expression] = []
        star = False
        if self.check("operator", "*"):
            self.advance()
            star = True
        elif not self.check("operator", ")"):
            args.append(self.parse_expression())
            while self.accept("operator", ","):
                args.append(self.parse_expression())
        self.expect("operator", ")")
        call = FunctionCall(name, args, distinct=distinct, star=star)
        if self.check_keyword("over"):
            self.advance()
            spec = self.parse_window_spec()
            return WindowCall(call, spec)
        return call

    def parse_window_spec(self) -> WindowSpec:
        self.expect("operator", "(")
        partition_by: List[Expression] = []
        order_by: List[Tuple[Expression, bool]] = []
        if self.accept_keyword("partition"):
            self.expect_keyword("by")
            partition_by.append(self.parse_expression())
            while self.accept("operator", ","):
                partition_by.append(self.parse_expression())
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                expression = self.parse_expression()
                ascending = True
                if self.accept_keyword("desc"):
                    ascending = False
                else:
                    self.accept_keyword("asc")
                order_by.append((expression, ascending))
                if not self.accept("operator", ","):
                    break
        self.expect("operator", ")")
        return WindowSpec(partition_by, order_by)

    def parse_case(self) -> Expression:
        self.expect_keyword("case")
        whens: List[Tuple[Expression, Expression]] = []
        operand: Optional[Expression] = None
        if not self.check_keyword("when"):
            operand = self.parse_expression()
        while self.accept_keyword("when"):
            condition = self.parse_expression()
            if operand is not None:
                condition = BinaryOp("=", operand, condition)
            self.expect_keyword("then")
            result = self.parse_expression()
            whens.append((condition, result))
        else_result = None
        if self.accept_keyword("else"):
            else_result = self.parse_expression()
        self.expect_keyword("end")
        return CaseExpr(whens, else_result)

    def parse_cast(self) -> Expression:
        self.expect_keyword("cast")
        self.expect("operator", "(")
        operand = self.parse_expression()
        self.expect_keyword("as")
        type_parts = [self.expect_name()]
        while self.current.kind in ("name", "keyword") and self.current.value.lower() in (
            "precision", "varying",
        ):
            type_parts.append(self.advance().value)
        type_name = " ".join(type_parts)
        if self.accept("operator", "["):
            self.expect("operator", "]")
            type_name += "[]"
        self.expect("operator", ")")
        return Cast(operand, type_name)

    def parse_array(self) -> Expression:
        self.expect_keyword("array")
        self.expect("operator", "[")
        items: List[Expression] = []
        if not self.check("operator", "]"):
            items.append(self.parse_expression())
            while self.accept("operator", ","):
                items.append(self.parse_expression())
        self.expect("operator", "]")
        return ArrayLiteral(items)


def parse_statement(sql: str) -> Statement:
    """Parse a single SQL statement (a trailing semicolon is allowed)."""
    parser = _Parser(tokenize(sql), sql)
    statement = parser.parse_statement()
    parser.accept("operator", ";")
    if not parser.check("eof"):
        raise SQLSyntaxError(
            f"unexpected trailing input near {parser.current.value!r}",
            parser.current.position,
        )
    return statement


def parse_script(sql: str) -> List[Statement]:
    """Parse a semicolon-separated sequence of statements."""
    return _Parser(tokenize(sql), sql).parse_script()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone scalar expression (used by tests and templating validation)."""
    parser = _Parser(tokenize(sql))
    expression = parser.parse_expression()
    if not parser.check("eof"):
        raise SQLSyntaxError(
            f"unexpected trailing input near {parser.current.value!r}",
            parser.current.position,
        )
    return expression
