"""Tokenizer for the SQL subset understood by the engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ...errors import SQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit", "offset",
    "as", "and", "or", "not", "in", "is", "null", "true", "false", "between",
    "case", "when", "then", "else", "end", "cast", "distinct", "like",
    "create", "table", "temp", "temporary", "if", "exists", "drop", "truncate",
    "insert", "into", "values", "update", "set", "delete", "alter", "rename", "to",
    "join", "inner", "left", "right", "full", "outer", "cross", "on", "using",
    "union", "all", "asc", "desc", "array", "over", "partition",
    "distributed", "randomly", "replace", "nulls", "first", "last",
    "explain", "analyze", "index",
}

_TWO_CHAR_OPERATORS = {"<=", ">=", "!=", "<>", "||", "::"}
_SINGLE_CHAR_OPERATORS = set("+-*/%^=<>(),.[];")


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``keyword``, ``name``, ``number``, ``string``,
    ``operator``, ``parameter`` or ``eof``.
    """

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        if value is None:
            return True
        return self.value.lower() == value.lower()


def tokenize(sql: str) -> List[Token]:
    """Convert SQL text into a token list (always terminated by an ``eof`` token)."""
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        # Whitespace ---------------------------------------------------------
        if ch.isspace():
            i += 1
            continue
        # Comments -----------------------------------------------------------
        if ch == "-" and sql[i:i + 2] == "--":
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if ch == "/" and sql[i:i + 2] == "/*":
            end = sql.find("*/", i)
            if end == -1:
                raise SQLSyntaxError("unterminated block comment", i)
            i = end + 2
            continue
        # String literal -------------------------------------------------------
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= length:
                    raise SQLSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < length and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        # Quoted identifier ----------------------------------------------------
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token("name", sql[i + 1:j], i))
            i = j + 1
            continue
        # Parameter ``%(name)s`` ------------------------------------------------
        if ch == "%" and sql[i:i + 2] == "%(":
            end = sql.find(")s", i)
            if end == -1:
                raise SQLSyntaxError("unterminated parameter reference", i)
            tokens.append(Token("parameter", sql[i + 2:end], i))
            i = end + 2
            continue
        # Number ------------------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < length:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < length and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        # Identifier / keyword -------------------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (sql[j].isalnum() or sql[j] == "_" or sql[j] == "$"):
                j += 1
            word = sql[i:j]
            kind = "keyword" if word.lower() in KEYWORDS else "name"
            tokens.append(Token(kind, word, i))
            i = j
            continue
        # Operators ---------------------------------------------------------------------
        two = sql[i:i + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token("operator", two, i))
            i += 2
            continue
        if ch in _SINGLE_CHAR_OPERATORS or ch == "%":
            tokens.append(Token("operator", ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", length))
    return tokens
