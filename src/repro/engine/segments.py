"""Shared-nothing segment execution and aggregate timing statistics.

The paper's infrastructure evaluation (Section 4.4, Figures 4 and 5) measures
how the user-defined-aggregate building block scales with the number of
Greenplum *segments* (one query process per core).  Two regimes exist here:

**Simulated parallelism** (the default, ``Database(parallel=0)``): per-segment
transition folds are executed one after another on a single core while their
individual wall-clock times are recorded, and the harness reports

* ``serial_seconds`` — the sum of per-segment times (what one segment would
  pay to scan everything), and
* ``simulated_parallel_seconds`` — ``max`` of the per-segment times plus the
  merge and final phases, i.e. the elapsed time a shared-nothing cluster
  would observe if every segment ran concurrently.  This is a *projection
  from a model*, not a measurement — never present it as a measured speedup.

The substitution preserves the quantity Figure 5 studies (speedup of the
aggregation pattern with the number of segments) because the per-segment work
is embarrassingly parallel by construction: the transition function touches
only its segment's rows and the merge cost is independent of *n*.

**Measured parallelism** (``Database(parallel=N)``): per-segment folds really
run concurrently in the persistent worker pool of
:mod:`repro.engine.parallel`, and the timings additionally record
``measured_parallel_wall_seconds`` — the coordinator-observed wall clock of
the whole fan-out (dispatch + folds + IPC) — next to the worker-measured
per-segment fold times.  ``measured_parallel_seconds`` is then a true
elapsed-time counterpart to ``simulated_parallel_seconds``.

Per-segment folds run in one of two tiers (see ``docs/engine-execution.md``):
a **batched** tier that hands a segment's argument columns to the
aggregate's ``batch_transition`` kernel in a single call (built-in
aggregates and ``linregr``'s v0.3 kernel define one), and the
**row-at-a-time** fold, which is the fallback for user-defined aggregates,
order-sensitive aggregates (``array_agg``, ``string_agg``) and any batch
kernel that raises.  Both tiers are timed identically — on the coordinator
and inside pool workers — so the per-segment timing methodology is unchanged
across all three execution strategies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from .aggregates import AggregateDefinition, AggregateRunner
from .parallel import WorkerPoolError
from .vectorized import ColumnBatch, strict_filter_columns

__all__ = [
    "AggregateTimings",
    "ExecutionStats",
    "JoinStep",
    "ScanDetail",
    "SegmentedAggregator",
]


@dataclass
class AggregateTimings:
    """Wall-clock timings for one aggregate executed with the segmented path.

    ``per_segment_seconds`` are always the fold times themselves: measured on
    the coordinator when segments run one after another, measured *inside*
    the workers when the pool executes them.  ``measured_parallel_wall_seconds``
    and ``num_workers`` are populated only when the fan-out really ran in the
    worker pool.
    """

    aggregate_name: str
    per_segment_seconds: List[float] = field(default_factory=list)
    merge_seconds: float = 0.0
    final_seconds: float = 0.0
    rows_per_segment: List[int] = field(default_factory=list)
    #: Coordinator-observed wall clock of the parallel per-segment phase
    #: (dispatch + worker folds + IPC); ``None`` when segments ran in-process.
    measured_parallel_wall_seconds: Optional[float] = None
    #: Worker-pool size that executed the fan-out; ``0`` = in-process.
    num_workers: int = 0
    #: Number of groups this aggregate was evaluated over; ``0`` for a plain
    #: (ungrouped) aggregate.  Grouped statements report one timings object
    #: per aggregate call with the per-group work folded together, so
    #: ``simulated_parallel_seconds`` / ``measured_parallel_seconds`` stay
    #: comparable between grouped and ungrouped statements.
    num_groups: int = 0
    #: True when the statement's phase one ran as the *two-phase grouped
    #: dispatch* (one worker task per segment building a partial group table).
    #: Distinct from per-group pool fan-outs inside the in-process grouped
    #: fallback, which also set ``executed_parallel`` but pay one round trip
    #: per group.
    grouped_dispatch: bool = False
    #: Why the worker-pool fan-out for this aggregate fell back in-process
    #: (``worker_lost``, ``pickle_error``, ...); ``None`` when it ran in the
    #: pool or was never dispatched.  Set only for *infra* faults — query
    #: errors propagate instead of falling back.
    fallback_reason: Optional[str] = None
    #: Supervision work this aggregate's fan-out(s) paid for: task
    #: re-submissions after infra faults, and full pool respawns.
    worker_retries: int = 0
    pool_respawns: int = 0

    @property
    def num_segments(self) -> int:
        return len(self.per_segment_seconds)

    def accumulate(self, other: "AggregateTimings") -> None:
        """Fold one group's timings into this statement-level accumulator.

        Per-segment fold times add elementwise (segment *i*'s total transition
        work across all groups), merge/final phases add, and ``num_groups``
        counts the contributions — so ``simulated_parallel_seconds`` of the
        accumulated object projects the two-phase grouped execution (max of
        per-segment totals plus all merges/finals), matching what the grouped
        worker-pool dispatch measures.
        """
        if len(other.per_segment_seconds) > len(self.per_segment_seconds):
            grow = len(other.per_segment_seconds) - len(self.per_segment_seconds)
            self.per_segment_seconds.extend([0.0] * grow)
            self.rows_per_segment.extend([0] * grow)
        for i, seconds in enumerate(other.per_segment_seconds):
            self.per_segment_seconds[i] += seconds
        for i, rows in enumerate(other.rows_per_segment):
            self.rows_per_segment[i] += rows
        self.merge_seconds += other.merge_seconds
        self.final_seconds += other.final_seconds
        if other.measured_parallel_wall_seconds is not None:
            # A group's fan-out really ran on the pool (per-group dispatch);
            # group fan-outs execute one after another, so walls add.
            self.measured_parallel_wall_seconds = (
                self.measured_parallel_wall_seconds or 0.0
            ) + other.measured_parallel_wall_seconds
            self.num_workers = max(self.num_workers, other.num_workers)
        self.num_groups += 1
        if other.fallback_reason is not None and self.fallback_reason is None:
            self.fallback_reason = other.fallback_reason
        self.worker_retries += other.worker_retries
        self.pool_respawns += other.pool_respawns

    @property
    def executed_parallel(self) -> bool:
        """True when the per-segment folds really ran in worker processes."""
        return self.measured_parallel_wall_seconds is not None

    @property
    def serial_seconds(self) -> float:
        """Total transition time: what a single segment would have spent."""
        return sum(self.per_segment_seconds) + self.merge_seconds + self.final_seconds

    @property
    def simulated_parallel_seconds(self) -> float:
        """*Projected* elapsed time if all segments ran concurrently.

        This is the model quantity (max over per-segment fold times plus the
        merge/final phases), not a measurement — compare with
        :attr:`measured_parallel_seconds`, which is real wall clock from the
        worker-pool tier.  Reports must label the two distinctly.
        """
        slowest = max(self.per_segment_seconds, default=0.0)
        return slowest + self.merge_seconds + self.final_seconds

    @property
    def measured_parallel_seconds(self) -> Optional[float]:
        """Measured elapsed time of the aggregate under real parallelism.

        Wall clock of the worker-pool fan-out plus the coordinator-side merge
        and final phases; ``None`` when the aggregate did not run in the pool.
        """
        if self.measured_parallel_wall_seconds is None:
            return None
        return self.measured_parallel_wall_seconds + self.merge_seconds + self.final_seconds

    @property
    def speedup(self) -> float:
        """Serial over *simulated*-parallel time (ideal value: num_segments).

        A modelled ratio; for measured speedup divide ``serial_seconds`` by
        :attr:`measured_parallel_seconds` instead.
        """
        parallel = self.simulated_parallel_seconds
        if parallel == 0.0:
            return float(self.num_segments or 1)
        return self.serial_seconds / parallel

    @property
    def measured_speedup(self) -> Optional[float]:
        """Serial fold time over measured parallel elapsed time.

        The denominator is real wall clock, but the numerator sums fold times
        measured *inside concurrently running workers*, which contention
        (cache, memory bandwidth, SMT) can inflate relative to a genuinely
        serial run — so this ratio is an upper bound on the true speedup.
        For an unbiased number time a separate serial execution of the same
        query, as ``bench_engine_micro.py --workers`` does.
        """
        measured = self.measured_parallel_seconds
        if measured is None or measured == 0.0:
            return None
        return self.serial_seconds / measured


@dataclass
class ScanDetail:
    """One base-relation scan as executed (backs EXPLAIN ANALYZE scan nodes)."""

    source: str  #: table name (or function/subquery/view alias)
    access: str  #: ``seq`` | ``index`` | ``subquery`` | ``function`` | ``matview``
    #: Rows actually touched: the full relation for a sequential scan, only
    #: the probe results for an index scan.
    rows_touched: int = 0
    #: The planner's cardinality estimate for this scan, when one was made.
    estimated_rows: Optional[float] = None
    index_name: Optional[str] = None
    index_condition: Optional[str] = None
    #: True when the scan's WHERE ran as a bitmap over packed columns
    #: (columnar vectorized path) rather than a per-row predicate.
    vectorized: bool = False


@dataclass
class JoinStep:
    """One executed join step (strategy + cardinalities) in execution order."""

    strategy: str
    rows_emitted: int = 0
    estimated_rows: Optional[float] = None


@dataclass
class ExecutionStats:
    """Statistics attached to a :class:`~repro.engine.result.ResultSet`."""

    statement_kind: str = "select"
    #: Base rows *touched* by the statement's sources.  For multi-source FROM
    #: lists this is the *sum of per-source base-table rows* (see
    #: ``rows_scanned_per_source``), never the size of a join product — the
    #: old accounting counted post-product rows, which made a 100×100
    #: Cartesian product look like a 10,000-row scan.  An index scan counts
    #: only the rows its probe returned, not the whole table; compare with
    #: :attr:`rows_matched` for the WHERE-survivor count.
    rows_scanned: int = 0
    #: Rows that survived the statement's WHERE stage (before grouping /
    #: DISTINCT / LIMIT); for UPDATE and DELETE, the affected-row count.
    #: ``None`` for statements with no row-matching stage.  Splitting this
    #: from ``rows_scanned`` keeps EXPLAIN ANALYZE honest: an index scan
    #: touches few rows (``rows_scanned``) while a sequential scan touches
    #: all of them for the same ``rows_matched``.
    rows_matched: Optional[int] = None
    #: One entry per FROM source in scan order: base-table rows for table
    #: scans, produced rows for subqueries and table functions.
    rows_scanned_per_source: List[int] = field(default_factory=list)
    #: Per-scan access-path records in scan order (EXPLAIN ANALYZE's source
    #: of truth for which plan actually ran).
    scan_details: List[ScanDetail] = field(default_factory=list)
    #: Per-join-step records in execution order.
    join_steps: List[JoinStep] = field(default_factory=list)
    #: Comma-joined strategy labels, one per executed join step, in execution
    #: order: ``hash`` (in-process build/probe), ``hash_colocated`` /
    #: ``hash_broadcast`` (worker-pool dispatch), ``nested_loop`` (non-equi
    #: or uncompilable condition), ``cross`` (Cartesian step).  ``None`` when
    #: the statement joined nothing.
    join_strategy: Optional[str] = None
    #: Total rows emitted by all join steps (intermediate steps included).
    join_rows_emitted: int = 0
    #: Coordinator-observed wall clock of worker-pool join fan-outs, summed
    #: over dispatched join steps; ``None`` when no join ran on the pool.
    join_parallel_wall_seconds: Optional[float] = None
    aggregate_timings: List[AggregateTimings] = field(default_factory=list)
    planning_seconds: float = 0.0
    total_seconds: float = 0.0
    #: True when the statement's WHERE clause was evaluated segment-at-a-time
    #: as selection bitmaps over packed columns (columnar vectorized path)
    #: instead of a per-row predicate — SELECT scans, bitmap DELETE, and
    #: bitmap UPDATE all set it.
    where_vectorized: bool = False
    #: Fraction of bitmap-scanned rows the WHERE selected (popcount / bitmap
    #: width); ``None`` when the WHERE did not run vectorized.
    bitmap_selectivity: Optional[float] = None
    #: Why a worker-pool fan-out of this statement fell back in-process
    #: (first infra fault reason: ``worker_lost``, ``pickle_error``,
    #: ``ipc_broken``, ``shipped_compile``, ...); ``None`` when nothing fell
    #: back.  Query errors never set this — they propagate.
    parallel_fallback_reason: Optional[str] = None
    #: Supervision work the statement's fan-outs paid for: per-segment task
    #: re-submissions after infra faults, and full worker-pool respawns.
    worker_retries: int = 0
    pool_respawns: int = 0
    #: Materialized-view maintenance this statement performed: incremental
    #: views that absorbed an INSERT delta by folding only the new rows into
    #: their group states (O(delta) upkeep) ...
    matview_deltas_applied: int = 0
    #: ... versus full recomputes of a view's contents (REFRESH, or a read of
    #: a view left stale by DELETE/UPDATE/TRUNCATE).
    matview_recomputes: int = 0

    def note_parallel_fallback(
        self, reason: Optional[str], retries: int = 0, respawns: int = 0
    ) -> None:
        """Record supervision work (first fallback reason wins)."""
        if reason is not None and self.parallel_fallback_reason is None:
            self.parallel_fallback_reason = reason
        self.worker_retries += retries
        self.pool_respawns += respawns

    def record_join(
        self,
        strategy: str,
        rows_emitted: int,
        parallel_wall_seconds: Optional[float] = None,
        estimated_rows: Optional[float] = None,
    ) -> None:
        """Record one executed join step (strategy label + emitted rows)."""
        self.join_strategy = (
            strategy if self.join_strategy is None else f"{self.join_strategy},{strategy}"
        )
        self.join_rows_emitted += rows_emitted
        self.join_steps.append(JoinStep(strategy, rows_emitted, estimated_rows))
        if parallel_wall_seconds is not None:
            self.join_parallel_wall_seconds = (
                self.join_parallel_wall_seconds or 0.0
            ) + parallel_wall_seconds

    @property
    def simulated_parallel_seconds(self) -> float:
        """*Projected* elapsed time: non-aggregate work plus modelled parallel
        aggregate time.

        A model quantity, not a measurement (see the module docstring): when
        the statement actually executed on the worker pool, ``total_seconds``
        is already the measured parallel wall clock — check
        :attr:`executed_parallel` before presenting either number as a
        speedup.  The non-aggregate part of the query (planning, projection
        of the tiny final result) is not parallelised, matching the paper's
        observation that "the overhead for a single query is very low and
        only a fraction of a second".
        """
        serial_aggregate = sum(t.serial_seconds for t in self.aggregate_timings)
        parallel_aggregate = sum(t.simulated_parallel_seconds for t in self.aggregate_timings)
        other = max(self.total_seconds - serial_aggregate, 0.0)
        return other + parallel_aggregate

    @property
    def executed_parallel(self) -> bool:
        """True when any aggregate of this statement ran on the worker pool."""
        return any(t.executed_parallel for t in self.aggregate_timings)

    @property
    def measured_parallel_seconds(self) -> Optional[float]:
        """Sum of measured parallel aggregate times, or None if none ran
        in the pool."""
        measured = [
            t.measured_parallel_seconds
            for t in self.aggregate_timings
            if t.measured_parallel_seconds is not None
        ]
        if not measured:
            return None
        return sum(measured)


class SegmentedAggregator:
    """Runs an aggregate over per-segment argument streams, recording timings.

    This is the execution-side counterpart of
    :class:`~repro.engine.aggregates.AggregateRunner`: same semantics, but it
    times every phase so the Figure 4 / Figure 5 harness can report per-segment
    and simulated-parallel numbers.
    """

    def __init__(self, definition: AggregateDefinition, *, use_batch: bool = True) -> None:
        self.definition = definition
        self.runner = AggregateRunner(definition)
        #: When false the batched tier is disabled and every fold is
        #: row-at-a-time (``Database(compiled_execution=False)``), so the
        #: parity suite compares genuinely different execution strategies.
        self.use_batch = use_batch

    # -- per-segment folds ---------------------------------------------------

    def _fold_batch(self, stream: Union[ColumnBatch, List[Sequence[Any]]]) -> Any:
        """One batch-kernel call over a segment's argument columns."""
        definition = self.definition
        state = definition.make_state()
        prefiltered = False
        if isinstance(stream, ColumnBatch):
            columns, length = stream.columns, stream.length
            prefiltered = stream.prefiltered
        elif stream:
            columns = tuple(list(column) for column in zip(*stream))
            length = len(stream)
        else:
            return state
        if length == 0:
            return state
        if definition.strict and not prefiltered:
            columns, length = strict_filter_columns(columns)
            if length == 0:
                return state
        return definition.batch_transition(state, *columns)

    #: Below this many rows the batch machinery (transpose, strict filter,
    #: kernel dispatch) costs more than a plain fold — e.g. high-cardinality
    #: GROUP BY produces thousands of single-row streams.
    _BATCH_MIN_ROWS = 8

    def _fold_stream(self, stream: Union[ColumnBatch, List[Sequence[Any]]]) -> Any:
        """Fold one segment: batched tier when available, row tier otherwise."""
        if (
            self.use_batch
            and self.definition.batch_transition is not None
            and len(stream) >= self._BATCH_MIN_ROWS
        ):
            try:
                return self._fold_batch(stream)
            except Exception:
                # A failing batch kernel (ragged arrays, unsupported operand
                # types) must not change which queries succeed.
                pass
        rows = stream.rows() if isinstance(stream, ColumnBatch) else stream
        return self.runner.fold(rows)

    @staticmethod
    def _concatenate(
        segment_streams: Sequence[Union[ColumnBatch, List[Sequence[Any]]]]
    ) -> Union[ColumnBatch, List[Sequence[Any]]]:
        """Fuse all segment streams into one (the force-serial baseline)."""
        streams = [stream for stream in segment_streams if len(stream)]
        if streams and all(isinstance(stream, ColumnBatch) for stream in streams):
            width = len(streams[0].columns)
            if all(len(stream.columns) == width for stream in streams):
                merged = tuple(
                    [value for stream in streams for value in stream.columns[i]]
                    for i in range(width)
                )
                return ColumnBatch(
                    merged, prefiltered=all(stream.prefiltered for stream in streams)
                )
        all_rows: List[Sequence[Any]] = []
        for stream in streams:
            all_rows.extend(stream.rows() if isinstance(stream, ColumnBatch) else stream)
        return all_rows

    def run(
        self,
        segment_streams: Sequence[Union[ColumnBatch, List[Sequence[Any]]]],
        *,
        force_serial: bool = False,
        pool=None,
    ) -> tuple:
        """Execute and return ``(value, AggregateTimings)``.

        Each stream is one segment's argument rows — either a list of
        argument tuples or a :class:`~repro.engine.vectorized.ColumnBatch`
        sliced straight from a table's columnar view.  ``force_serial``
        disables the merge path (all rows folded by one transition stream)
        which is the baseline for the merge-path ablation benchmark.

        ``pool`` is an optional :class:`~repro.engine.parallel.
        SegmentWorkerPool`; when given (and the aggregate is mergeable and
        shippable) the per-segment folds run concurrently in worker
        processes — real two-phase aggregation — and the timings carry the
        measured fan-out wall clock.  Any aggregate the pool cannot execute
        (non-picklable UDA) silently folds in-process instead, so the pool
        never changes which queries succeed or what they return.
        """
        timings = AggregateTimings(aggregate_name=self.definition.name)
        if force_serial or not self.definition.supports_parallel or len(segment_streams) <= 1:
            combined = self._concatenate(segment_streams)
            start = time.perf_counter()
            state = self._fold_stream(combined)
            timings.per_segment_seconds = [time.perf_counter() - start]
            timings.rows_per_segment = [len(combined)]
        else:
            states = None
            if pool is not None:
                try:
                    outcome = pool.run_aggregate(
                        self.definition, segment_streams, use_batch=self.use_batch
                    )
                except WorkerPoolError as exc:
                    # Infra faults only (dead/hung workers, IPC pickling) —
                    # supervision already retried; refold in-process and
                    # record why.  Query errors raised by the transition
                    # itself propagate out of this call byte-identical to
                    # the in-process tier: they are never retried or masked.
                    timings.fallback_reason = exc.reason
                    timings.worker_retries = exc.retries
                    timings.pool_respawns = exc.respawns
                    outcome = None
                if outcome is not None:
                    report = pool.consume_dispatch_report()
                    if report is not None:
                        # Succeeded, but only after supervision stepped in.
                        timings.worker_retries = report["worker_retries"]
                        timings.pool_respawns = report["pool_respawns"]
                    states, per_segment, wall = outcome
                    timings.per_segment_seconds = per_segment
                    timings.rows_per_segment = [len(s) for s in segment_streams]
                    timings.measured_parallel_wall_seconds = wall
                    timings.num_workers = pool.num_workers
            if states is None:
                states = []
                for stream in segment_streams:
                    start = time.perf_counter()
                    states.append(self._fold_stream(stream))
                    timings.per_segment_seconds.append(time.perf_counter() - start)
                    timings.rows_per_segment.append(len(stream))
            start = time.perf_counter()
            state = self.runner.merge_states(states)
            timings.merge_seconds = time.perf_counter() - start
        start = time.perf_counter()
        value = self.definition.finalize(state)
        timings.final_seconds = time.perf_counter() - start
        return value, timings
