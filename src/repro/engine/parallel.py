"""Real parallel segment execution: a persistent worker-process pool.

The simulated-parallel methodology in :mod:`repro.engine.segments` *models*
what a shared-nothing cluster would do (``max`` over per-segment fold times).
This module is the third execution tier that actually does it: a persistent
:mod:`multiprocessing` pool of worker processes, one task per segment, true
two-phase aggregation exactly as Greenplum/MADlib execute it —

1. the coordinator ships each segment's argument batch to a worker,
2. every worker runs the (already compiled/batched) **transition** fold over
   its segment locally and returns the partial state, and
3. the coordinator combines partial states with the aggregate's **merge**
   function and applies **final** — the merge/final phases never leave the
   coordinator, so their callables (often lambdas) never need to be pickled.

What crosses the process boundary:

* **Down**: an *aggregate spec* plus one segment's argument stream.  Built-in
  aggregates travel as just their name — every worker rebuilds the builtin
  registry at startup, so the closure-based builtins (``min``/``max``/
  ``bool_*``) work without being picklable.  User-defined aggregates travel
  as their transition/batch kernels pickled *by reference* (module +
  qualname), which works for module-level functions such as ``linregr``'s
  kernels.  Aggregates whose callables cannot be pickled (lambdas, local
  closures — e.g. the IGD objective closures) are detected up front and the
  caller falls back to the in-process serial fold; parallelism never changes
  which queries succeed or what they return.
* **Up**: the partial state and the worker-measured fold wall-clock seconds
  (so :class:`~repro.engine.segments.AggregateTimings` keeps its per-segment
  timing semantics under real parallelism).

Argument streams are shipped compactly: :class:`~repro.engine.vectorized.
ColumnBatch` pickles float columns as packed C-double buffers (see its
``__reduce__``) and ``count(*)``'s constant column in O(1) space, so the
dominant IPC cost for numeric workloads is one ``memcpy``-like transfer per
segment rather than a per-value pickle loop.

The pool is **persistent**: it belongs to the :class:`~repro.engine.database.
Database` (``Database(parallel=N)``), is started lazily on first use (or
eagerly via ``ensure_started``, which the driver-iteration controller calls
so multipass methods pay the spawn cost once, not per iteration), and is
reused by every query until ``close()``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import weakref
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from .aggregates import AggregateDefinition, builtin_aggregates

__all__ = ["SegmentWorkerPool"]


# ---------------------------------------------------------------------------
# Aggregate specs: what identifies an aggregate inside a worker process.
# ---------------------------------------------------------------------------

#: Module that defines the built-in aggregates; their transition callables
#: (including the ``min``/``max``/``bool_*`` closures) all live here.
_BUILTIN_MODULE = AggregateDefinition.__module__

#: Coordinator-side fingerprints of the builtins:
#: name -> (transition __qualname__, strict flag).
_BUILTIN_FINGERPRINTS = {
    definition.name.lower(): (definition.transition.__qualname__, definition.strict)
    for definition in builtin_aggregates()
}

#: Attribute used to memoize the spec decision on a definition object, so the
#: picklability probe runs once per (definition, batch-tier) rather than once
#: per query.
_SPEC_CACHE_ATTR = "_parallel_spec_cache"


def shippable_spec(definition: AggregateDefinition, use_batch: bool) -> Optional[tuple]:
    """A picklable description of ``definition``'s transition side, or None.

    ``("builtin", name)`` when the definition *is* the built-in registered
    under that name (same transition function identity by module/qualname and
    same strictness) — workers rebuild it locally from their own registry.
    ``("funcs", name, transition, batch, initial_state, strict)`` when the
    transition-side callables pickle (by reference); an unpicklable batch
    kernel alone only degrades that aggregate to the worker's row-at-a-time
    fold, it does not force serial execution.  ``None`` means the aggregate
    cannot run in workers at all and the caller must fold in-process.
    """
    cached = getattr(definition, _SPEC_CACHE_ATTR, None)
    if cached is not None and cached[0] == use_batch:
        return cached[1]
    spec = _build_spec(definition, use_batch)
    try:
        setattr(definition, _SPEC_CACHE_ATTR, (use_batch, spec))
    except AttributeError:  # pragma: no cover - slotted subclass
        pass
    return spec


def _build_spec(definition: AggregateDefinition, use_batch: bool) -> Optional[tuple]:
    name = definition.name.lower()
    fingerprint = _BUILTIN_FINGERPRINTS.get(name)
    if (
        fingerprint is not None
        and getattr(definition.transition, "__module__", None) == _BUILTIN_MODULE
        and definition.transition.__qualname__ == fingerprint[0]
        and definition.strict == fingerprint[1]
    ):
        return ("builtin", name)
    try:
        pickle.dumps((definition.transition, definition.initial_state))
    except Exception:
        return None
    batch = definition.batch_transition if use_batch else None
    if batch is not None:
        try:
            pickle.dumps(batch)
        except Exception:
            batch = None
    return (
        "funcs",
        definition.name,
        definition.transition,
        batch,
        definition.initial_state,
        definition.strict,
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-worker registry of built-in aggregate definitions, built once at pool
#: startup (each worker has its own copy — shared-nothing, like a segment).
_WORKER_BUILTINS: Optional[dict] = None


def _worker_initializer() -> None:
    global _WORKER_BUILTINS
    _WORKER_BUILTINS = {d.name.lower(): d for d in builtin_aggregates()}


def _resolve_spec(spec: tuple) -> AggregateDefinition:
    global _WORKER_BUILTINS
    if spec[0] == "builtin":
        if _WORKER_BUILTINS is None:  # defensive: initializer not run
            _worker_initializer()
        return _WORKER_BUILTINS[spec[1]]
    _tag, name, transition, batch, initial_state, strict = spec
    # merge/final are deliberately absent: they run on the coordinator only.
    return AggregateDefinition(
        name,
        transition,
        initial_state=initial_state,
        strict=strict,
        batch_transition=batch,
    )


def _fold_segment_task(task: tuple) -> Tuple[Any, float]:
    """Run one segment's transition fold in a worker; returns (state, seconds).

    Reuses :meth:`SegmentedAggregator._fold_stream`, so the batched tier, the
    small-stream threshold and the silent batch-kernel fallback behave
    identically to the in-process fold — parallel execution cannot change
    results.
    """
    from .segments import SegmentedAggregator  # deferred: avoids import cycle

    spec, stream, use_batch = task
    aggregator = SegmentedAggregator(_resolve_spec(spec), use_batch=use_batch)
    start = time.perf_counter()
    state = aggregator._fold_stream(stream)
    return state, time.perf_counter() - start


def _terminate_pool(pool: multiprocessing.pool.Pool) -> None:
    pool.terminate()
    pool.join()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class SegmentWorkerPool:
    """A persistent pool of segment-worker processes.

    Parameters
    ----------
    num_workers:
        Number of worker processes (>= 1).  Matching the machine's core count
        (and the database's segment count) gives the best speedup; more
        segments than workers simply queue.
    start_method:
        Optional :mod:`multiprocessing` start method.  Defaults to ``fork``
        where available (cheap startup, inherits imports) and ``spawn``
        elsewhere.
    min_dispatch_rows:
        Fan-outs whose streams total fewer rows than this fold in-process —
        a pool round trip costs a fixed few hundred microseconds, which a
        high-cardinality GROUP BY would otherwise pay once *per group*.
        Set to ``0`` to force every eligible aggregate through the workers
        (the parallel parity tests do).
    """

    #: Default row floor below which dispatching to workers is not worth it.
    DEFAULT_MIN_DISPATCH_ROWS = 512

    def __init__(
        self,
        num_workers: int,
        *,
        start_method: Optional[str] = None,
        min_dispatch_rows: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValidationError("parallel worker count must be at least 1")
        self.num_workers = int(num_workers)
        self.min_dispatch_rows = (
            self.DEFAULT_MIN_DISPATCH_ROWS if min_dispatch_rows is None else int(min_dispatch_rows)
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._finalizer = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._pool is not None

    def ensure_started(self) -> None:
        """Start the worker processes now (idempotent).

        Called lazily on the first parallel aggregate, and eagerly by
        :class:`~repro.driver.iteration.IterationController` so iterative
        methods never pay the spawn cost inside a timed iteration.
        """
        if self._pool is None and not self._closed:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(self.num_workers, initializer=_worker_initializer)
            self._finalizer = weakref.finalize(self, _terminate_pool, self._pool)

    def close(self) -> None:
        """Shut the workers down (idempotent); the pool cannot be restarted."""
        self._closed = True
        if self._pool is not None:
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            _terminate_pool(pool)

    # -- execution -------------------------------------------------------------

    def run_aggregate(
        self,
        definition: AggregateDefinition,
        segment_streams: Sequence[Any],
        *,
        use_batch: bool = True,
    ) -> Optional[Tuple[List[Any], List[float], float]]:
        """Fold every segment stream in the worker pool.

        Returns ``(partial_states, per_segment_seconds, wall_seconds)`` where
        ``per_segment_seconds`` are measured *inside* the workers (the fold
        itself) and ``wall_seconds`` is the coordinator-observed elapsed time
        for the whole fan-out — dispatch, folds and IPC included.  Returns
        ``None`` when this aggregate cannot be shipped (non-picklable UDA) or
        the pool is closed, in which case the caller folds in-process.
        """
        if self._closed:
            return None
        if sum(len(stream) for stream in segment_streams) < self.min_dispatch_rows:
            return None
        spec = shippable_spec(definition, use_batch)
        if spec is None:
            return None
        self.ensure_started()
        tasks = [(spec, stream, use_batch) for stream in segment_streams]
        start = time.perf_counter()
        results = self._pool.map(_fold_segment_task, tasks)
        wall = time.perf_counter() - start
        states = [state for state, _ in results]
        seconds = [elapsed for _, elapsed in results]
        return states, seconds, wall

    def __enter__(self) -> "SegmentWorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else ("started" if self.started else "idle")
        return f"SegmentWorkerPool(num_workers={self.num_workers}, {state})"
