"""Real parallel segment execution: a persistent worker-process pool.

The simulated-parallel methodology in :mod:`repro.engine.segments` *models*
what a shared-nothing cluster would do (``max`` over per-segment fold times).
This module is the third execution tier that actually does it: a persistent
:mod:`multiprocessing` pool of worker processes, one task per segment, true
two-phase aggregation exactly as Greenplum/MADlib execute it —

1. the coordinator ships each segment's argument batch to a worker,
2. every worker runs the (already compiled/batched) **transition** fold over
   its segment locally and returns the partial state, and
3. the coordinator combines partial states with the aggregate's **merge**
   function and applies **final** — the merge/final phases never leave the
   coordinator, so their callables (often lambdas) never need to be pickled.

What crosses the process boundary:

* **Down**: an *aggregate spec* plus one segment's argument stream.  Built-in
  aggregates travel as just their name — every worker rebuilds the builtin
  registry at startup, so the closure-based builtins (``min``/``max``/
  ``bool_*``) work without being picklable.  User-defined aggregates travel
  as their transition/batch kernels pickled *by reference* (module +
  qualname), which works for module-level functions such as ``linregr``'s
  kernels.  Aggregates whose callables cannot be pickled (lambdas, local
  closures — e.g. the IGD objective closures) are detected up front and the
  caller falls back to the in-process serial fold; parallelism never changes
  which queries succeed or what they return.
* **Up**: the partial state and the worker-measured fold wall-clock seconds
  (so :class:`~repro.engine.segments.AggregateTimings` keeps its per-segment
  timing semantics under real parallelism).

Argument streams are shipped compactly: :class:`~repro.engine.vectorized.
ColumnBatch` pickles float columns as packed C-double buffers (see its
``__reduce__``) and ``count(*)``'s constant column in O(1) space, so the
dominant IPC cost for numeric workloads is one ``memcpy``-like transfer per
segment rather than a per-value pickle loop.  With columnar-native storage
(:mod:`repro.engine.columnar`, the default) this is near-zero-copy end to
end: a NULL-free packed column exports its stored ``array('d')``/``array('q')``
buffer as-is (``TypedColumn.packed_wire``) — no per-value scan even to
*build* the wire format — and workers restore exact values via ``tolist()``.

Two dispatch shapes exist.  **Ungrouped** (`run_aggregate`): one task per
segment per aggregate, each returning a single partial state.  **Grouped**
(`run_grouped`, the two-phase GROUP BY path): one task per segment for the
*whole statement* — the worker receives the segment's rows plus the group-key
expressions (shipped as picklable AST nodes and compiled to positional-row
closures inside the worker), builds a partial ``{group_key: [agg_states]}``
hash table locally (batched kernels engage per group where available), and
the coordinator merges the per-segment partial tables with each aggregate's
merge function.  That is one IPC round trip per segment instead of one
coordinator-side pass per group, which is what makes grouped aggregation
scale the way the paper's Greenplum experiments assume.

Group-key and aggregate-argument expressions can only be shipped when every
scalar function they reference is a genuine built-in — workers rebuild the
builtin function registry locally, so a user-defined (or shadowed) function
would silently change meaning across the boundary.
:func:`guarded_function_registry` enforces this with a code-object
fingerprint; anything outside it keeps the statement on the coordinator.

The pool is **persistent**: it belongs to the :class:`~repro.engine.database.
Database` (``Database(parallel=N)``), is started lazily on first use (or
eagerly via ``ensure_started``, which the driver-iteration controller calls
so multipass methods pay the spawn cost once, not per iteration), and is
reused by every query until ``close()``.

Supervision (the fault-tolerance layer)
---------------------------------------

Real worker processes die.  A SIGKILL'd fork used to strand the blanket
``pool.map`` call forever (the task's result simply never arrives), and any
worker-side exception was silently retried in-process — masking genuine
kernel bugs behind the fallback.  Dispatch is now supervised:

* every fan-out runs through :meth:`SegmentWorkerPool._dispatch`, which
  submits one ``apply_async`` per task and collects results under a
  **per-task deadline** (``task_timeout``, scaled by queueing depth);
* a missing result (dead or hung worker) is an *infra fault*: the pool is
  **respawned** (terminate + fresh processes, reclaiming hung slots) and the
  unfinished tasks are **retried** with exponential backoff, at most
  ``max_task_retries`` times;
* failures are **classified** (:func:`classify_failure`): infra faults —
  lost workers, IPC pickling breakage — raise :class:`WorkerPoolError` after
  retries are exhausted, which callers turn into an in-process fallback with
  the reason recorded on ``ExecutionStats.parallel_fallback_reason``; *query
  errors* — anything the shipped kernel itself raised — propagate unchanged,
  byte-identical to the in-process tier, and are **never retried or masked**;
* cumulative counters (``stats()``) expose retries, respawns and fallbacks
  so operators see degradation instead of inferring it.

Deterministic fault injection (:mod:`repro.engine.faults`) hooks two sites:
``parallel.dispatch`` (once per fan-out attempt; ``pickle_error``) and
``parallel.task`` (once per task per attempt; ``worker_crash`` /
``worker_hang`` / ``slow_worker`` — decided on the coordinator and shipped
to the worker as a directive, so chaos runs replay exactly by seed).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
import threading
import time
import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError, ReproError, ValidationError
from .aggregates import AggregateDefinition, builtin_aggregates
from .compile import ColumnLayout, compile_expression
from .faults import PICKLE_ERROR, SLOW_WORKER, WORKER_CRASH, WORKER_HANG, FaultInjector
from .functions import builtin_functions
from .types import hashable_key

__all__ = [
    "SegmentWorkerPool",
    "WorkerPoolError",
    "classify_failure",
    "guarded_function_registry",
    "shippable_spec",
]


# ---------------------------------------------------------------------------
# Failure classification: infra faults versus query errors
# ---------------------------------------------------------------------------


def _rebuild_worker_pool_error(reason, retries, respawns, message):
    return WorkerPoolError(reason, retries=retries, respawns=respawns, message=message)


class WorkerPoolError(EngineError):
    """A fan-out failed for *infrastructure* reasons after bounded retries.

    Raised only for faults of the pool itself — dead or hung worker
    processes, IPC pickling breakage, a worker-side compile of a shipped
    expression failing defensively — never for errors the query's own code
    raised (those propagate unchanged, byte-identical to the in-process
    tier).  Callers catch exactly this type, record ``reason`` on
    ``ExecutionStats.parallel_fallback_reason``, and fall back in-process.
    """

    def __init__(
        self,
        reason: str,
        *,
        retries: int = 0,
        respawns: int = 0,
        message: Optional[str] = None,
    ) -> None:
        self.reason = reason
        self.retries = retries
        self.respawns = respawns
        super().__init__(
            message
            or f"worker pool fan-out failed ({reason}) after "
            f"{retries} task retries and {respawns} pool respawns"
        )

    def __reduce__(self):  # survives the worker → coordinator pickle hop
        return (
            _rebuild_worker_pool_error,
            (self.reason, self.retries, self.respawns, str(self)),
        )


class _InfraFailure(Exception):
    """Internal marker for one failed dispatch attempt (never escapes)."""

    def __init__(self, reason: str, retryable: bool) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retryable = retryable


def classify_failure(exc: BaseException) -> Tuple[Optional[str], bool]:
    """``(reason, retryable)`` when ``exc`` is an infra fault, ``(None, _)``
    when it is a query error.

    The contract (see ``docs/robustness.md``): anything the *pool machinery*
    produced — a result that never arrived (``multiprocessing.TimeoutError``
    from a dead or hung worker), payloads or partial states that failed to
    pickle, broken IPC pipes, a worker-side :class:`WorkerPoolError` — is an
    infra fault the caller may retry and then absorb into the in-process
    fallback.  Anything else was raised by the shipped kernel itself and
    would have been raised identically in-process: it must propagate with
    the same type and message, never be retried, never be masked.
    """
    if isinstance(exc, WorkerPoolError):
        return exc.reason or "worker_internal", False
    if isinstance(exc, multiprocessing.TimeoutError):
        return "worker_lost", True
    if isinstance(exc, (pickle.PicklingError, multiprocessing.pool.MaybeEncodingError)):
        return "pickle_error", False
    if isinstance(exc, (BrokenPipeError, EOFError, ConnectionError)):
        return "ipc_broken", True
    if isinstance(exc, ReproError):
        return None, False
    return None, False


# ---------------------------------------------------------------------------
# Aggregate specs: what identifies an aggregate inside a worker process.
# ---------------------------------------------------------------------------

#: Module that defines the built-in aggregates; their transition callables
#: (including the ``min``/``max``/``bool_*`` closures) all live here.
_BUILTIN_MODULE = AggregateDefinition.__module__

#: Coordinator-side fingerprints of the builtins:
#: name -> (transition __qualname__, strict flag).
_BUILTIN_FINGERPRINTS = {
    definition.name.lower(): (definition.transition.__qualname__, definition.strict)
    for definition in builtin_aggregates()
}

#: Attribute used to memoize the spec decision on a definition object, so the
#: picklability probe runs once per (definition, batch-tier) rather than once
#: per query.
_SPEC_CACHE_ATTR = "_parallel_spec_cache"


def shippable_spec(definition: AggregateDefinition, use_batch: bool) -> Optional[tuple]:
    """A picklable description of ``definition``'s transition side, or None.

    ``("builtin", name)`` when the definition *is* the built-in registered
    under that name (same transition function identity by module/qualname and
    same strictness) — workers rebuild it locally from their own registry.
    ``("funcs", name, transition, batch, initial_state, strict)`` when the
    transition-side callables pickle (by reference); an unpicklable batch
    kernel alone only degrades that aggregate to the worker's row-at-a-time
    fold, it does not force serial execution.  ``None`` means the aggregate
    cannot run in workers at all and the caller must fold in-process.
    """
    cached = getattr(definition, _SPEC_CACHE_ATTR, None)
    if cached is not None and cached[0] == use_batch:
        return cached[1]
    spec = _build_spec(definition, use_batch)
    try:
        setattr(definition, _SPEC_CACHE_ATTR, (use_batch, spec))
    except AttributeError:  # pragma: no cover - slotted subclass
        pass
    return spec


def _build_spec(definition: AggregateDefinition, use_batch: bool) -> Optional[tuple]:
    name = definition.name.lower()
    fingerprint = _BUILTIN_FINGERPRINTS.get(name)
    if (
        fingerprint is not None
        and getattr(definition.transition, "__module__", None) == _BUILTIN_MODULE
        and definition.transition.__qualname__ == fingerprint[0]
        and definition.strict == fingerprint[1]
    ):
        return ("builtin", name)
    try:
        pickle.dumps((definition.transition, definition.initial_state))
    except Exception:
        return None
    batch = definition.batch_transition if use_batch else None
    if batch is not None:
        try:
            pickle.dumps(batch)
        except Exception:
            batch = None
    return (
        "funcs",
        definition.name,
        definition.transition,
        batch,
        definition.initial_state,
        definition.strict,
    )


# ---------------------------------------------------------------------------
# Shippable scalar functions (for group keys and aggregate arguments)
# ---------------------------------------------------------------------------


#: Coordinator-side cache of one freshly built builtin scalar-function
#: registry (immutable per process) — the fingerprint source for
#: :func:`guarded_function_registry`, built once instead of per query.
_FRESH_FUNCTION_REGISTRY: Optional[dict] = None


def _fresh_function_registry() -> dict:
    global _FRESH_FUNCTION_REGISTRY
    if _FRESH_FUNCTION_REGISTRY is None:
        _FRESH_FUNCTION_REGISTRY = {
            definition.name.lower(): definition for definition in builtin_functions()
        }
    return _FRESH_FUNCTION_REGISTRY


def guarded_function_registry(
    catalog_functions: Dict[str, Callable[..., Any]]
) -> Dict[str, Callable[..., Any]]:
    """The subset of a catalog's scalar functions a worker can reproduce.

    Workers compile shipped expressions against their own freshly built
    ``builtin_functions()`` registry, so an expression may only be dispatched
    when every function it references is *exactly* the built-in of that name:
    same definition class, same strictness, same underlying code object (the
    identity that survives re-running ``builtin_functions()``, lambdas
    included).  User-defined functions — and user functions *shadowing* a
    builtin name — are excluded, which makes compilation against the returned
    registry fail for them and keeps the statement on the coordinator.
    """
    guarded: Dict[str, Callable[..., Any]] = {}
    fresh = _fresh_function_registry()
    for name, registered in catalog_functions.items():
        reference = fresh.get(name)
        if (
            reference is None
            or type(registered) is not type(reference)
            or getattr(registered, "strict", None) != reference.strict
        ):
            continue
        func = getattr(registered, "func", None)
        code = getattr(func, "__code__", None)
        if func is reference.func or (
            code is not None and code is getattr(reference.func, "__code__", None)
        ):
            guarded[name] = registered
    return guarded


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-worker registry of built-in aggregate definitions, built once at pool
#: startup (each worker has its own copy — shared-nothing, like a segment).
_WORKER_BUILTINS: Optional[dict] = None

#: Per-worker registry of built-in scalar functions, used to compile shipped
#: group-key / argument expressions (the coordinator guarantees, via
#: :func:`guarded_function_registry`, that these behave identically to the
#: functions its own compilation would have used).
_WORKER_FUNCTIONS: Optional[dict] = None


def _worker_initializer() -> None:
    global _WORKER_BUILTINS, _WORKER_FUNCTIONS
    _WORKER_BUILTINS = {d.name.lower(): d for d in builtin_aggregates()}
    _WORKER_FUNCTIONS = {d.name.lower(): d for d in builtin_functions()}


def _apply_worker_fault(directive: Optional[tuple]) -> None:
    """Act on a coordinator-decided fault directive, inside the worker.

    ``("crash",)`` dies abruptly (no cleanup, no exception back — exactly
    what a SIGKILL or OOM kill looks like to the coordinator);
    ``("hang", s)`` / ``("slow", s)`` sleep — past every deadline for a
    hang, briefly for a slow worker.  ``None`` (the production value) is a
    single comparison.
    """
    if directive is None:
        return
    kind = directive[0]
    if kind == "crash":
        os._exit(70)
    elif kind in ("hang", "slow"):
        time.sleep(directive[1])


def _resolve_spec(spec: tuple) -> AggregateDefinition:
    global _WORKER_BUILTINS
    if spec[0] == "builtin":
        if _WORKER_BUILTINS is None:  # defensive: initializer not run
            _worker_initializer()
        return _WORKER_BUILTINS[spec[1]]
    _tag, name, transition, batch, initial_state, strict = spec
    # merge/final are deliberately absent: they run on the coordinator only.
    return AggregateDefinition(
        name,
        transition,
        initial_state=initial_state,
        strict=strict,
        batch_transition=batch,
    )


def _fold_segment_task(task: tuple) -> Tuple[Any, float]:
    """Run one segment's transition fold in a worker; returns (state, seconds).

    Reuses :meth:`SegmentedAggregator._fold_stream`, so the batched tier, the
    small-stream threshold and the silent batch-kernel fallback behave
    identically to the in-process fold — parallel execution cannot change
    results.
    """
    from .segments import SegmentedAggregator  # deferred: avoids import cycle

    directive, spec, stream, use_batch = task
    _apply_worker_fault(directive)
    aggregator = SegmentedAggregator(_resolve_spec(spec), use_batch=use_batch)
    start = time.perf_counter()
    state = aggregator._fold_stream(stream)
    return state, time.perf_counter() - start


def _compile_shipped(expression, layout, parameters):
    """Compile a shipped AST in the worker; raise if it falls outside the
    compilable subset.  The coordinator pre-validated shippability, so this
    is defensive — it raises :class:`WorkerPoolError` (an *infra* fault, not
    a query error) so the coordinator's classifier falls back in-process
    instead of surfacing an error the in-process tier would never raise."""
    global _WORKER_FUNCTIONS
    if _WORKER_FUNCTIONS is None:  # defensive: initializer not run
        _worker_initializer()
    fn = compile_expression(expression, layout, _WORKER_FUNCTIONS, parameters)
    if fn is None:
        raise WorkerPoolError(
            "shipped_compile", message="shipped expression did not compile in worker"
        )
    return fn


def _grouped_segment_task(task: tuple) -> Tuple[list, List[float], float]:
    """Phase one of two-phase GROUP BY for one segment, inside a worker.

    Builds the partial hash table ``{group_key: [state per aggregate]}`` over
    the segment's rows: group keys come from closures compiled locally from
    the shipped ASTs, per-group argument streams feed ``_fold_stream`` (so
    batched kernels engage for groups past the batch threshold, exactly as
    in-process).  Returns ``(table, per_aggregate_seconds, key_seconds)``
    where ``table`` preserves first-appearance order and carries each group's
    first local row index so the coordinator can reconstruct global
    first-appearance order and a representative row per group.
    """
    from .segments import SegmentedAggregator  # deferred: avoids import cycle

    directive, keys_per_column, key_exprs, parameters, agg_entries, use_batch, rows = task
    _apply_worker_fault(directive)
    layout = ColumnLayout(keys_per_column)
    key_fns = [_compile_shipped(expr, layout, parameters) for expr in key_exprs]

    start = time.perf_counter()
    groups: Dict[Any, List[int]] = {}
    for index, row in enumerate(rows):
        key = tuple(hashable_key(fn(row)) for fn in key_fns)
        members = groups.get(key)
        if members is None:
            groups[key] = [index]
        else:
            members.append(index)
    key_seconds = time.perf_counter() - start

    states: Dict[Any, list] = {key: [] for key in groups}
    agg_seconds: List[float] = []
    for spec, arg_mode in agg_entries:
        aggregator = SegmentedAggregator(_resolve_spec(spec), use_batch=use_batch)
        if arg_mode[0] == "exprs":
            arg_fns = [_compile_shipped(expr, layout, parameters) for expr in arg_mode[1]]
        else:  # count(*): the synthetic constant argument
            arg_fns = None
        start = time.perf_counter()
        for key, members in groups.items():
            if arg_fns is None:
                stream: List[Tuple[Any, ...]] = [(1,)] * len(members)
            else:
                stream = [tuple(fn(rows[i]) for fn in arg_fns) for i in members]
            states[key].append(aggregator._fold_stream(stream))
        agg_seconds.append(time.perf_counter() - start)

    table = [(key, members[0], states[key]) for key, members in groups.items()]
    return table, agg_seconds, key_seconds


def _join_segment_task(task: tuple) -> Tuple[list, float]:
    """Build/probe one probe segment of a hash join, inside a worker.

    The task carries the join spec (side layouts, key/residual ASTs compiled
    locally against the builtin registry — the coordinator pre-validated
    shippability via the guarded registry) plus this segment's probe rows and
    its build rows: the matching build segment for a co-located join, the
    whole (small) build side for a broadcast join.  The emitted rows preserve
    (probe order, build order), so concatenating per-segment outputs in
    segment order reproduces the coordinator's in-process join exactly.
    """
    from .join import build_hash_table, probe_hash_table  # deferred: avoids cycle

    directive = task[0]
    task = task[1:]
    _apply_worker_fault(directive)
    (
        left_keys_per_column,
        right_keys_per_column,
        combined_keys_per_column,
        left_key_exprs,
        right_key_exprs,
        residual_expr,
        kind,
        right_width,
        parameters,
        probe_rows,
        build_rows,
    ) = task
    left_layout = ColumnLayout(left_keys_per_column)
    right_layout = ColumnLayout(right_keys_per_column)
    combined_layout = ColumnLayout(combined_keys_per_column)
    left_key_fns = [_compile_shipped(expr, left_layout, parameters) for expr in left_key_exprs]
    right_key_fns = [_compile_shipped(expr, right_layout, parameters) for expr in right_key_exprs]
    residual_fn = (
        _compile_shipped(residual_expr, combined_layout, parameters)
        if residual_expr is not None
        else None
    )
    start = time.perf_counter()
    buckets = build_hash_table(build_rows, right_key_fns)
    rows, _segments = probe_hash_table(
        probe_rows,
        [0] * len(probe_rows),
        buckets,
        left_key_fns,
        residual_fn,
        kind,
        right_width,
    )
    return rows, time.perf_counter() - start


def _terminate_pool(pool: multiprocessing.pool.Pool) -> None:
    pool.terminate()
    pool.join()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class SegmentWorkerPool:
    """A persistent pool of segment-worker processes.

    Parameters
    ----------
    num_workers:
        Number of worker processes (>= 1).  Matching the machine's core count
        (and the database's segment count) gives the best speedup; more
        segments than workers simply queue.
    start_method:
        Optional :mod:`multiprocessing` start method.  Defaults to ``fork``
        where available (cheap startup, inherits imports) and ``spawn``
        elsewhere.
    min_dispatch_rows:
        Fan-outs whose streams total fewer rows than this fold in-process —
        a pool round trip costs a fixed few hundred microseconds, which a
        high-cardinality GROUP BY would otherwise pay once *per group*.
        Set to ``0`` to force every eligible aggregate through the workers
        and to disable the grouped-dispatch cardinality heuristic (the
        parallel parity tests do).
    task_timeout:
        Per-task supervision deadline in seconds (scaled by queueing depth
        when a fan-out has more tasks than workers).  A task whose result
        has not arrived by the deadline is declared lost — its worker dead
        or hung — and the supervision policy (respawn + retry, then
        fallback) engages.  Generous by default so production statements
        are never killed by the supervisor; chaos tests shrink it.
    max_task_retries:
        How many times an unfinished task may be re-submitted after an
        infra fault before the fan-out gives up with
        :class:`WorkerPoolError` (→ in-process fallback).
    retry_backoff:
        Base sleep before retry attempt *n* (doubles each attempt).
    faults:
        Optional :class:`~repro.engine.faults.FaultInjector` for
        deterministic chaos testing; ``None`` (production) costs one
        attribute check per dispatch.
    """

    #: Default row floor below which dispatching to workers is not worth it.
    DEFAULT_MIN_DISPATCH_ROWS = 512

    #: Default per-task supervision deadline (seconds).
    DEFAULT_TASK_TIMEOUT = 60.0

    #: Default bounded per-segment retry budget after infra faults.
    DEFAULT_MAX_TASK_RETRIES = 2

    #: Default base backoff before a retry attempt (seconds, doubling).
    DEFAULT_RETRY_BACKOFF = 0.05

    #: Grouped dispatch samples this many leading rows to estimate group
    #: cardinality before shipping anything.
    GROUP_SAMPLE_ROWS = 512

    #: Estimated groups-per-row above which grouped dispatch stays in-process:
    #: when nearly every row is its own group, the coordinator still merges
    #: and finalizes O(groups) ≈ O(rows) states and the partial tables cost
    #: about as much IPC as the rows themselves, so phase one's parallelism
    #: cannot pay for the round trip.
    MAX_GROUP_FRACTION = 0.5

    #: Largest build side a broadcast hash join will replicate to every
    #: worker; above this the IPC of shipping the build side num_workers
    #: times outweighs the probe parallelism (co-located joins have no such
    #: limit — each worker receives only its own build segment).
    BROADCAST_MAX_BUILD_ROWS = 8192

    def __init__(
        self,
        num_workers: int,
        *,
        start_method: Optional[str] = None,
        min_dispatch_rows: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_task_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if num_workers < 1:
            raise ValidationError("parallel worker count must be at least 1")
        self.num_workers = int(num_workers)
        self.min_dispatch_rows = (
            self.DEFAULT_MIN_DISPATCH_ROWS if min_dispatch_rows is None else int(min_dispatch_rows)
        )
        self.task_timeout = (
            self.DEFAULT_TASK_TIMEOUT if task_timeout is None else float(task_timeout)
        )
        if self.task_timeout <= 0:
            raise ValidationError("task_timeout must be positive")
        self.max_task_retries = (
            self.DEFAULT_MAX_TASK_RETRIES if max_task_retries is None else int(max_task_retries)
        )
        if self.max_task_retries < 0:
            raise ValidationError("max_task_retries must not be negative")
        self.retry_backoff = (
            self.DEFAULT_RETRY_BACKOFF if retry_backoff is None else float(retry_backoff)
        )
        self.faults = faults
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._finalizer = None
        self._closed = False
        #: Guards pool creation/respawn/close so serving-layer threads never
        #: race two pools into existence.
        self._pool_mutex = threading.Lock()
        self._counter_lock = threading.Lock()
        #: Cumulative supervision counters (see :meth:`stats`).
        self.counters: Dict[str, int] = {
            "dispatches": 0,
            "tasks": 0,
            "worker_retries": 0,
            "pool_respawns": 0,
            "infra_failures": 0,
            "fallbacks": 0,
            "query_errors": 0,
        }
        #: Per-dispatching-thread record of the most recent fan-out
        #: (retries/respawns/reason) so callers can attribute supervision
        #: work to the statement that paid for it.
        self._report_local = threading.local()

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._pool is not None

    def ensure_started(self) -> None:
        """Start the worker processes now (idempotent, thread-safe).

        Called lazily on the first parallel aggregate, and eagerly by
        :class:`~repro.driver.iteration.IterationController` so iterative
        methods never pay the spawn cost inside a timed iteration.
        """
        if self._pool is not None or self._closed:
            return
        with self._pool_mutex:
            if self._pool is None and not self._closed:
                context = multiprocessing.get_context(self.start_method)
                self._pool = context.Pool(self.num_workers, initializer=_worker_initializer)
                self._finalizer = weakref.finalize(self, _terminate_pool, self._pool)

    def close(self) -> None:
        """Shut the workers down (idempotent); the pool cannot be restarted."""
        with self._pool_mutex:
            self._closed = True
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
        if pool is not None:
            _terminate_pool(pool)

    def respawn(self) -> None:
        """Terminate and recreate the worker processes (supervision restart).

        Reclaims hung worker slots (a sleeping fork occupies a pool slot
        forever; ``Pool`` only repopulates workers that *died*).  Outstanding
        results from the old pool never arrive — their dispatch loops hit
        the per-task deadline and retry on the fresh pool.
        """
        with self._pool_mutex:
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if pool is None or self._closed:
                return
            with self._counter_lock:
                self.counters["pool_respawns"] += 1
        _terminate_pool(pool)
        self.ensure_started()

    # -- supervision ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """A snapshot of the cumulative supervision counters."""
        with self._counter_lock:
            return dict(self.counters)

    def consume_dispatch_report(self) -> Optional[Dict[str, Any]]:
        """The calling thread's most recent fan-out report, cleared on read.

        ``{"worker_retries", "pool_respawns", "fallback_reason"}`` — the
        executor copies these onto the statement's ``ExecutionStats`` so a
        retried or fallen-back statement is visible in EXPLAIN ANALYZE and
        the serving stats, attributed to the statement that paid the cost.
        """
        report = getattr(self._report_local, "value", None)
        self._report_local.value = None
        return report

    def _set_report(
        self, retries: int, respawns: int, reason: Optional[str] = None
    ) -> None:
        if retries or respawns or reason is not None:
            self._report_local.value = {
                "worker_retries": retries,
                "pool_respawns": respawns,
                "fallback_reason": reason,
            }
        else:
            self._report_local.value = None

    def _count(self, key: str, amount: int = 1) -> None:
        with self._counter_lock:
            self.counters[key] += amount

    def _probe_fault(self, site: str):
        injector = self.faults
        return injector.probe(site) if injector is not None else None

    def _task_directive(self) -> Optional[tuple]:
        """The coordinator-decided fault directive for one task (chaos only)."""
        fault = self._probe_fault("parallel.task")
        if fault is None:
            return None
        if fault.kind == WORKER_CRASH:
            return ("crash",)
        if fault.kind == WORKER_HANG:
            return ("hang", fault.delay)
        if fault.kind == SLOW_WORKER:
            return ("slow", fault.delay)
        return None

    def _attempt(
        self,
        fn: Callable[[tuple], Any],
        tasks: Sequence[tuple],
        pending: List[int],
        results: List[Any],
        done: List[bool],
    ) -> None:
        """One dispatch attempt over the unfinished tasks.

        Fills ``results``/``done`` for every task whose result arrives in
        time; raises :class:`_InfraFailure` on the first infra fault (later
        pending tasks stay marked unfinished for the retry), re-raises the
        first query error unchanged.
        """
        pool = self._pool
        if pool is None:
            raise _InfraFailure("pool_closed", False)
        fault = self._probe_fault("parallel.dispatch")
        if fault is not None and fault.kind == PICKLE_ERROR:
            raise _InfraFailure(PICKLE_ERROR, False)
        handles = [
            (index, pool.apply_async(fn, ((self._task_directive(),) + tasks[index],)))
            for index in pending
        ]
        # Tasks queue when a fan-out is wider than the pool; give each wave
        # of ``num_workers`` tasks its own deadline slice.
        waves = -(-len(pending) // self.num_workers)
        deadline = time.monotonic() + self.task_timeout * max(1, waves)
        for index, handle in handles:
            remaining = deadline - time.monotonic()
            try:
                results[index] = handle.get(timeout=max(remaining, 0.001))
                done[index] = True
            except multiprocessing.TimeoutError:
                raise _InfraFailure("worker_lost", True) from None
            except Exception as exc:
                reason, retryable = classify_failure(exc)
                if reason is None:
                    self._count("query_errors")
                    raise  # the query's own error: byte-identical passthrough
                raise _InfraFailure(reason, retryable) from exc

    def _dispatch(self, fn: Callable[[tuple], Any], tasks: Sequence[tuple]) -> List[Any]:
        """Supervised fan-out: per-task results in task order.

        Retries unfinished tasks (respawning the pool first) up to
        ``max_task_retries`` times with exponential backoff; raises
        :class:`WorkerPoolError` when infra faults win, re-raises query
        errors unchanged.  Completed tasks are never re-run — retry is per
        segment, not per fan-out.
        """
        count = len(tasks)
        results: List[Any] = [None] * count
        done = [False] * count
        retries = 0
        respawns = 0
        self._count("dispatches")
        self._count("tasks", count)
        for attempt in range(self.max_task_retries + 1):
            pending = [index for index in range(count) if not done[index]]
            if attempt:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                retries += len(pending)
                self._count("worker_retries", len(pending))
            try:
                self._attempt(fn, tasks, pending, results, done)
                self._set_report(retries, respawns)
                return results
            except _InfraFailure as failure:
                self._count("infra_failures")
                if failure.retryable and not self._closed:
                    self.respawn()
                    respawns += 1
                if not failure.retryable or attempt == self.max_task_retries:
                    self._count("fallbacks")
                    self._set_report(retries, respawns, failure.reason)
                    raise WorkerPoolError(
                        failure.reason, retries=retries, respawns=respawns
                    ) from None

    # -- execution -------------------------------------------------------------

    def run_aggregate(
        self,
        definition: AggregateDefinition,
        segment_streams: Sequence[Any],
        *,
        use_batch: bool = True,
    ) -> Optional[Tuple[List[Any], List[float], float]]:
        """Fold every segment stream in the worker pool.

        Returns ``(partial_states, per_segment_seconds, wall_seconds)`` where
        ``per_segment_seconds`` are measured *inside* the workers (the fold
        itself) and ``wall_seconds`` is the coordinator-observed elapsed time
        for the whole fan-out — dispatch, folds and IPC included.  Returns
        ``None`` when this aggregate cannot be shipped (non-picklable UDA) or
        the pool is closed, in which case the caller folds in-process.
        Raises :class:`WorkerPoolError` when supervision exhausted its
        retries (the caller falls back with the reason recorded), and
        re-raises worker-side query errors unchanged.
        """
        if self._closed:
            return None
        if sum(len(stream) for stream in segment_streams) < self.min_dispatch_rows:
            return None
        spec = shippable_spec(definition, use_batch)
        if spec is None:
            return None
        self.ensure_started()
        tasks = [(spec, stream, use_batch) for stream in segment_streams]
        start = time.perf_counter()
        results = self._dispatch(_fold_segment_task, tasks)
        wall = time.perf_counter() - start
        states = [state for state, _ in results]
        seconds = [elapsed for _, elapsed in results]
        return states, seconds, wall

    def grouped_dispatch_worthwhile(self, sample_groups: int, sample_rows: int) -> bool:
        """The group-cardinality planner heuristic for grouped dispatch.

        ``min_dispatch_rows == 0`` is the force-everything test mode and
        bypasses the check.
        """
        if self.min_dispatch_rows == 0:
            return True
        if sample_rows == 0:
            return False
        return sample_groups <= self.MAX_GROUP_FRACTION * sample_rows

    def run_grouped(
        self,
        key_exprs: Sequence[Any],
        keys_per_column: Sequence[Sequence[str]],
        agg_entries: Sequence[tuple],
        parameters: Optional[dict],
        segment_rows: Sequence[Sequence[tuple]],
        *,
        use_batch: bool = True,
    ) -> Optional[Tuple[List[list], List[List[float]], List[float], float]]:
        """Run phase one of a grouped statement in the pool, one task per segment.

        ``agg_entries`` pairs each aggregate's shippable spec with its
        argument mode (``("star",)`` or ``("exprs", asts)``); the caller (the
        executor's grouped planner) has already validated shippability and
        compiled the expressions against the guarded builtin registry.
        Returns ``(partial_tables, per_segment_agg_seconds, key_seconds,
        wall_seconds)`` — one partial table per segment, in segment order —
        or ``None`` when the fan-out is too small, the payload does not
        pickle, or the pool is closed; the caller then groups in-process.
        """
        if self._closed:
            return None
        if sum(len(rows) for rows in segment_rows) < self.min_dispatch_rows:
            return None
        header = (tuple(keys_per_column), tuple(key_exprs), parameters, tuple(agg_entries), use_batch)
        try:
            pickle.dumps(header)
        except Exception:
            return None
        self.ensure_started()
        tasks = [header + (rows,) for rows in segment_rows]
        start = time.perf_counter()
        results = self._dispatch(_grouped_segment_task, tasks)
        wall = time.perf_counter() - start
        tables = [table for table, _, _ in results]
        agg_seconds = [seconds for _, seconds, _ in results]
        key_seconds = [elapsed for _, _, elapsed in results]
        return tables, agg_seconds, key_seconds, wall

    def run_join(
        self,
        join_spec: tuple,
        probe_segments: Sequence[Sequence[tuple]],
        build_segments: Optional[Sequence[Sequence[tuple]]],
        build_rows: Sequence[tuple],
    ) -> Optional[Tuple[List[list], List[float], float]]:
        """Run a hash join's build/probe phase in the pool, one task per segment.

        ``join_spec`` is the shippable description produced by
        :func:`repro.engine.join.execute_hash_join` (side layouts, key and
        residual ASTs, join kind, parameters).  When ``build_segments`` is
        given the join is co-located — task *i* pairs probe segment *i* with
        build segment *i*; otherwise ``build_rows`` (the whole, small, build
        side) is broadcast to every task.  Returns ``(per_segment_rows,
        per_segment_seconds, wall_seconds)`` with per-segment outputs in
        segment order, or ``None`` when the payload does not pickle or the
        pool is closed — the caller then joins in-process.
        """
        if self._closed:
            return None
        if sum(len(rows) for rows in probe_segments) < self.min_dispatch_rows:
            return None
        try:
            pickle.dumps(join_spec)
        except Exception:
            return None
        self.ensure_started()
        if build_segments is not None:
            tasks = [
                join_spec + (probe, build)
                for probe, build in zip(probe_segments, build_segments)
            ]
        else:
            build_payload = list(build_rows)
            tasks = [join_spec + (probe, build_payload) for probe in probe_segments]
        start = time.perf_counter()
        results = self._dispatch(_join_segment_task, tasks)
        wall = time.perf_counter() - start
        rows = [segment_rows for segment_rows, _ in results]
        seconds = [elapsed for _, elapsed in results]
        return rows, seconds, wall

    def __enter__(self) -> "SegmentWorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else ("started" if self.started else "idle")
        return f"SegmentWorkerPool(num_workers={self.num_workers}, {state})"
