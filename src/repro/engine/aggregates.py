"""User-defined aggregates: the paper's basic macro-programming building block.

Section 3.1.1 describes the two-or-three-function aggregate pattern that is
"the most basic building block in the macro-programming of MADlib":

1. a **transition** function folding one row into the running state,
2. an optional **merge** function combining two partial states (needed only
   for parallel execution across segments), and
3. a **final** function turning a state into the output value.

:class:`AggregateDefinition` captures that pattern; :class:`AggregateRunner`
executes it either as a single stream (one segment) or in the shared-nothing
style — independent per-segment folds followed by a merge tree — which is how
the executor and the Figure 4/5 benchmark harness run it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import FunctionError
from .types import ANY, BIGINT, DOUBLE, DOUBLE_ARRAY, SQLType, is_null

__all__ = [
    "AggregateDefinition",
    "AggregateRunner",
    "builtin_aggregates",
]


@dataclass
class AggregateDefinition:
    """A user-defined aggregate (transition / merge / final).

    Attributes
    ----------
    name:
        SQL name of the aggregate.
    transition:
        ``transition(state, *args) -> state``.  Must accept ``initial_state``
        (or the state returned by a previous call) as its first argument.
    merge:
        Optional ``merge(state_a, state_b) -> state``.  Required for the
        parallel (segmented) execution path; aggregates without a merge
        function are still executable but only serially, exactly like a
        PostgreSQL aggregate without a combine function.
    final:
        Optional ``final(state) -> value``; identity when omitted.
    initial_state:
        Either a value or a zero-argument callable producing a fresh state.
    strict:
        When true, rows where any aggregate argument is NULL are skipped
        (the behaviour of built-in SQL aggregates).
    return_type:
        Declared SQL type of the final result.
    batch_transition:
        Optional ``batch_transition(state, *argument_columns) -> state``
        consuming one segment's worth of (strict-filtered) argument values as
        whole columns in a single call.  Must be semantically interchangeable
        with folding ``transition`` over the same rows; the segmented
        executor uses it when present and silently falls back to the
        row-at-a-time fold otherwise (or when the batch kernel raises).  See
        :mod:`repro.engine.vectorized`.
    """

    name: str
    transition: Callable[..., Any]
    merge: Optional[Callable[[Any, Any], Any]] = None
    final: Optional[Callable[[Any], Any]] = None
    initial_state: Any = None
    strict: bool = True
    return_type: SQLType = ANY
    batch_transition: Optional[Callable[..., Any]] = None

    def make_state(self) -> Any:
        if callable(self.initial_state):
            return self.initial_state()
        return self.initial_state

    def finalize(self, state: Any) -> Any:
        if self.final is None:
            return state
        return self.final(state)

    @property
    def supports_parallel(self) -> bool:
        """Whether the aggregate can run with per-segment partial states."""
        return self.merge is not None


class AggregateRunner:
    """Executes an :class:`AggregateDefinition` over streams of argument tuples."""

    def __init__(self, definition: AggregateDefinition) -> None:
        self.definition = definition

    # -- serial path ---------------------------------------------------------

    def fold(self, argument_rows: Iterable[Sequence[Any]], state: Any = None) -> Any:
        """Fold the transition function over one stream, returning the state."""
        definition = self.definition
        if state is None:
            state = definition.make_state()
        transition = definition.transition
        strict = definition.strict
        for args in argument_rows:
            if strict and any(is_null(arg) for arg in args):
                continue
            state = transition(state, *args)
        return state

    def run(self, argument_rows: Iterable[Sequence[Any]]) -> Any:
        """Serial execution: fold then finalize."""
        return self.definition.finalize(self.fold(argument_rows))

    # -- parallel (segmented) path --------------------------------------------

    def partial_states(self, segments: Sequence[Iterable[Sequence[Any]]]) -> List[Any]:
        """Run the transition fold independently on each segment's rows."""
        return [self.fold(segment) for segment in segments]

    def merge_states(self, states: Sequence[Any]) -> Any:
        """Combine per-segment partial states with the merge function."""
        definition = self.definition
        if not states:
            return definition.make_state()
        if len(states) == 1:
            return states[0]
        if definition.merge is None:
            raise FunctionError(
                f"aggregate {definition.name!r} has no merge function and "
                "cannot be executed in parallel"
            )
        merged = states[0]
        for state in states[1:]:
            merged = definition.merge(merged, state)
        return merged

    def run_segmented(self, segments: Sequence[Iterable[Sequence[Any]]]) -> Any:
        """Parallel-style execution: per-segment folds, merge, finalize."""
        return self.definition.finalize(self.merge_states(self.partial_states(segments)))


# ---------------------------------------------------------------------------
# Built-in SQL aggregates
# ---------------------------------------------------------------------------


def _count_transition(state: int, *_args: Any) -> int:
    return state + 1


def _sum_transition(state, value):
    if state is None:
        if isinstance(value, np.ndarray):
            return np.array(value, dtype=np.float64, copy=True)
        return value
    if isinstance(state, np.ndarray):
        return state + np.asarray(value, dtype=np.float64)
    return state + value


def _sum_merge(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64)
    return a + b


def _avg_transition(state, value):
    count, total = state
    return (count + 1, total + float(value))


def _avg_merge(a, b):
    return (a[0] + b[0], a[1] + b[1])


def _avg_final(state):
    count, total = state
    if count == 0:
        return None
    return total / count


def _minmax_transition(op):
    def transition(state, value):
        if state is None:
            return value
        return op(state, value)

    return transition


def _variance_transition(state, value):
    # Welford's online update: state is (count, mean, M2). Numerically stable
    # for large values with small spread, unlike the sum-of-squares formula.
    count, mean, m2 = state
    value = float(value)
    count += 1
    delta = value - mean
    mean += delta / count
    m2 += delta * (value - mean)
    return (count, mean, m2)


def _variance_merge(a, b):
    # Chan et al.'s parallel combination of two (count, mean, M2) states.
    count_a, mean_a, m2_a = a
    count_b, mean_b, m2_b = b
    if count_a == 0:
        return b
    if count_b == 0:
        return a
    count = count_a + count_b
    delta = mean_b - mean_a
    mean = mean_a + delta * count_b / count
    m2 = m2_a + m2_b + delta * delta * count_a * count_b / count
    return (count, mean, m2)


def _variance_final(state, *, sample: bool = True):
    count, _mean, m2 = state
    denominator = count - 1 if sample else count
    if denominator <= 0:
        return None
    return max(m2 / denominator, 0.0)


def _stddev_final(state, *, sample: bool = True):
    variance = _variance_final(state, sample=sample)
    if variance is None:
        return None
    return math.sqrt(variance)


def _array_agg_transition(state: List[Any], value: Any) -> List[Any]:
    state.append(value)
    return state


def _array_agg_merge(a: List[Any], b: List[Any]) -> List[Any]:
    return a + b


def _string_agg_transition(state, value, delimiter=None):
    # PostgreSQL is strict in the *value* only: NULL values are skipped, but
    # a NULL (or missing) delimiter contributes nothing (plain concatenation)
    # rather than dropping the row — hence strict=False on the definition and
    # the explicit skip here.
    if is_null(value):
        return state
    state.append((str(value), "" if is_null(delimiter) else str(delimiter)))
    return state


def _string_agg_final(state):
    if not state:
        return None
    # Row i's delimiter goes *before* row i's value (the first row's own
    # delimiter is never emitted), matching PostgreSQL's string_agg.
    parts = [state[0][0]]
    for part, delimiter in state[1:]:
        parts.append(delimiter)
        parts.append(part)
    return "".join(parts)


def _bool_transition(op):
    def transition(state, value):
        if state is None:
            return bool(value)
        return op(state, bool(value))

    return transition


def _vector_sum_transition(state, value):
    vector = np.asarray(value, dtype=np.float64)
    if state is None:
        return vector.copy()
    return state + vector


def builtin_aggregates() -> List[AggregateDefinition]:
    """Aggregate definitions registered in every new database.

    Built-ins whose semantics allow it carry a ``batch_transition`` kernel
    (see :mod:`repro.engine.vectorized`); order-sensitive ones
    (``array_agg``, ``string_agg``) never do.
    """
    from .vectorized import builtin_batch_transitions

    batch_kernels = builtin_batch_transitions()
    definitions = [
        AggregateDefinition(
            "count",
            _count_transition,
            merge=lambda a, b: a + b,
            initial_state=0,
            strict=True,
            return_type=BIGINT,
        ),
        AggregateDefinition(
            "sum", _sum_transition, merge=_sum_merge, initial_state=None, return_type=ANY
        ),
        AggregateDefinition(
            "avg",
            _avg_transition,
            merge=_avg_merge,
            final=_avg_final,
            initial_state=lambda: (0, 0.0),
            return_type=DOUBLE,
        ),
        AggregateDefinition(
            "min",
            _minmax_transition(min),
            merge=lambda a, b: b if a is None else (a if b is None else min(a, b)),
            initial_state=None,
        ),
        AggregateDefinition(
            "max",
            _minmax_transition(max),
            merge=lambda a, b: b if a is None else (a if b is None else max(a, b)),
            initial_state=None,
        ),
        AggregateDefinition(
            "var_samp",
            _variance_transition,
            merge=_variance_merge,
            final=lambda s: _variance_final(s, sample=True),
            initial_state=lambda: (0, 0.0, 0.0),
            return_type=DOUBLE,
        ),
        AggregateDefinition(
            "var_pop",
            _variance_transition,
            merge=_variance_merge,
            final=lambda s: _variance_final(s, sample=False),
            initial_state=lambda: (0, 0.0, 0.0),
            return_type=DOUBLE,
        ),
        AggregateDefinition(
            "variance",
            _variance_transition,
            merge=_variance_merge,
            final=lambda s: _variance_final(s, sample=True),
            initial_state=lambda: (0, 0.0, 0.0),
            return_type=DOUBLE,
        ),
        AggregateDefinition(
            "stddev",
            _variance_transition,
            merge=_variance_merge,
            final=lambda s: _stddev_final(s, sample=True),
            initial_state=lambda: (0, 0.0, 0.0),
            return_type=DOUBLE,
        ),
        AggregateDefinition(
            "stddev_pop",
            _variance_transition,
            merge=_variance_merge,
            final=lambda s: _stddev_final(s, sample=False),
            initial_state=lambda: (0, 0.0, 0.0),
            return_type=DOUBLE,
        ),
        AggregateDefinition(
            "array_agg",
            _array_agg_transition,
            merge=_array_agg_merge,
            initial_state=list,
            strict=False,
            return_type=ANY,
        ),
        AggregateDefinition(
            "string_agg",
            _string_agg_transition,
            merge=lambda a, b: a + b,
            final=_string_agg_final,
            initial_state=list,
            strict=False,  # value-only NULL handling lives in the transition
            return_type=ANY,
        ),
        AggregateDefinition(
            "bool_and", _bool_transition(lambda a, b: a and b), merge=lambda a, b: (a and b)
            if a is not None and b is not None else (a if b is None else b),
            initial_state=None,
        ),
        AggregateDefinition(
            "bool_or", _bool_transition(lambda a, b: a or b), merge=lambda a, b: (a or b)
            if a is not None and b is not None else (a if b is None else b),
            initial_state=None,
        ),
        AggregateDefinition(
            "vector_sum",
            _vector_sum_transition,
            merge=_sum_merge,
            initial_state=None,
            return_type=DOUBLE_ARRAY,
        ),
    ]
    for definition in definitions:
        definition.batch_transition = batch_kernels.get(definition.name)
    return definitions
