"""Equi-join planning and hash-join execution.

Before this module existed every join was an interpreted nested loop: the
executor evaluated the raw ON condition against a per-pair ``RowContext``
dict, O(N·M) context builds per join, and implicit multi-table FROM lists
were materialized as full Cartesian products before WHERE filtering.  The
paper's text-analytics methods are exactly the workloads that shape punishes
— the Viterbi dynamic program issues a three-way ``FROM factors f, paths p,
transitions t`` join per token position — so joins were the one operator
still outside the compiled/batched/parallel execution model of PRs 1–3.

This module closes that gap with the classic three-step treatment:

1. **Condition decomposition** (:func:`plan_hash_join`).  The ON condition —
   or, for an implicit multi-FROM query, the WHERE clause — is split into its
   AND-conjuncts and each conjunct is classified by which side(s) of the join
   its column references resolve to:

   * one side only → a **pushed-down prefilter** applied to that side before
     the join (for LEFT joins only the build side may be prefiltered from the
     ON condition — probe-side rows must survive to be NULL-extended);
   * an equality whose operands resolve to opposite sides → a **hash-key
     pair**;
   * anything else → the **residual**, evaluated per candidate pair during
     the probe (equivalent to a post-join filter for inner joins, and the
     correct per-pair match test for left joins).

2. **Build/probe execution** (:func:`execute_hash_join`).  The right side is
   the build side, the left side probes, so emission order is byte-identical
   to the nested loop's ``(left row, right row)`` scan order.  Keys are
   compared by :func:`~repro.engine.types.hashable_key` identity — the same
   equality GROUP BY and DISTINCT use — and a NULL (or NaN) key component
   never matches, matching SQL ``=`` semantics.  Key expressions, prefilters
   and the residual all run as compiled positional-row closures from
   :mod:`repro.engine.compile`; no per-pair ``RowContext`` dicts exist
   anywhere on this path.

3. **Segment-aware dispatch**.  When the probe side is large enough and the
   expressions are shippable (compile against the guarded builtin registry,
   see :mod:`repro.engine.parallel`), the build/probe runs on the
   :class:`~repro.engine.parallel.SegmentWorkerPool`, one task per probe
   segment.  Two shapes mirror Greenplum's motion avoidance: **co-located**
   (both sides are hash-distributed on their join key with equal segment
   counts — each worker joins matching segment pairs, no data crosses
   segments) and **broadcast** (a small build side is replicated to every
   worker).  Both produce exactly the in-process row order because probe
   rows are shipped in segment order, which *is* relation row order.

Anything the planner cannot prove safe — non-equi conditions, unresolvable
or ambiguous names, volatile functions, uncompilable subtrees — returns
``None`` and the executor falls back to the legacy nested loop, which keeps
name-resolution errors and unsupported constructs behaving exactly as
before.  For planned joins, *result sets* are byte-identical to the nested
loop (parity-tested across tiers in ``tests/engine/test_joins.py``), but —
as with every real query planner — predicate *evaluation counts* change:
prefilters run once per base row instead of once per pair, and the residual
runs only on key-matched pairs.  A predicate that raises (e.g. division by
zero) on rows the plan evaluates differently can therefore raise where the
nested loop did not, or vice versa; only volatile functions are guarded,
because they change results rather than error behaviour
(``docs/joins.md`` documents the caveat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .compile import ColumnLayout, compile_expression, keys_for_columns
from .expressions import BinaryOp, ColumnRef, Expression, FunctionCall, WindowCall
from .parallel import WorkerPoolError, guarded_function_registry
from .types import hashable_key, is_null

__all__ = [
    "HashJoinPlan",
    "JoinEstimates",
    "JoinOutcome",
    "split_conjuncts",
    "conjoin",
    "has_unshippable_calls",
    "classify_where_conjuncts",
    "plan_hash_join",
    "plan_key_join",
    "execute_hash_join",
]

#: Build on the left (probe) side only when it is at least this many times
#: smaller than the right side — hashing the smaller input and buffering
#: matches costs a grouping pass, so small imbalances are not worth it.
REVERSED_BUILD_RATIO = 4.0
#: ... and only when the right side is big enough for the build cost to
#: matter at all (also keeps small-table strategy labels stable).
REVERSED_BUILD_MIN_ROWS = 256


# ---------------------------------------------------------------------------
# Condition decomposition
# ---------------------------------------------------------------------------


def split_conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Flatten an AND tree into its conjuncts (left-to-right order)."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op.lower() == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild an AND tree from conjuncts; ``None`` for the empty list."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinaryOp("and", result, conjunct)
    return result


def has_unshippable_calls(
    expression: Expression, functions: Dict[str, Callable[..., Any]]
) -> bool:
    """True when the expression calls a volatile or unknown scalar function.

    A volatile function (``random()``) must be evaluated exactly as many
    times as the legacy execution would evaluate it; pushdown changes the
    evaluation count, so any such call disables join planning for the whole
    condition.  Window calls never belong in a join condition; treat them the
    same way.
    """
    for node in expression.walk():
        if isinstance(node, WindowCall):
            return True
        if isinstance(node, FunctionCall):
            registered = functions.get(node.name.lower())
            if registered is None or getattr(registered, "volatile", False):
                return True
    return False


def _equi_operand_indices(
    conjunct: Expression, layout: ColumnLayout
) -> Optional[Tuple[frozenset, frozenset]]:
    """Resolved column indices of an ``=`` conjunct's two operands, or ``None``.

    The shared first step of hash-key extraction for both classifiers
    (explicit ON conditions and implicit multi-FROM WHERE clauses): the
    conjunct must be a top-level equality and each operand must reference at
    least one resolvable column — the callers then check that the two
    operand index sets fall on opposite sides.
    """
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    first = layout.column_indices(conjunct.left)
    second = layout.column_indices(conjunct.right)
    if not first or not second:  # empty (constant) or unresolvable operand
        return None
    return first, second


def classify_where_conjuncts(
    where: Expression,
    full_layout: ColumnLayout,
    source_of: Sequence[int],
    functions: Dict[str, Callable[..., Any]],
) -> Optional[tuple]:
    """Split a multi-FROM WHERE clause for join pushdown, or ``None``.

    ``source_of`` maps each combined-row column index to its FROM-source
    index.  Returns ``(prefilters, edges, residual)`` where ``prefilters``
    maps a source index to its single-source conjuncts, ``edges`` is a list
    of ``(source_a, expr_a, source_b, expr_b)`` cross-source equality pairs,
    and ``residual`` holds everything else (evaluated post-join, which is
    equivalent for the inner semantics of a comma FROM list).  ``None`` means
    pushdown is unsafe — an unresolvable or ambiguous name (the interpreted
    path must raise its error), or a volatile/unknown function whose
    evaluation count must not change.
    """
    if has_unshippable_calls(where, functions):
        return None
    prefilters: Dict[int, List[Expression]] = {}
    edges: List[Tuple[int, Expression, int, Expression]] = []
    residual: List[Expression] = []
    for conjunct in split_conjuncts(where):
        indices = full_layout.column_indices(conjunct)
        if indices is None:
            return None
        sources = {source_of[index] for index in indices}
        if not sources:
            residual.append(conjunct)
            continue
        if len(sources) == 1:
            prefilters.setdefault(next(iter(sources)), []).append(conjunct)
            continue
        if len(sources) == 2:
            operands = _equi_operand_indices(conjunct, full_layout)
            if operands is not None:
                first_sources = {source_of[index] for index in operands[0]}
                second_sources = {source_of[index] for index in operands[1]}
                if (
                    len(first_sources) == 1
                    and len(second_sources) == 1
                    and first_sources != second_sources
                ):
                    edges.append(
                        (
                            next(iter(first_sources)),
                            conjunct.left,
                            next(iter(second_sources)),
                            conjunct.right,
                        )
                    )
                    continue
        residual.append(conjunct)
    if not edges and not prefilters:
        return None  # nothing to push down: keep the legacy shape
    return prefilters, edges, residual


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass
class HashJoinPlan:
    """A fully compiled equi-join plan for one build/probe step.

    All callables are positional-row closures; the AST fields exist so the
    parallel tier can re-compile the same expressions inside workers.
    """

    kind: str  # "inner" | "left"
    #: Compiled prefilters, applied to each side before the join.
    left_prefilter: Optional[Callable] = None
    right_prefilter: Optional[Callable] = None
    #: Hash-key closures, one per equi-conjunct, per side (parallel lists).
    left_key_fns: List[Callable] = field(default_factory=list)
    right_key_fns: List[Callable] = field(default_factory=list)
    #: The same key expressions as ASTs (for worker-side compilation).
    left_key_exprs: List[Expression] = field(default_factory=list)
    right_key_exprs: List[Expression] = field(default_factory=list)
    #: Residual predicate over the combined row, or None.
    residual_fn: Optional[Callable] = None
    residual_expr: Optional[Expression] = None
    #: Column-key layouts needed to rebuild the compile environment in a
    #: worker: left side, right side, combined row.
    left_keys_per_column: Tuple = ()
    right_keys_per_column: Tuple = ()
    combined_keys_per_column: Tuple = ()
    #: True when keys + residual compile against the guarded builtin registry
    #: (workers can reproduce them exactly); prefilters always run locally.
    shippable: bool = False
    #: When the key lists are exactly each side's distribution column (same
    #: stored python type on both sides), equal keys are guaranteed to live on
    #: equal segment indices — the co-located shape.
    colocated: bool = False


@dataclass
class JoinOutcome:
    """What one executed join step produced, for stats and relation building."""

    rows: List[Tuple[Any, ...]]
    segment_ids: List[int]
    strategy: str
    #: Coordinator-observed wall clock of the pool fan-out, when dispatched.
    parallel_wall_seconds: Optional[float] = None


@dataclass
class JoinEstimates:
    """Planner-estimated input/output cardinalities for one join step.

    Fed in by the executor (statistics-backed for base-table scans, actual
    materialized counts otherwise) for EXPLAIN display and the recorded
    :class:`~repro.engine.segments.JoinStep`.  Strategy *decisions* use the
    exact post-prefilter counts instead — both sides are materialized by
    execution time, so actual cardinalities strictly dominate estimates that
    may be stale or pre-filter.  Neither changes *what* a join emits or in
    which order — only which physically-equivalent strategy produces it.
    """

    left_rows: float
    right_rows: float
    output_rows: Optional[float] = None


def _classify_side(indices: frozenset, left_width: int) -> str:
    """Which side(s) a conjunct's resolved column indices fall on."""
    if not indices:
        return "none"
    left = any(index < left_width for index in indices)
    right = any(index >= left_width for index in indices)
    if left and right:
        return "both"
    return "left" if left else "right"


def plan_hash_join(
    left_columns: Sequence[Tuple[Optional[str], str]],
    right_columns: Sequence[Tuple[Optional[str], str]],
    kind: str,
    condition: Expression,
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]],
    *,
    left_distribution: Optional[tuple] = None,
    right_distribution: Optional[tuple] = None,
    check_shippable: bool = True,
) -> Optional[HashJoinPlan]:
    """Plan one inner/left equi-join, or ``None`` (→ nested-loop fallback).

    ``left_distribution`` / ``right_distribution`` are optional
    ``(column_index, python_type)`` pairs describing how each side's rows are
    hash-partitioned across segments; when the extracted join keys are exactly
    those columns (and the stored types agree, so hash inputs agree), the
    plan is marked co-located.  ``check_shippable=False`` skips the
    worker-shippability analysis (a second compile pass against the guarded
    registry) — pass it when no worker pool exists, where the flag would
    never be read.

    The planner is all-or-nothing: every consumed conjunct (prefilters, key
    pairs) and the residual must compile, the condition may not contain
    volatile or unknown functions, and every column reference must resolve in
    the combined layout.  Any failure returns ``None`` so the interpreted
    nested loop preserves the exact legacy semantics, error messages
    included.
    """
    if kind not in ("inner", "left"):
        return None
    if has_unshippable_calls(condition, functions):
        return None

    left_keys = keys_for_columns(left_columns)
    right_keys = keys_for_columns(right_columns)
    combined_keys = keys_for_columns(list(left_columns) + list(right_columns))
    left_layout = ColumnLayout(left_keys)
    right_layout = ColumnLayout(right_keys)
    combined_layout = ColumnLayout(combined_keys)
    left_width = len(left_columns)

    def compile_left(expression: Expression) -> Optional[Callable]:
        return compile_expression(expression, left_layout, functions, parameters)

    def compile_right(expression: Expression) -> Optional[Callable]:
        # Right-side rows are probed/built as bare right tuples, so indices
        # must be relative to the right layout, not the combined one.
        return compile_expression(expression, right_layout, functions, parameters)

    plan = HashJoinPlan(
        kind=kind,
        left_keys_per_column=tuple(tuple(keys) for keys in left_keys),
        right_keys_per_column=tuple(tuple(keys) for keys in right_keys),
        combined_keys_per_column=tuple(tuple(keys) for keys in combined_keys),
    )
    left_prefilters: List[Expression] = []
    right_prefilters: List[Expression] = []
    residuals: List[Expression] = []

    for conjunct in split_conjuncts(condition):
        indices = combined_layout.column_indices(conjunct)
        if indices is None:
            return None  # unresolvable/ambiguous name: legacy path must raise
        side = _classify_side(indices, left_width)
        if side == "left" and kind == "inner":
            left_prefilters.append(conjunct)
            continue
        if side == "right":
            # Valid for LEFT joins too: a build row failing a build-side-only
            # ON conjunct can never match any probe row.
            right_prefilters.append(conjunct)
            continue
        if side == "both":
            operands = _equi_operand_indices(conjunct, combined_layout)
            if operands is not None:
                first_side = _classify_side(operands[0], left_width)
                second_side = _classify_side(operands[1], left_width)
                if {first_side, second_side} == {"left", "right"}:
                    left_expr, right_expr = (
                        (conjunct.left, conjunct.right)
                        if first_side == "left"
                        else (conjunct.right, conjunct.left)
                    )
                    plan.left_key_exprs.append(left_expr)
                    plan.right_key_exprs.append(right_expr)
                    continue
        residuals.append(conjunct)

    if not plan.left_key_exprs:
        return None  # no equi key: hash join buys nothing, nested loop it is

    if left_prefilters:
        plan.left_prefilter = compile_left(conjoin(left_prefilters))
        if plan.left_prefilter is None:
            return None
    if right_prefilters:
        plan.right_prefilter = compile_right(conjoin(right_prefilters))
        if plan.right_prefilter is None:
            return None
    if residuals:
        plan.residual_expr = conjoin(residuals)
        plan.residual_fn = compile_expression(
            plan.residual_expr, combined_layout, functions, parameters
        )
        if plan.residual_fn is None:
            return None

    return _finalize_plan(
        plan,
        left_layout,
        right_layout,
        combined_layout,
        functions,
        parameters,
        left_distribution,
        right_distribution,
        check_shippable,
    )


def plan_key_join(
    left_columns: Sequence[Tuple[Optional[str], str]],
    right_columns: Sequence[Tuple[Optional[str], str]],
    left_key_exprs: Sequence[Expression],
    right_key_exprs: Sequence[Expression],
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]],
    *,
    left_distribution: Optional[tuple] = None,
    right_distribution: Optional[tuple] = None,
    check_shippable: bool = True,
) -> Optional[HashJoinPlan]:
    """Plan one inner join step from pre-extracted key pairs, or ``None``.

    Used by the implicit multi-FROM planner, which classifies the WHERE
    clause itself (prefilters are applied per source, residual conjuncts are
    left for the post-join WHERE) and only needs the key compilation,
    shippability and co-location analysis here.
    """
    left_keys = keys_for_columns(left_columns)
    right_keys = keys_for_columns(right_columns)
    combined_keys = keys_for_columns(list(left_columns) + list(right_columns))
    plan = HashJoinPlan(
        kind="inner",
        left_keys_per_column=tuple(tuple(keys) for keys in left_keys),
        right_keys_per_column=tuple(tuple(keys) for keys in right_keys),
        combined_keys_per_column=tuple(tuple(keys) for keys in combined_keys),
    )
    plan.left_key_exprs = list(left_key_exprs)
    plan.right_key_exprs = list(right_key_exprs)
    return _finalize_plan(
        plan,
        ColumnLayout(left_keys),
        ColumnLayout(right_keys),
        ColumnLayout(combined_keys),
        functions,
        parameters,
        left_distribution,
        right_distribution,
        check_shippable,
    )


def _finalize_plan(
    plan: HashJoinPlan,
    left_layout: ColumnLayout,
    right_layout: ColumnLayout,
    combined_layout: ColumnLayout,
    functions: Dict[str, Callable[..., Any]],
    parameters: Optional[Dict[str, Any]],
    left_distribution: Optional[tuple],
    right_distribution: Optional[tuple],
    check_shippable: bool,
) -> Optional[HashJoinPlan]:
    """Compile the key closures and derive shippability / co-location."""
    plan.left_key_fns = [
        compile_expression(expr, left_layout, functions, parameters)
        for expr in plan.left_key_exprs
    ]
    plan.right_key_fns = [
        compile_expression(expr, right_layout, functions, parameters)
        for expr in plan.right_key_exprs
    ]
    if any(fn is None for fn in plan.left_key_fns + plan.right_key_fns):
        return None

    # Shippability: workers rebuild the builtin registry locally, so the key
    # and residual expressions may only cross the process boundary when they
    # compile against the guarded subset (genuine builtins only).  Skipped
    # when the caller has no pool — the flag would never be read.
    if check_shippable:
        guarded = guarded_function_registry(functions)
        plan.shippable = all(
            compile_expression(expr, layout, guarded, parameters) is not None
            for expr, layout in (
                [(e, left_layout) for e in plan.left_key_exprs]
                + [(e, right_layout) for e in plan.right_key_exprs]
                + (
                    [(plan.residual_expr, combined_layout)]
                    if plan.residual_expr is not None
                    else []
                )
            )
        )

    plan.colocated = _keys_are_distribution_columns(
        plan, left_layout, right_layout, left_distribution, right_distribution
    )
    return plan


def _keys_are_distribution_columns(
    plan: HashJoinPlan,
    left_layout: ColumnLayout,
    right_layout: ColumnLayout,
    left_distribution: Optional[tuple],
    right_distribution: Optional[tuple],
) -> bool:
    """Whether some key pair is exactly (left dist column, right dist column).

    Equal key values then hash to equal segment indices on both sides (the
    tables share :func:`~repro.engine.table._distribution_hash`), provided the
    stored python types agree — ``1`` and ``1.0`` compare equal but ``repr``
    differently, so mixed integer/double distribution columns are excluded.
    """
    if left_distribution is None or right_distribution is None:
        return False
    left_index, left_type = left_distribution
    right_index, right_type = right_distribution
    if left_type is not right_type:
        return False
    for left_expr, right_expr in zip(plan.left_key_exprs, plan.right_key_exprs):
        left_refs = left_layout.column_indices(left_expr)
        right_refs = right_layout.column_indices(right_expr)
        if (
            left_refs == frozenset({left_index})
            and right_refs == frozenset({right_index})
            and _is_bare_column(left_expr)
            and _is_bare_column(right_expr)
        ):
            return True
    return False


def _is_bare_column(expression: Expression) -> bool:
    return isinstance(expression, ColumnRef)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def apply_prefilter(
    predicate: Optional[Callable],
    rows: List[Tuple[Any, ...]],
    segment_ids: List[int],
) -> Tuple[List[Tuple[Any, ...]], List[int]]:
    """Filter rows (and their segment provenance) with a compiled predicate."""
    if predicate is None:
        return rows, segment_ids
    kept_rows: List[Tuple[Any, ...]] = []
    kept_segments: List[int] = []
    for row, segment in zip(rows, segment_ids):
        if predicate(row) is True:
            kept_rows.append(row)
            kept_segments.append(segment)
    return kept_rows, kept_segments


def build_hash_table(
    rows: Sequence[Tuple[Any, ...]], key_fns: Sequence[Callable]
) -> Dict[Any, List[Tuple[Any, ...]]]:
    """Bucket build-side rows by key tuple; NULL/NaN key components never enter.

    Bucket lists preserve build-side scan order, which is what makes the
    probe emit rows in exactly the nested loop's order.
    """
    buckets: Dict[Any, List[Tuple[Any, ...]]] = {}
    for row in rows:
        components = tuple(fn(row) for fn in key_fns)
        if any(is_null(component) for component in components):
            continue
        key = tuple(hashable_key(component) for component in components)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    return buckets


def probe_hash_table(
    probe_rows: Sequence[Tuple[Any, ...]],
    probe_segments: Sequence[int],
    buckets: Dict[Any, List[Tuple[Any, ...]]],
    key_fns: Sequence[Callable],
    residual_fn: Optional[Callable],
    kind: str,
    right_width: int,
) -> Tuple[List[Tuple[Any, ...]], List[int]]:
    """Probe: emit combined rows in (probe order, bucket order)."""
    out_rows: List[Tuple[Any, ...]] = []
    out_segments: List[int] = []
    null_pad = (None,) * right_width
    left_join = kind == "left"
    for row, segment in zip(probe_rows, probe_segments):
        components = tuple(fn(row) for fn in key_fns)
        matched = False
        if not any(is_null(component) for component in components):
            key = tuple(hashable_key(component) for component in components)
            for build_row in buckets.get(key, ()):
                combined = row + build_row
                if residual_fn is None or residual_fn(combined) is True:
                    out_rows.append(combined)
                    out_segments.append(segment)
                    matched = True
        if left_join and not matched:
            out_rows.append(row + null_pad)
            out_segments.append(segment)
    return out_rows, out_segments


def _segment_runs(segment_ids: Sequence[int], num_segments: int) -> Optional[List[Tuple[int, int]]]:
    """``[(start, end)]`` slices, one per segment 0..n-1, when the ids are one
    ascending run per segment (possibly empty); ``None`` otherwise.

    Scanned relations satisfy this by construction and prefilters preserve
    it; the pool relies on it to reconstruct global row order from
    per-segment outputs.
    """
    runs: List[Tuple[int, int]] = []
    cursor = 0
    total = len(segment_ids)
    for segment in range(num_segments):
        start = cursor
        while cursor < total and segment_ids[cursor] == segment:
            cursor += 1
        runs.append((start, cursor))
    if cursor != total:
        return None
    return runs


def execute_hash_join(
    plan: HashJoinPlan,
    left,
    right,
    *,
    pool=None,
    parameters: Optional[Dict[str, Any]] = None,
) -> JoinOutcome:
    """Run a planned hash join over two relations (duck-typed: ``rows``,
    ``segment_ids``, ``num_segments``, ``columns`` attributes).

    Prefilters always run on the coordinator.  The build/probe phase runs on
    the worker ``pool`` when it is worthwhile (probe side at or above the
    pool's dispatch floor, expressions shippable, and either a co-located
    key pair or a build side cheap enough to broadcast under the cost
    model); otherwise — and on any dispatch failure — it runs in-process
    with identical results.  In-process, the build side is cost-driven:
    when the exact post-prefilter counts say the left side is much smaller,
    the hash table is built on the left and the right side probes
    (:func:`_reversed_hash_join`), emitting the exact same rows in the
    exact same order.
    """
    probe_rows, probe_segments = apply_prefilter(
        plan.left_prefilter, left.rows, left.segment_ids
    )
    build_rows, build_segments = apply_prefilter(
        plan.right_prefilter, right.rows, right.segment_ids
    )
    right_width = len(right.columns)

    if pool is not None and len(probe_rows) >= max(pool.min_dispatch_rows, 1):
        outcome = _try_parallel_join(
            plan,
            pool,
            probe_rows,
            probe_segments,
            left.num_segments,
            build_rows,
            build_segments,
            right.num_segments,
            right_width,
            parameters,
        )
        if outcome is not None:
            return outcome

    # The cost inputs here are the *exact* post-prefilter cardinalities — at
    # execution time both sides are materialized, so actual counts strictly
    # dominate the planner's pre-filter estimates (which can be stale or
    # inflated); `estimates` is kept for EXPLAIN display and stats.
    actual_left = float(len(probe_rows))
    actual_right = float(len(build_rows))
    if (
        actual_right >= REVERSED_BUILD_MIN_ROWS
        and actual_left * REVERSED_BUILD_RATIO <= actual_right
    ):
        rows, segments = _reversed_hash_join(
            plan, probe_rows, probe_segments, build_rows, right_width
        )
        return JoinOutcome(rows, segments, "hash_reversed")

    buckets = build_hash_table(build_rows, plan.right_key_fns)
    rows, segments = probe_hash_table(
        probe_rows,
        probe_segments,
        buckets,
        plan.left_key_fns,
        plan.residual_fn,
        plan.kind,
        right_width,
    )
    return JoinOutcome(rows, segments, "hash")


def _reversed_hash_join(
    plan: HashJoinPlan,
    left_rows: Sequence[Tuple[Any, ...]],
    left_segments: Sequence[int],
    right_rows: Sequence[Tuple[Any, ...]],
    right_width: int,
) -> Tuple[List[Tuple[Any, ...]], List[int]]:
    """Build on the (smaller) left side, probe with the right, emit in the
    canonical (left scan order, right scan order) nested-loop order.

    The hash table maps key → left row indices; probing right rows in scan
    order appends each match to its left row's buffer, so every buffer is
    right-ordered and a final ascending walk over left indices reproduces
    the standard probe's emission order byte-for-byte.  Costs one buffering
    pass over the matches — worth it when building the right side's hash
    table would dominate.
    """
    buckets: Dict[Any, List[int]] = {}
    for left_index, row in enumerate(left_rows):
        components = tuple(fn(row) for fn in plan.left_key_fns)
        if any(is_null(component) for component in components):
            continue
        key = tuple(hashable_key(component) for component in components)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [left_index]
        else:
            bucket.append(left_index)

    matches: Dict[int, List[Tuple[Any, ...]]] = {}
    residual_fn = plan.residual_fn
    for right_row in right_rows:
        components = tuple(fn(right_row) for fn in plan.right_key_fns)
        if any(is_null(component) for component in components):
            continue
        key = tuple(hashable_key(component) for component in components)
        for left_index in buckets.get(key, ()):
            combined = left_rows[left_index] + right_row
            if residual_fn is None or residual_fn(combined) is True:
                buffer = matches.get(left_index)
                if buffer is None:
                    matches[left_index] = [combined]
                else:
                    buffer.append(combined)

    out_rows: List[Tuple[Any, ...]] = []
    out_segments: List[int] = []
    if plan.kind == "left":
        null_pad = (None,) * right_width
        for left_index, row in enumerate(left_rows):
            buffer = matches.get(left_index)
            if buffer:
                out_rows.extend(buffer)
                out_segments.extend([left_segments[left_index]] * len(buffer))
            else:
                out_rows.append(row + null_pad)
                out_segments.append(left_segments[left_index])
    else:
        for left_index in sorted(matches):
            buffer = matches[left_index]
            out_rows.extend(buffer)
            out_segments.extend([left_segments[left_index]] * len(buffer))
    return out_rows, out_segments


def _broadcast_worthwhile(
    estimated_probe: float, estimated_build: float, num_segments: int, max_build_rows: int
) -> bool:
    """Cost rule for replicating the build side to every worker.

    Small build sides always qualify (the legacy fixed cap).  Beyond that,
    broadcasting ships ``build × segments`` rows, so it pays off only when
    that shipping cost stays under the probe work it parallelizes.
    """
    if estimated_build <= max_build_rows:
        return True
    return estimated_build * num_segments <= estimated_probe


def _try_parallel_join(
    plan: HashJoinPlan,
    pool,
    probe_rows,
    probe_segments,
    probe_num_segments: int,
    build_rows,
    build_segments,
    build_num_segments: int,
    right_width: int,
    parameters,
) -> Optional[JoinOutcome]:
    """Dispatch the build/probe to the worker pool, or ``None`` to stay local."""
    if not plan.shippable or probe_num_segments <= 1:
        return None
    probe_runs = _segment_runs(probe_segments, probe_num_segments)
    if probe_runs is None:
        return None

    spec = (
        plan.left_keys_per_column,
        plan.right_keys_per_column,
        plan.combined_keys_per_column,
        tuple(plan.left_key_exprs),
        tuple(plan.right_key_exprs),
        plan.residual_expr,
        plan.kind,
        right_width,
        parameters,
    )
    probe_chunks = [probe_rows[start:end] for start, end in probe_runs]

    build_chunks: Optional[List[list]] = None
    strategy = None
    if plan.colocated and build_num_segments == probe_num_segments:
        build_runs = _segment_runs(build_segments, build_num_segments)
        if build_runs is not None:
            build_chunks = [build_rows[start:end] for start, end in build_runs]
            strategy = "hash_colocated"
    if build_chunks is None:
        # Exact post-prefilter counts, not planner estimates — see
        # execute_hash_join.
        if not _broadcast_worthwhile(
            float(len(probe_rows)),
            float(len(build_rows)),
            probe_num_segments,
            pool.BROADCAST_MAX_BUILD_ROWS,
        ):
            return None
        strategy = "hash_broadcast"

    try:
        outcome = pool.run_join(spec, probe_chunks, build_chunks, build_rows)
    except WorkerPoolError:
        # Infra faults only (dead/hung workers, IPC pickling) — supervision
        # already retried and counted the fallback on the pool's counters;
        # rejoin in-process.  Query errors a shipped expression raised in a
        # worker propagate unchanged, byte-identical to the in-process tier.
        return None
    if outcome is None:
        return None
    chunk_outputs, _seconds, wall = outcome
    rows: List[Tuple[Any, ...]] = []
    segments: List[int] = []
    for segment, chunk in enumerate(chunk_outputs):
        rows.extend(chunk)
        segments.extend([segment] * len(chunk))
    return JoinOutcome(rows, segments, strategy, parallel_wall_seconds=wall)
