"""The convex-optimization / SGD framework (Section 5.1, Table 2)."""

from .igd import install_igd, make_igd_aggregate
from .models import (
    RecommendationModel,
    train_crf_labeling,
    train_lasso,
    train_least_squares,
    train_logistic,
    train_recommendation,
    train_svm,
)
from .objectives import (
    CRFObjective,
    HingeObjective,
    LassoObjective,
    LeastSquaresObjective,
    LogisticObjective,
    Objective,
    RecommendationObjective,
    TABLE2_OBJECTIVES,
)
from .sgd import SGDResult, train

__all__ = [
    "Objective",
    "LeastSquaresObjective",
    "LassoObjective",
    "LogisticObjective",
    "HingeObjective",
    "RecommendationObjective",
    "CRFObjective",
    "TABLE2_OBJECTIVES",
    "install_igd",
    "make_igd_aggregate",
    "train",
    "SGDResult",
    "train_least_squares",
    "train_lasso",
    "train_logistic",
    "train_svm",
    "train_recommendation",
    "train_crf_labeling",
    "RecommendationModel",
]
