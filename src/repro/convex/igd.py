"""Incremental gradient descent as a user-defined aggregate (Section 5.1).

"We use the micro-programming interfaces ... to perform the mapping from the
tuples to the vector representation that is used in Eq. 1.  Then, we observe
Eq. 1 is simply an expression over each tuple (to compute G_i(x)) which is
then averaged together.  Instead of averaging a single number, we average a
vector of numbers.  Here, we use the macro-programming provided by MADlib to
handle all data access, spills to disk, parallelized scans, etc."

:func:`install_igd` builds exactly that aggregate for a given
:class:`~repro.convex.objectives.Objective`: the transition function folds one
example's gradient step into the model, the merge function averages the
per-segment models (weighted by example counts — the model-averaging scheme of
Zinkevich et al.), and the final function returns the model plus the summed
loss of the epoch.

The transition/merge/final triple lives on :class:`IGDEpochKernel`, a
module-level class whose bound methods pickle (the instance ships the
objective by value, the class travels by reference) — the UDA picklability
contract of ``docs/engine-execution.md``.  That is what lets
``Database(parallel=N)`` run each epoch's per-segment gradient folds in real
worker processes and average the partial models on the coordinator: true
parallel model averaging per iteration instead of a silent serial fallback.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..engine.aggregates import AggregateDefinition
from .objectives import Objective

__all__ = ["IGDEpochKernel", "install_igd", "make_igd_aggregate"]


class IGDEpochKernel:
    """Picklable transition/merge/final kernel for the per-epoch IGD aggregate.

    State: ``{"model": ndarray, "n": int, "loss": float}`` — everything a
    worker returns to the coordinator, all plain picklable values.
    """

    def __init__(self, objective: Objective) -> None:
        self.objective = objective

    def transition(self, state, model_in, stepsize, *row):
        if state is None:
            if model_in is None:
                model = self.objective.initial_model()
            else:
                model = np.array(model_in, dtype=np.float64, copy=True)
            state = {"model": model, "n": 0, "loss": 0.0}
        if any(value is None for value in row):
            return state
        state["loss"] += self.objective.loss(state["model"], row)
        self.objective.apply_gradient(state["model"], row, float(stepsize))
        state["n"] += 1
        return state

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        total = a["n"] + b["n"]
        if total == 0:
            return a
        weight_a = a["n"] / total
        weight_b = b["n"] / total
        a["model"] = weight_a * a["model"] + weight_b * b["model"]
        a["loss"] += b["loss"]
        a["n"] = total
        return a

    def final(self, state):
        if state is None:
            return None
        return {"model": state["model"], "loss": float(state["loss"]), "n": int(state["n"])}


def make_igd_aggregate(objective: Objective, *, name: str = "igd_epoch") -> AggregateDefinition:
    """Build the per-epoch IGD aggregate for ``objective``.

    SQL signature: ``igd_epoch(model_in, stepsize, col1, col2, ...)`` where the
    trailing columns form the objective's row format.  ``model_in`` may be NULL
    on the first epoch.
    """
    kernel = IGDEpochKernel(objective)
    return AggregateDefinition(
        name,
        kernel.transition,
        merge=kernel.merge,
        final=kernel.final,
        initial_state=None,
        strict=False,
    )


def install_igd(database, objective: Objective, *, name: str = "igd_epoch") -> None:
    """Register the IGD epoch aggregate for ``objective`` on a database."""
    database.catalog.register_aggregate(make_igd_aggregate(objective, name=name))
