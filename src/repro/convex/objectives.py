"""Convex objectives for the unified SGD abstraction (Section 5.1, Table 2).

The Wisconsin contribution: "an ideal abstraction would allow us to decouple
the specification of the model from the algorithm used to solve the
specification".  Every model in Table 2 is expressed as a sum of per-example
convex terms ``f(x) = sum_i f_i(x)``; incremental gradient descent then only
needs, per example, the gradient of one term.  Each :class:`Objective` below
supplies exactly that: how to initialize the model vector, how to compute one
term's loss, and how to apply one term's (sub)gradient step in place.

Row formats (what the data table stores per example):

* Least squares / lasso / logistic / SVM: ``(y, x)`` with ``x`` a
  ``double precision[]`` feature vector.
* Recommendation (low-rank matrix factorization): ``(i, j, rating)``.
* Labeling (CRF): ``(token_features, labels)`` where ``token_features`` is a
  list of per-position observation-feature index lists.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..text.crf import LinearChainCRF
from ..text.features import FeatureMap

__all__ = [
    "Objective",
    "LeastSquaresObjective",
    "LassoObjective",
    "LogisticObjective",
    "HingeObjective",
    "RecommendationObjective",
    "CRFObjective",
    "TABLE2_OBJECTIVES",
]


class Objective:
    """Base class: one convex term per data row."""

    #: Human-readable name matching the Table 2 row.
    name: str = "objective"

    def initial_model(self) -> np.ndarray:
        """A fresh, zero-initialized model vector."""
        raise NotImplementedError

    def loss(self, model: np.ndarray, row: Sequence[Any]) -> float:
        """The value of this row's term ``f_i`` at ``model``."""
        raise NotImplementedError

    def apply_gradient(self, model: np.ndarray, row: Sequence[Any], stepsize: float) -> None:
        """In-place SGD step ``model -= stepsize * grad f_i(model)``."""
        raise NotImplementedError

    def total_loss(self, model: np.ndarray, rows: Sequence[Sequence[Any]]) -> float:
        return float(sum(self.loss(model, row) for row in rows))


# ---------------------------------------------------------------------------
# Vector-model objectives: y, x rows
# ---------------------------------------------------------------------------


class LeastSquaresObjective(Objective):
    """``sum (x^T u - y)^2`` — ordinary least squares."""

    name = "Least Squares"

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be positive")
        self.dimension = dimension

    def initial_model(self) -> np.ndarray:
        return np.zeros(self.dimension, dtype=np.float64)

    def loss(self, model, row) -> float:
        y, x = float(row[0]), np.asarray(row[1], dtype=np.float64)
        residual = float(x @ model) - y
        return residual * residual

    def apply_gradient(self, model, row, stepsize) -> None:
        y, x = float(row[0]), np.asarray(row[1], dtype=np.float64)
        residual = float(x @ model) - y
        model -= stepsize * 2.0 * residual * x


class LassoObjective(LeastSquaresObjective):
    """``sum (x^T u - y)^2 + mu * ||u||_1`` — squared loss with an L1 penalty.

    The L1 term is handled with a proximal (soft-thresholding) step after each
    gradient step, which keeps the iterates sparse.
    """

    name = "Lasso"

    def __init__(self, dimension: int, mu: float = 0.1) -> None:
        super().__init__(dimension)
        if mu < 0:
            raise ValidationError("mu must be non-negative")
        self.mu = mu

    def loss(self, model, row) -> float:
        # Spread the (global) penalty across rows so total_loss matches the objective.
        return super().loss(model, row) + self.mu * float(np.abs(model).sum())

    def apply_gradient(self, model, row, stepsize) -> None:
        super().apply_gradient(model, row, stepsize)
        threshold = stepsize * self.mu
        np.copyto(model, np.sign(model) * np.maximum(np.abs(model) - threshold, 0.0))


class LogisticObjective(Objective):
    """``sum log(1 + exp(-y x^T u))`` with labels ``y in {-1, +1}``."""

    name = "Logistic Regression"

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be positive")
        self.dimension = dimension

    def initial_model(self) -> np.ndarray:
        return np.zeros(self.dimension, dtype=np.float64)

    @staticmethod
    def _to_signed(y: float) -> float:
        return 1.0 if y > 0 else -1.0

    def loss(self, model, row) -> float:
        y = self._to_signed(float(row[0]))
        x = np.asarray(row[1], dtype=np.float64)
        margin = y * float(x @ model)
        # log(1 + exp(-margin)) computed stably.
        if margin > 30:
            return math.exp(-margin)
        return math.log1p(math.exp(-margin))

    def apply_gradient(self, model, row, stepsize) -> None:
        y = self._to_signed(float(row[0]))
        x = np.asarray(row[1], dtype=np.float64)
        margin = y * float(x @ model)
        coefficient = -y / (1.0 + math.exp(min(margin, 30.0)))
        model -= stepsize * coefficient * x


class HingeObjective(Objective):
    """``sum (1 - y x^T u)_+`` — the SVM classification objective."""

    name = "Classification (SVM)"

    def __init__(self, dimension: int, regularization: float = 1e-4) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be positive")
        self.dimension = dimension
        self.regularization = regularization

    def initial_model(self) -> np.ndarray:
        return np.zeros(self.dimension, dtype=np.float64)

    def loss(self, model, row) -> float:
        y = 1.0 if float(row[0]) > 0 else -1.0
        x = np.asarray(row[1], dtype=np.float64)
        return max(0.0, 1.0 - y * float(x @ model))

    def apply_gradient(self, model, row, stepsize) -> None:
        y = 1.0 if float(row[0]) > 0 else -1.0
        x = np.asarray(row[1], dtype=np.float64)
        model *= 1.0 - stepsize * self.regularization
        if y * float(x @ model) < 1.0:
            model += stepsize * y * x


# ---------------------------------------------------------------------------
# Recommendation: low-rank matrix factorization
# ---------------------------------------------------------------------------


class RecommendationObjective(Objective):
    """``sum (L_i^T R_j - M_ij)^2 + mu ||L, R||_F^2`` — low-rank factorization.

    The model vector packs the user factors ``L`` (num_users x rank) followed
    by the item factors ``R`` (num_items x rank); each example only touches one
    row of each, so the per-row gradient update is sparse.
    """

    name = "Recommendation"

    def __init__(self, num_users: int, num_items: int, rank: int, mu: float = 0.05,
                 *, init_scale: float = 0.1, seed: Optional[int] = 0) -> None:
        if min(num_users, num_items, rank) < 1:
            raise ValidationError("num_users, num_items and rank must be positive")
        self.num_users = num_users
        self.num_items = num_items
        self.rank = rank
        self.mu = mu
        self.init_scale = init_scale
        self.seed = seed

    def initial_model(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.normal(scale=self.init_scale, size=(self.num_users + self.num_items) * self.rank)

    def _views(self, model: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        split = self.num_users * self.rank
        left = model[:split].reshape(self.num_users, self.rank)
        right = model[split:].reshape(self.num_items, self.rank)
        return left, right

    def loss(self, model, row) -> float:
        user, item, rating = int(row[0]), int(row[1]), float(row[2])
        left, right = self._views(model)
        residual = float(left[user] @ right[item]) - rating
        penalty = self.mu * (float(left[user] @ left[user]) + float(right[item] @ right[item]))
        return residual * residual + penalty

    def apply_gradient(self, model, row, stepsize) -> None:
        user, item, rating = int(row[0]), int(row[1]), float(row[2])
        left, right = self._views(model)
        user_vector = left[user].copy()
        residual = float(user_vector @ right[item]) - rating
        left[user] -= stepsize * (2.0 * residual * right[item] + 2.0 * self.mu * user_vector)
        right[item] -= stepsize * (2.0 * residual * user_vector + 2.0 * self.mu * right[item])


# ---------------------------------------------------------------------------
# Labeling: linear-chain CRF log-likelihood
# ---------------------------------------------------------------------------


class CRFObjective(Objective):
    """``sum_k [ sum_j x_j F_j(y_k, z_k) - log Z(z_k) ]`` — CRF labeling.

    Negated (so that SGD *minimizes*), the per-example term is the negative
    conditional log-likelihood of one sentence.  The model vector packs the
    observation weights, transition weights and start weights of a
    :class:`~repro.text.crf.LinearChainCRF`.
    """

    name = "Labeling (CRF)"

    def __init__(self, num_features: int, num_labels: int) -> None:
        if num_features < 1 or num_labels < 1:
            raise ValidationError("num_features and num_labels must be positive")
        self.num_features = num_features
        self.num_labels = num_labels
        feature_map = FeatureMap()
        for index in range(num_features):
            feature_map.intern(f"f{index}")
        self._crf = LinearChainCRF([f"L{i}" for i in range(num_labels)], feature_map)

    def initial_model(self) -> np.ndarray:
        size = self.num_features * self.num_labels + self.num_labels * self.num_labels + self.num_labels
        return np.zeros(size, dtype=np.float64)

    def _load(self, model: np.ndarray) -> None:
        observation_size = self.num_features * self.num_labels
        transition_size = self.num_labels * self.num_labels
        self._crf.observation_weights = model[:observation_size].reshape(
            self.num_features, self.num_labels
        )
        self._crf.transition_weights = model[
            observation_size:observation_size + transition_size
        ].reshape(self.num_labels, self.num_labels)
        self._crf.start_weights = model[observation_size + transition_size:]

    def loss(self, model, row) -> float:
        token_features, labels = row[0], [int(l) for l in row[1]]
        self._load(model)
        return -self._crf.log_likelihood(token_features, labels)

    def apply_gradient(self, model, row, stepsize) -> None:
        token_features, labels = row[0], [int(l) for l in row[1]]
        self._load(model)
        gradient = self._crf.gradient(token_features, labels)
        # apply_gradient on the CRF performs gradient *ascent* on the wrapped
        # views, which are backed by `model`, so the update lands in place.
        self._crf.apply_gradient(gradient, stepsize)


#: The Table 2 catalogue: model name -> objective class.
TABLE2_OBJECTIVES = {
    "Least Squares": LeastSquaresObjective,
    "Lasso": LassoObjective,
    "Logistic Regression": LogisticObjective,
    "Classification (SVM)": HingeObjective,
    "Recommendation": RecommendationObjective,
    "Labeling (CRF)": CRFObjective,
}
