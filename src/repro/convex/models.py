"""User-facing wrappers: one function per Table 2 model, all through one solver.

The point of the abstraction (and what the paper reports: "we were able to add
in implementations of all the models in Table 2 in a matter of days") is that
every model below is just an :class:`~repro.convex.objectives.Objective`
plugged into the same SGD driver; the wrappers only prepare the data table and
interpret the returned model vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.text_corpus import TagCorpus
from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from ..text.crf import featurize_corpus
from .objectives import (
    CRFObjective,
    HingeObjective,
    LassoObjective,
    LeastSquaresObjective,
    LogisticObjective,
    RecommendationObjective,
)
from .sgd import SGDResult, train

__all__ = [
    "train_least_squares",
    "train_lasso",
    "train_logistic",
    "train_svm",
    "train_recommendation",
    "train_crf_labeling",
    "RecommendationModel",
]


def _feature_dimension(database, table: str, column: str) -> int:
    result = database.execute(f"SELECT {column} FROM {table} LIMIT 1")
    if not result.rows or result.rows[0][0] is None:
        raise ValidationError(f"table {table!r} has no usable rows")
    return int(np.asarray(result.rows[0][0]).shape[0])


def train_least_squares(
    database, source_table: str, dependent_column: str = "y", independent_column: str = "x", **kwargs
) -> SGDResult:
    """Least squares (Table 2 row 1) via SGD."""
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    dimension = _feature_dimension(database, source_table, independent_column)
    objective = LeastSquaresObjective(dimension)
    return train(database, source_table, [dependent_column, independent_column], objective, **kwargs)


def train_lasso(
    database, source_table: str, dependent_column: str = "y", independent_column: str = "x",
    *, mu: float = 0.1, **kwargs
) -> SGDResult:
    """Lasso (Table 2 row 2): squared loss with L1 regularization."""
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    dimension = _feature_dimension(database, source_table, independent_column)
    objective = LassoObjective(dimension, mu)
    return train(database, source_table, [dependent_column, independent_column], objective, **kwargs)


def train_logistic(
    database, source_table: str, dependent_column: str = "y", independent_column: str = "x", **kwargs
) -> SGDResult:
    """Logistic regression (Table 2 row 3); labels may be {0,1} or {-1,+1}."""
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    dimension = _feature_dimension(database, source_table, independent_column)
    objective = LogisticObjective(dimension)
    return train(database, source_table, [dependent_column, independent_column], objective, **kwargs)


def train_svm(
    database, source_table: str, dependent_column: str = "y", independent_column: str = "x",
    *, regularization: float = 1e-4, **kwargs
) -> SGDResult:
    """SVM classification (Table 2 row 4): hinge loss; labels {-1,+1} (or {0,1})."""
    validate_columns_exist(database, source_table, [dependent_column, independent_column])
    dimension = _feature_dimension(database, source_table, independent_column)
    objective = HingeObjective(dimension, regularization)
    return train(database, source_table, [dependent_column, independent_column], objective, **kwargs)


@dataclass
class RecommendationModel:
    """Unpacked low-rank factors from the recommendation objective."""

    user_factors: np.ndarray
    item_factors: np.ndarray
    result: SGDResult

    def predict(self, user: int, item: int) -> float:
        return float(self.user_factors[user] @ self.item_factors[item])

    def rmse(self, triples: Sequence[Tuple[int, int, float]]) -> float:
        errors = [
            (self.predict(int(u), int(i)) - float(r)) ** 2 for u, i, r in triples
        ]
        return float(np.sqrt(np.mean(errors))) if errors else float("nan")


def train_recommendation(
    database,
    ratings_table: str,
    *,
    rank: int = 8,
    mu: float = 0.05,
    user_column: str = "user_id",
    item_column: str = "item_id",
    rating_column: str = "rating",
    seed: Optional[int] = 0,
    **kwargs,
) -> RecommendationModel:
    """Low-rank matrix factorization (Table 2 row 5) via SGD."""
    validate_table_exists(database, ratings_table)
    validate_columns_exist(database, ratings_table, [user_column, item_column, rating_column])
    num_users = int(database.query_scalar(f"SELECT max({user_column}) FROM {ratings_table}")) + 1
    num_items = int(database.query_scalar(f"SELECT max({item_column}) FROM {ratings_table}")) + 1
    objective = RecommendationObjective(num_users, num_items, rank, mu, seed=seed)
    kwargs.setdefault("stepsize", 0.1)
    kwargs.setdefault("decay", 0.97)
    result = train(
        database, ratings_table, [user_column, item_column, rating_column], objective, **kwargs
    )
    split = num_users * rank
    return RecommendationModel(
        user_factors=result.model[:split].reshape(num_users, rank),
        item_factors=result.model[split:].reshape(num_items, rank),
        result=result,
    )


def train_crf_labeling(
    database,
    corpus: TagCorpus,
    *,
    table_name: str = "crf_training_data",
    **kwargs,
) -> SGDResult:
    """CRF labeling (Table 2 row 6): sentences become rows, trained by the same SGD driver.

    The corpus is featurized, each sentence is stored as one row
    ``(features, labels)`` in a training table, and the CRF negative
    log-likelihood objective is minimized with the shared IGD aggregate.
    """
    feature_map, encoded, labels, _ = featurize_corpus(corpus)
    database.create_table(
        table_name, [("features", "any"), ("labels", "integer[]")], replace=True
    )
    database.load_rows(
        table_name,
        [(sequence.token_features, np.asarray(sequence.labels, dtype=np.int64)) for sequence in encoded],
    )
    objective = CRFObjective(num_features=len(feature_map), num_labels=len(labels))
    kwargs.setdefault("stepsize", 0.1)
    kwargs.setdefault("max_epochs", 5)
    return train(database, table_name, ["features", "labels"], objective, **kwargs)
