"""The SGD driver: epochs over the data via the IGD aggregate (Section 5.1).

The driver is deliberately thin, as the paper prescribes: it kicks off one
aggregate query per epoch (``SELECT igd_epoch(model, stepsize, cols...) FROM
data``), decays the stepsize (``alpha = 1/k``-style), and tests convergence on
the per-epoch loss.  All data access, parallel scanning and model averaging
happens inside the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..driver import IterationController, validate_columns_exist, validate_table_exists
from ..errors import ValidationError
from .igd import install_igd
from .objectives import Objective

__all__ = ["SGDResult", "train"]


@dataclass
class SGDResult:
    """The trained model vector plus the optimization trace."""

    model: np.ndarray
    objective_name: str
    loss_history: List[float] = field(default_factory=list)
    num_epochs: int = 0
    converged: bool = False
    num_rows: int = 0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.loss_history[0] if self.loss_history else float("nan")

    def loss_decrease(self) -> float:
        """Relative decrease of the epoch loss from the first to the last epoch."""
        if not self.loss_history or self.loss_history[0] == 0:
            return 0.0
        return 1.0 - self.loss_history[-1] / self.loss_history[0]


def train(
    database,
    source_table: str,
    row_columns: Sequence[str],
    objective: Objective,
    *,
    max_epochs: int = 20,
    stepsize: float = 0.05,
    decay: float = 0.85,
    tolerance: float = 1e-5,
    min_epochs: int = 2,
) -> SGDResult:
    """Train ``objective`` by SGD over ``source_table``.

    ``row_columns`` are the table columns forming the objective's row format,
    in order (e.g. ``["y", "x"]`` for the vector models, ``["user_id",
    "item_id", "rating"]`` for recommendation).
    """
    validate_table_exists(database, source_table)
    validate_columns_exist(database, source_table, row_columns)
    if max_epochs < 1:
        raise ValidationError("max_epochs must be at least 1")
    install_igd(database, objective)

    columns_sql = ", ".join(row_columns)
    update_sql = (
        f"SELECT igd_epoch(%(model)s, %(stepsize)s, {columns_sql}) FROM {source_table}"
    )

    model: Optional[np.ndarray] = None
    loss_history: List[float] = []
    converged = False
    num_rows = 0
    current_step = stepsize
    controller = IterationController(
        database, max_iterations=max_epochs, temp_prefix="sgd_state", fail_on_max_iterations=False
    )
    with controller:
        previous_loss: Optional[float] = None
        for epoch in range(max_epochs):
            record = controller.update(
                update_sql, {"model": model, "stepsize": current_step}
            )
            if record is None:
                raise ValidationError(f"table {source_table!r} has no usable rows")
            model = np.asarray(record["model"], dtype=np.float64)
            num_rows = int(record["n"])
            epoch_loss = float(record["loss"]) / max(num_rows, 1)
            loss_history.append(epoch_loss)
            current_step *= decay
            if (
                previous_loss is not None
                and epoch + 1 >= min_epochs
                and abs(previous_loss - epoch_loss) <= tolerance * max(abs(previous_loss), 1e-12)
            ):
                converged = True
                break
            previous_loss = epoch_loss

    return SGDResult(
        model=model,
        objective_name=objective.name,
        loss_history=loss_history,
        num_epochs=len(loss_history),
        converged=converged,
        num_rows=num_rows,
    )
