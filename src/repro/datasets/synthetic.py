"""Synthetic workload generators.

The paper's evaluation ran on customer-style tables loaded into a Greenplum
test cluster; those tables are not available, so every experiment in this
reproduction runs on synthetic data whose generative model matches the method
being exercised (linear/logistic responses, Gaussian cluster blobs, market
baskets, low-rank ratings matrices, ...).  Each generator can either return
NumPy arrays or load a table into a :class:`~repro.engine.database.Database`,
since the methods consume their input through SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = [
    "RegressionData",
    "ClassificationData",
    "make_regression",
    "make_logistic",
    "make_blobs",
    "make_baskets",
    "make_low_rank_matrix",
    "make_ratings",
    "make_documents",
    "load_regression_table",
    "load_logistic_table",
    "load_points_table",
    "load_baskets_table",
]


@dataclass
class RegressionData:
    """A regression design matrix, response vector and the true coefficients."""

    features: np.ndarray
    response: np.ndarray
    coefficients: np.ndarray
    intercept: float


@dataclass
class ClassificationData:
    """A binary-classification design matrix with labels in {0, 1} (or {-1, +1})."""

    features: np.ndarray
    labels: np.ndarray
    coefficients: np.ndarray


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def make_regression(
    num_rows: int,
    num_features: int,
    *,
    noise: float = 0.1,
    intercept: float = 0.0,
    seed: Optional[int] = None,
) -> RegressionData:
    """Linear-response data ``y = X b + intercept + noise`` (Section 4.1 workload)."""
    if num_rows < 1 or num_features < 1:
        raise ValidationError("num_rows and num_features must be positive")
    rng = _rng(seed)
    features = rng.normal(size=(num_rows, num_features))
    coefficients = rng.uniform(-2.0, 2.0, size=num_features)
    response = features @ coefficients + intercept + rng.normal(scale=noise, size=num_rows)
    return RegressionData(features, response, coefficients, intercept)


def make_logistic(
    num_rows: int,
    num_features: int,
    *,
    seed: Optional[int] = None,
    labels_plus_minus: bool = False,
) -> ClassificationData:
    """Binary labels drawn from a logistic model (Section 4.2 workload)."""
    if num_rows < 1 or num_features < 1:
        raise ValidationError("num_rows and num_features must be positive")
    rng = _rng(seed)
    features = rng.normal(size=(num_rows, num_features))
    coefficients = rng.uniform(-1.5, 1.5, size=num_features)
    probabilities = 1.0 / (1.0 + np.exp(-(features @ coefficients)))
    labels = (rng.uniform(size=num_rows) < probabilities).astype(np.float64)
    if labels_plus_minus:
        labels = 2.0 * labels - 1.0
    return ClassificationData(features, labels, coefficients)


def make_blobs(
    num_rows: int,
    num_features: int,
    num_clusters: int,
    *,
    spread: float = 0.5,
    separation: float = 6.0,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gaussian cluster blobs for k-means: returns (points, labels, true_centroids)."""
    if num_clusters < 1:
        raise ValidationError("num_clusters must be positive")
    rng = _rng(seed)
    centroids = rng.uniform(-separation, separation, size=(num_clusters, num_features))
    labels = rng.integers(0, num_clusters, size=num_rows)
    points = centroids[labels] + rng.normal(scale=spread, size=(num_rows, num_features))
    return points, labels.astype(np.int64), centroids


def make_baskets(
    num_baskets: int,
    num_items: int,
    *,
    patterns: Optional[Sequence[Sequence[int]]] = None,
    pattern_probability: float = 0.4,
    basket_size: int = 5,
    seed: Optional[int] = None,
) -> List[List[int]]:
    """Market baskets with planted co-occurrence patterns (association-rule workload)."""
    rng = _rng(seed)
    if patterns is None:
        patterns = [[0, 1, 2], [3, 4], [5, 6, 7]]
    baskets: List[List[int]] = []
    for _ in range(num_baskets):
        basket = set(rng.integers(0, num_items, size=basket_size).tolist())
        for pattern in patterns:
            if rng.uniform() < pattern_probability:
                basket.update(int(i) for i in pattern)
        baskets.append(sorted(int(i) for i in basket))
    return baskets


def make_low_rank_matrix(
    num_rows: int,
    num_cols: int,
    rank: int,
    *,
    noise: float = 0.01,
    seed: Optional[int] = None,
) -> np.ndarray:
    """A noisy low-rank matrix for the SVD-factorization workload."""
    if rank < 1 or rank > min(num_rows, num_cols):
        raise ValidationError("rank must be between 1 and min(num_rows, num_cols)")
    rng = _rng(seed)
    left = rng.normal(size=(num_rows, rank))
    right = rng.normal(size=(rank, num_cols))
    return left @ right + rng.normal(scale=noise, size=(num_rows, num_cols))


def make_ratings(
    num_users: int,
    num_items: int,
    rank: int,
    *,
    density: float = 0.2,
    noise: float = 0.05,
    seed: Optional[int] = None,
) -> List[Tuple[int, int, float]]:
    """Sparse (user, item, rating) triples from a low-rank model (recommendation workload)."""
    rng = _rng(seed)
    users = rng.normal(size=(num_users, rank)) / np.sqrt(rank)
    items = rng.normal(size=(num_items, rank)) / np.sqrt(rank)
    triples: List[Tuple[int, int, float]] = []
    for user in range(num_users):
        for item in range(num_items):
            if rng.uniform() < density:
                rating = float(users[user] @ items[item] + rng.normal(scale=noise))
                triples.append((user, item, rating))
    return triples


def make_documents(
    num_documents: int,
    vocabulary_size: int,
    num_topics: int,
    *,
    document_length: int = 50,
    concentration: float = 0.1,
    seed: Optional[int] = None,
) -> Tuple[List[List[int]], np.ndarray]:
    """Bag-of-words documents drawn from an LDA generative model.

    Returns ``(documents, topic_word_distributions)`` where each document is a
    list of word ids.
    """
    rng = _rng(seed)
    topic_word = rng.dirichlet([concentration] * vocabulary_size, size=num_topics)
    documents: List[List[int]] = []
    for _ in range(num_documents):
        topic_mixture = rng.dirichlet([concentration * 5] * num_topics)
        topics = rng.choice(num_topics, size=document_length, p=topic_mixture)
        words = [int(rng.choice(vocabulary_size, p=topic_word[topic])) for topic in topics]
        documents.append(words)
    return documents, topic_word


# ---------------------------------------------------------------------------
# Table loaders (methods consume their input through SQL)
# ---------------------------------------------------------------------------


def load_regression_table(
    database,
    table_name: str,
    data: RegressionData,
    *,
    replace: bool = True,
) -> None:
    """Load regression data as ``(id, x double precision[], y double precision)``."""
    database.create_table(
        table_name,
        [("id", "integer"), ("x", "double precision[]"), ("y", "double precision")],
        replace=replace,
    )
    rows = [
        (i, data.features[i], float(data.response[i]))
        for i in range(data.features.shape[0])
    ]
    database.load_rows(table_name, rows)


def load_logistic_table(
    database,
    table_name: str,
    data: ClassificationData,
    *,
    replace: bool = True,
    boolean_labels: bool = False,
) -> None:
    """Load classification data as ``(id, x double precision[], y)``."""
    label_type = "boolean" if boolean_labels else "double precision"
    database.create_table(
        table_name,
        [("id", "integer"), ("x", "double precision[]"), ("y", label_type)],
        replace=replace,
    )
    rows = []
    for i in range(data.features.shape[0]):
        label = bool(data.labels[i] > 0) if boolean_labels else float(data.labels[i])
        rows.append((i, data.features[i], label))
    database.load_rows(table_name, rows)


def load_points_table(database, table_name: str, points: np.ndarray, *, replace: bool = True) -> None:
    """Load clustering points as ``(id, coords double precision[], centroid_id)``."""
    database.create_table(
        table_name,
        [("id", "integer"), ("coords", "double precision[]"), ("centroid_id", "integer")],
        replace=replace,
    )
    database.load_rows(table_name, [(i, points[i], None) for i in range(points.shape[0])])


def load_baskets_table(database, table_name: str, baskets: List[List[int]], *, replace: bool = True) -> None:
    """Load baskets as ``(basket_id, item integer)`` pairs (relational form)."""
    database.create_table(
        table_name,
        [("basket_id", "integer"), ("item", "integer")],
        replace=replace,
    )
    rows = []
    for basket_id, basket in enumerate(baskets):
        for item in basket:
            rows.append((basket_id, int(item)))
    database.load_rows(table_name, rows)
