"""Synthetic text corpora for the statistical text-analytics stack (Section 5.2).

The paper's Florida/Berkeley work evaluates part-of-speech tagging, named
entity recognition and entity resolution over real corpora we do not have.
These generators produce token/label sequences from a small hidden-Markov-like
generative model with realistic feature structure (dictionaries, suffixes,
capitalization, digits) so the feature-extraction, Viterbi and MCMC code paths
are exercised end-to-end, plus name lists with typos for approximate string
matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LabeledSequence", "TagCorpus", "make_tag_corpus", "make_name_variants", "load_documents_table"]


#: The simplified part-of-speech tag set used by the synthetic corpus.
TAGS = ["DET", "NOUN", "VERB", "ADJ", "NUM", "NAME"]

_VOCABULARY: Dict[str, List[str]] = {
    "DET": ["the", "a", "an", "this", "that"],
    "NOUN": ["team", "game", "player", "city", "season", "record", "coach", "score"],
    "VERB": ["wins", "plays", "throws", "scores", "runs", "leads", "beats"],
    "ADJ": ["fast", "strong", "new", "young", "great", "final"],
    "NUM": ["one", "two", "three", "2010", "2011", "42", "7"],
    "NAME": ["tim", "tebow", "denver", "smith", "jones", "miller", "jordan"],
}

_TRANSITIONS: Dict[str, List[Tuple[str, float]]] = {
    "<start>": [("DET", 0.4), ("NAME", 0.3), ("NOUN", 0.2), ("NUM", 0.1)],
    "DET": [("NOUN", 0.6), ("ADJ", 0.4)],
    "ADJ": [("NOUN", 0.9), ("ADJ", 0.1)],
    "NOUN": [("VERB", 0.6), ("NOUN", 0.2), ("NUM", 0.2)],
    "VERB": [("DET", 0.4), ("NAME", 0.3), ("NUM", 0.3)],
    "NUM": [("NOUN", 0.6), ("VERB", 0.4)],
    "NAME": [("NAME", 0.3), ("VERB", 0.5), ("NOUN", 0.2)],
}


@dataclass
class LabeledSequence:
    """One sentence: parallel token and label lists."""

    tokens: List[str]
    labels: List[str]

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class TagCorpus:
    """A collection of labeled sequences plus the label alphabet."""

    sequences: List[LabeledSequence]
    labels: List[str] = field(default_factory=lambda: list(TAGS))

    def __len__(self) -> int:
        return len(self.sequences)

    def split(self, train_fraction: float = 0.8) -> Tuple["TagCorpus", "TagCorpus"]:
        cut = max(1, int(len(self.sequences) * train_fraction))
        return (
            TagCorpus(self.sequences[:cut], self.labels),
            TagCorpus(self.sequences[cut:], self.labels),
        )

    def token_count(self) -> int:
        return sum(len(sequence) for sequence in self.sequences)


def make_tag_corpus(
    num_sentences: int,
    *,
    min_length: int = 4,
    max_length: int = 12,
    capitalize_names: bool = True,
    seed: Optional[int] = None,
) -> TagCorpus:
    """Generate a synthetic POS/NER-style corpus from the built-in Markov model."""
    rng = np.random.default_rng(seed)
    sequences: List[LabeledSequence] = []
    for _ in range(num_sentences):
        length = int(rng.integers(min_length, max_length + 1))
        tokens: List[str] = []
        labels: List[str] = []
        state = "<start>"
        for _ in range(length):
            choices, weights = zip(*_TRANSITIONS.get(state, _TRANSITIONS["<start>"]))
            state = str(rng.choice(choices, p=np.asarray(weights) / sum(weights)))
            word = str(rng.choice(_VOCABULARY[state]))
            if capitalize_names and state == "NAME":
                word = word.capitalize()
            tokens.append(word)
            labels.append(state)
        sequences.append(LabeledSequence(tokens, labels))
    return TagCorpus(sequences)


def make_name_variants(
    names: Optional[Sequence[str]] = None,
    *,
    variants_per_name: int = 5,
    typo_probability: float = 0.3,
    seed: Optional[int] = None,
) -> List[Tuple[str, str]]:
    """Produce (canonical_name, observed_mention) pairs with typos and truncations.

    This is the entity-resolution workload for approximate string matching: a
    mention like ``"Tim Tebow"`` should be matched to its canonical entity even
    when misspelled ("Tim Tibow") or truncated ("T. Tebow").
    """
    rng = np.random.default_rng(seed)
    if names is None:
        names = [
            "Tim Tebow", "Peyton Manning", "Eli Manning", "Tom Brady",
            "Aaron Rodgers", "Drew Brees", "Joe Montana", "John Elway",
        ]
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    pairs: List[Tuple[str, str]] = []
    for name in names:
        pairs.append((name, name))
        for _ in range(variants_per_name - 1):
            mention = list(name)
            if rng.uniform() < typo_probability and len(mention) > 3:
                position = int(rng.integers(1, len(mention) - 1))
                mention[position] = str(rng.choice(list(alphabet)))
            if rng.uniform() < 0.2:
                first, _, last = name.partition(" ")
                pairs.append((name, f"{first[0]}. {last}"))
                continue
            pairs.append((name, "".join(mention)))
    return pairs


def load_documents_table(database, table_name: str, corpus: TagCorpus, *, replace: bool = True) -> None:
    """Load a corpus as ``(doc_id, position, token, label)`` rows."""
    database.create_table(
        table_name,
        [("doc_id", "integer"), ("position", "integer"), ("token", "text"), ("label", "text")],
        replace=replace,
    )
    rows = []
    for doc_id, sequence in enumerate(corpus.sequences):
        for position, (token, label) in enumerate(zip(sequence.tokens, sequence.labels)):
            rows.append((doc_id, position, token, label))
    database.load_rows(table_name, rows)
