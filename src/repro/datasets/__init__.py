"""Synthetic workload generators used by examples, tests and benchmarks."""

from .synthetic import (
    ClassificationData,
    RegressionData,
    load_baskets_table,
    load_logistic_table,
    load_points_table,
    load_regression_table,
    make_baskets,
    make_blobs,
    make_documents,
    make_logistic,
    make_low_rank_matrix,
    make_ratings,
    make_regression,
)
from .text_corpus import (
    LabeledSequence,
    TagCorpus,
    load_documents_table,
    make_name_variants,
    make_tag_corpus,
)

__all__ = [
    "RegressionData",
    "ClassificationData",
    "make_regression",
    "make_logistic",
    "make_blobs",
    "make_baskets",
    "make_low_rank_matrix",
    "make_ratings",
    "make_documents",
    "load_regression_table",
    "load_logistic_table",
    "load_points_table",
    "load_baskets_table",
    "LabeledSequence",
    "TagCorpus",
    "make_tag_corpus",
    "make_name_variants",
    "load_documents_table",
]
