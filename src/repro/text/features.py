"""Text feature extraction (Table 3, first row).

Section 5.2: "CRF methods often assign hundreds of features to each token",
listing five families — dictionary features, regex features, edge features
(label of the previous token), word features and position features.  This
module implements those extractors plus the feature-index bookkeeping (a
:class:`FeatureMap`) the CRF and inference code shares.

The extractors can run either on Python token lists or in-database:
:func:`install_feature_udfs` registers them as scalar UDFs so a feature table
can be materialized with a single templated query over a ``(doc_id, position,
token)`` table, which is how the paper's implementation stages features.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["FeatureMap", "TokenFeatureExtractor", "install_feature_udfs", "DEFAULT_REGEX_FEATURES"]


#: Default regex features: (name, pattern) pairs, the paper's "does this token
#: match a provided regular expression?" family.
DEFAULT_REGEX_FEATURES: List[Tuple[str, str]] = [
    ("is_capitalized", r"^[A-Z][a-z]+$"),
    ("is_all_caps", r"^[A-Z]+$"),
    ("is_digit", r"^[0-9]+$"),
    ("has_digit", r"[0-9]"),
    ("has_hyphen", r"-"),
    ("is_short", r"^.{1,3}$"),
]


@dataclass
class FeatureMap:
    """Bidirectional mapping between feature names and dense indices."""

    index_of: Dict[str, int] = field(default_factory=dict)
    names: List[str] = field(default_factory=list)
    frozen: bool = False

    def intern(self, name: str) -> Optional[int]:
        """Return the index for ``name``, allocating one unless frozen."""
        existing = self.index_of.get(name)
        if existing is not None:
            return existing
        if self.frozen:
            return None
        index = len(self.names)
        self.index_of[name] = index
        self.names.append(name)
        return index

    def freeze(self) -> None:
        """Stop allocating new features (used when featurizing test data)."""
        self.frozen = True

    def __len__(self) -> int:
        return len(self.names)


class TokenFeatureExtractor:
    """Extracts the per-token feature names of Section 5.2.

    Parameters
    ----------
    dictionaries:
        Mapping from dictionary name to a set of (lower-cased) words; produces
        ``dict:<name>`` features ("does this token exist in a provided
        dictionary?").
    regex_features:
        ``(name, pattern)`` pairs producing ``regex:<name>`` features.
    use_word_features:
        Emit ``word:<lowercased token>`` features ("does the token appear in
        the training data?").
    use_position_features:
        Emit ``position:first`` / ``position:last`` features.
    """

    def __init__(
        self,
        *,
        dictionaries: Optional[Dict[str, Set[str]]] = None,
        regex_features: Optional[Sequence[Tuple[str, str]]] = None,
        use_word_features: bool = True,
        use_position_features: bool = True,
    ) -> None:
        self.dictionaries = {
            name: {word.lower() for word in words}
            for name, words in (dictionaries or {}).items()
        }
        self.regex_features = [
            (name, re.compile(pattern))
            for name, pattern in (regex_features if regex_features is not None else DEFAULT_REGEX_FEATURES)
        ]
        self.use_word_features = use_word_features
        self.use_position_features = use_position_features

    def token_features(self, tokens: Sequence[str], position: int) -> List[str]:
        """Feature names for the token at ``position`` in ``tokens``."""
        token = tokens[position]
        lowered = token.lower()
        features: List[str] = []
        if self.use_word_features:
            features.append(f"word:{lowered}")
        for name, words in self.dictionaries.items():
            if lowered in words:
                features.append(f"dict:{name}")
        for name, pattern in self.regex_features:
            if pattern.search(token):
                features.append(f"regex:{name}")
        if self.use_position_features:
            if position == 0:
                features.append("position:first")
            if position == len(tokens) - 1:
                features.append("position:last")
        return features

    def sequence_features(self, tokens: Sequence[str]) -> List[List[str]]:
        """Feature names for every position of a sentence."""
        return [self.token_features(tokens, position) for position in range(len(tokens))]


def install_feature_udfs(database, extractor: Optional[TokenFeatureExtractor] = None) -> None:
    """Register the extractors as scalar UDFs for in-database featurization.

    ``crf_token_features(tokens, position)`` returns the feature-name array for
    one position; ``crf_matches_regex(token, pattern)`` and
    ``crf_in_dictionary(token, dictionary_name)`` expose the individual
    families so templated queries can build custom feature sets.
    """
    extractor = extractor or TokenFeatureExtractor()

    def token_features(tokens, position):
        token_list = list(tokens)
        return extractor.token_features(token_list, int(position))

    def matches_regex(token: str, pattern: str) -> bool:
        return re.search(pattern, token) is not None

    def in_dictionary(token: str, dictionary_name: str) -> bool:
        words = extractor.dictionaries.get(dictionary_name, set())
        return token.lower() in words

    database.create_function("crf_token_features", token_features)
    database.create_function("crf_matches_regex", matches_regex, return_type="boolean")
    database.create_function("crf_in_dictionary", in_dictionary, return_type="boolean")
