"""Viterbi inference over a linear-chain CRF (Table 3).

Section 5.2 describes two macro-coordination styles for the Viterbi dynamic
program: a recursive-SQL / window-aggregate formulation (PostgreSQL ≥ 8.4
only) and a Python-UDF driver that iterates position by position (portable to
Greenplum, parallel over documents).  Both are reproduced here:

* :func:`viterbi` — in-memory dynamic programming over one sentence.
* :func:`viterbi_top_k` — the top-k variant the paper mentions.
* :func:`viterbi_sql` — the driver-style formulation: per-position factor
  scores are staged in a table, and each DP step is one SQL statement over
  that table joined with the previous step's partial paths, so all bulk work
  happens in the engine while Python only sequences the positions.

The DP-step statement is a three-way implicit join (``FROM factors f,
paths p, transitions t``) whose WHERE clause carries two cross-table
equality conjuncts; the engine's join planner (``docs/joins.md``) pushes
the single-table position filters below the join and executes the equality
conjuncts as build/probe hash joins, so each step visits O(F + P + T) rows
instead of materializing the O(F·P·T) Cartesian product the pre-join-layer
executor built.  The final ``ORDER BY score DESC LIMIT 1`` argmax rides the
top-k short-circuit (bounded heap selection, no full sort).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .crf import LinearChainCRF

__all__ = ["viterbi", "viterbi_top_k", "viterbi_sql"]


def viterbi(model: LinearChainCRF, tokens: Sequence[str]) -> Tuple[List[str], float]:
    """Most likely label sequence and its unnormalized log-score."""
    token_features = model.encode_tokens(tokens)
    emissions = model.emission_scores(token_features)
    length, num_labels = emissions.shape
    if length == 0:
        return [], 0.0
    scores = np.full((length, num_labels), -np.inf)
    backpointers = np.zeros((length, num_labels), dtype=np.int64)
    scores[0] = model.start_weights + emissions[0]
    for position in range(1, length):
        candidate = scores[position - 1][:, None] + model.transition_weights
        backpointers[position] = np.argmax(candidate, axis=0)
        scores[position] = candidate[backpointers[position], np.arange(num_labels)] + emissions[position]
    best_last = int(np.argmax(scores[-1]))
    best_score = float(scores[-1, best_last])
    path = [best_last]
    for position in range(length - 1, 0, -1):
        path.append(int(backpointers[position, path[-1]]))
    path.reverse()
    return model.label_sequence(path), best_score


def viterbi_top_k(model: LinearChainCRF, tokens: Sequence[str], k: int = 3) -> List[Tuple[List[str], float]]:
    """The ``k`` highest-scoring labelings (list-Viterbi)."""
    if k < 1:
        raise ValidationError("k must be at least 1")
    token_features = model.encode_tokens(tokens)
    emissions = model.emission_scores(token_features)
    length, num_labels = emissions.shape
    if length == 0:
        return []
    # beams[t][label] = list of (score, path) of size <= k.
    beams: List[List[List[Tuple[float, Tuple[int, ...]]]]] = []
    first = [
        [(float(model.start_weights[label] + emissions[0, label]), (label,))]
        for label in range(num_labels)
    ]
    beams.append(first)
    for position in range(1, length):
        level: List[List[Tuple[float, Tuple[int, ...]]]] = []
        for label in range(num_labels):
            candidates: List[Tuple[float, Tuple[int, ...]]] = []
            for previous_label in range(num_labels):
                for score, path in beams[position - 1][previous_label]:
                    new_score = (
                        score
                        + float(model.transition_weights[previous_label, label])
                        + float(emissions[position, label])
                    )
                    candidates.append((new_score, path + (label,)))
            level.append(heapq.nlargest(k, candidates, key=lambda item: item[0]))
        beams.append(level)
    final_candidates: List[Tuple[float, Tuple[int, ...]]] = []
    for label in range(num_labels):
        final_candidates.extend(beams[-1][label])
    best = heapq.nlargest(k, final_candidates, key=lambda item: item[0])
    return [(model.label_sequence(path), score) for score, path in best]


def viterbi_sql(
    database,
    model: LinearChainCRF,
    tokens: Sequence[str],
    *,
    temp_prefix: str = "viterbi",
) -> Tuple[List[str], float]:
    """Driver-style Viterbi: the DP table lives in the database.

    One table holds per-position, per-label factor scores; a second table
    holds the best partial-path score per label, rebuilt once per position by
    a single SQL statement that joins it with the factor table (the
    "Python UDF that uses iterations to drive the recursion" implementation
    from the paper).  Backpointers are also stored in a table so the final
    path reconstruction is a sequence of small lookups.
    """
    token_features = model.encode_tokens(tokens)
    emissions = model.emission_scores(token_features)
    length, num_labels = emissions.shape
    if length == 0:
        return [], 0.0

    factors = database.unique_temp_name(f"{temp_prefix}_factors")
    database.create_table(
        factors,
        [("position", "integer"), ("label", "integer"), ("emission", "double precision")],
        temporary=True,
    )
    database.load_rows(
        factors,
        [
            (position, label, float(emissions[position, label]))
            for position in range(length)
            for label in range(num_labels)
        ],
    )
    transitions = database.unique_temp_name(f"{temp_prefix}_transitions")
    database.create_table(
        transitions,
        [("prev_label", "integer"), ("label", "integer"), ("weight", "double precision")],
        temporary=True,
    )
    database.load_rows(
        transitions,
        [
            (previous, label, float(model.transition_weights[previous, label]))
            for previous in range(num_labels)
            for label in range(num_labels)
        ],
    )

    paths = database.unique_temp_name(f"{temp_prefix}_paths")
    database.create_table(
        paths,
        [("position", "integer"), ("label", "integer"), ("score", "double precision"),
         ("prev_label", "integer")],
        temporary=True,
    )
    database.execute(
        f"INSERT INTO {paths} SELECT position, label, emission + %(start)s[label + 1], -1 "
        f"FROM {factors} WHERE position = 0",
        {"start": model.start_weights},
    )

    for position in range(1, length):
        # One SQL statement per DP step: extend every partial path by every
        # label and keep the max per new label.
        database.execute(
            f"INSERT INTO {paths} "
            f"SELECT f.position, f.label, max(p.score + t.weight + f.emission), -1 "
            f"FROM {factors} f, {paths} p, {transitions} t "
            f"WHERE f.position = %(pos)s AND p.position = %(prev)s "
            f"AND t.prev_label = p.label AND t.label = f.label "
            f"GROUP BY f.position, f.label",
            {"pos": position, "prev": position - 1},
        )
        # Record the argmax backpointer per label.
        best_rows = database.query_dicts(
            f"SELECT f.label AS label, p.label AS prev_label, "
            f"p.score + t.weight + f.emission AS score "
            f"FROM {factors} f, {paths} p, {transitions} t "
            f"WHERE f.position = %(pos)s AND p.position = %(prev)s "
            f"AND t.prev_label = p.label AND t.label = f.label",
            {"pos": position, "prev": position - 1},
        )
        best_by_label: dict = {}
        for row in best_rows:
            label = int(row["label"])
            if label not in best_by_label or row["score"] > best_by_label[label][0]:
                best_by_label[label] = (float(row["score"]), int(row["prev_label"]))
        for label, (_, prev_label) in best_by_label.items():
            database.execute(
                f"UPDATE {paths} SET prev_label = %(prev_label)s "
                f"WHERE position = %(pos)s AND label = %(label)s",
                {"prev_label": prev_label, "pos": position, "label": label},
            )

    final_rows = database.query_dicts(
        f"SELECT label, score FROM {paths} WHERE position = %(pos)s ORDER BY score DESC LIMIT 1",
        {"pos": length - 1},
    )
    best_label = int(final_rows[0]["label"])
    best_score = float(final_rows[0]["score"])
    path = [best_label]
    for position in range(length - 1, 0, -1):
        previous = database.query_scalar(
            f"SELECT prev_label FROM {paths} WHERE position = %(pos)s AND label = %(label)s",
            {"pos": position, "label": path[-1]},
        )
        path.append(int(previous))
    path.reverse()

    for table in (factors, transitions, paths):
        database.drop_table(table, if_exists=True)
    return model.label_sequence(path), best_score
