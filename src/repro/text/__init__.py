"""Statistical text analytics (Section 5.2, Table 3).

Text feature extraction, linear-chain CRFs, Viterbi inference, MCMC inference
(Gibbs and Metropolis–Hastings) and q-gram approximate string matching.
"""

from .crf import LinearChainCRF, featurize_corpus, train_crf
from .features import DEFAULT_REGEX_FEATURES, FeatureMap, TokenFeatureExtractor, install_feature_udfs
from .mcmc import MCMCResult, gibbs_sample, gibbs_sql, metropolis_hastings
from .string_match import TrigramIndex, install_string_match_udfs, qgrams, trigram_similarity
from .viterbi import viterbi, viterbi_sql, viterbi_top_k

__all__ = [
    "TokenFeatureExtractor",
    "FeatureMap",
    "DEFAULT_REGEX_FEATURES",
    "install_feature_udfs",
    "LinearChainCRF",
    "train_crf",
    "featurize_corpus",
    "viterbi",
    "viterbi_top_k",
    "viterbi_sql",
    "MCMCResult",
    "gibbs_sample",
    "metropolis_hastings",
    "gibbs_sql",
    "qgrams",
    "trigram_similarity",
    "TrigramIndex",
    "install_string_match_udfs",
]
