"""MCMC inference over a linear-chain CRF: Gibbs sampling and Metropolis–Hastings.

Table 3 lists MCMC inference as the method of choice "when we want the
probabilities or confidence of an answer as well" as the labeling itself.  The
paper's implementation carries the Markov-chain state across rows with SQL
window aggregates; here the same chains are provided both as plain Python
samplers and as a database-backed variant (:func:`gibbs_sql`) that stages the
per-iteration label state in a table, mirroring the stateful-iteration
macro-coordination pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .crf import LinearChainCRF

__all__ = ["MCMCResult", "gibbs_sample", "metropolis_hastings", "gibbs_sql"]


@dataclass
class MCMCResult:
    """Posterior summaries from an MCMC run."""

    map_labels: List[str]
    marginals: np.ndarray  # (length, num_labels) empirical label marginals
    num_samples: int
    acceptance_rate: float = 1.0

    def confidence(self, position: int) -> float:
        """Marginal probability of the MAP label at one position."""
        return float(self.marginals[position].max())


def _conditional_distribution(
    model: LinearChainCRF,
    emissions: np.ndarray,
    labels: np.ndarray,
    position: int,
) -> np.ndarray:
    """P(y_t | y_{-t}, x) for a linear chain: depends only on the neighbours."""
    num_labels = model.num_labels
    scores = emissions[position].copy()
    if position == 0:
        scores += model.start_weights
    else:
        scores += model.transition_weights[labels[position - 1], :]
    if position + 1 < len(labels):
        scores += model.transition_weights[:, labels[position + 1]]
    scores -= scores.max()
    probabilities = np.exp(scores)
    return probabilities / probabilities.sum()


def gibbs_sample(
    model: LinearChainCRF,
    tokens: Sequence[str],
    *,
    num_samples: int = 200,
    burn_in: int = 50,
    seed: Optional[int] = None,
) -> MCMCResult:
    """Gibbs sampling: resample each position from its full conditional in turn."""
    if num_samples < 1:
        raise ValidationError("num_samples must be at least 1")
    rng = np.random.default_rng(seed)
    token_features = model.encode_tokens(tokens)
    emissions = model.emission_scores(token_features)
    length, num_labels = emissions.shape
    if length == 0:
        return MCMCResult([], np.zeros((0, num_labels)), 0)
    labels = rng.integers(0, num_labels, size=length)
    counts = np.zeros((length, num_labels), dtype=np.float64)
    for sweep in range(burn_in + num_samples):
        for position in range(length):
            probabilities = _conditional_distribution(model, emissions, labels, position)
            labels[position] = int(rng.choice(num_labels, p=probabilities))
        if sweep >= burn_in:
            counts[np.arange(length), labels] += 1.0
    marginals = counts / counts.sum(axis=1, keepdims=True)
    map_ids = np.argmax(marginals, axis=1)
    return MCMCResult(model.label_sequence(map_ids), marginals, num_samples)


def metropolis_hastings(
    model: LinearChainCRF,
    tokens: Sequence[str],
    *,
    num_samples: int = 500,
    burn_in: int = 100,
    seed: Optional[int] = None,
) -> MCMCResult:
    """Metropolis–Hastings with a single-site uniform proposal."""
    if num_samples < 1:
        raise ValidationError("num_samples must be at least 1")
    rng = np.random.default_rng(seed)
    token_features = model.encode_tokens(tokens)
    emissions = model.emission_scores(token_features)
    length, num_labels = emissions.shape
    if length == 0:
        return MCMCResult([], np.zeros((0, num_labels)), 0)
    labels = rng.integers(0, num_labels, size=length)
    current_score = model.sequence_score(token_features, labels.tolist())
    counts = np.zeros((length, num_labels), dtype=np.float64)
    accepted = 0
    proposals = 0
    for sweep in range(burn_in + num_samples):
        for _ in range(length):
            proposals += 1
            position = int(rng.integers(0, length))
            proposed_label = int(rng.integers(0, num_labels))
            if proposed_label == labels[position]:
                accepted += 1
                continue
            proposal = labels.copy()
            proposal[position] = proposed_label
            proposal_score = model.sequence_score(token_features, proposal.tolist())
            if np.log(rng.uniform() + 1e-300) < proposal_score - current_score:
                labels = proposal
                current_score = proposal_score
                accepted += 1
        if sweep >= burn_in:
            counts[np.arange(length), labels] += 1.0
    marginals = counts / counts.sum(axis=1, keepdims=True)
    map_ids = np.argmax(marginals, axis=1)
    return MCMCResult(
        model.label_sequence(map_ids), marginals, num_samples,
        acceptance_rate=accepted / max(proposals, 1),
    )


def gibbs_sql(
    database,
    model: LinearChainCRF,
    tokens: Sequence[str],
    *,
    num_samples: int = 100,
    burn_in: int = 20,
    seed: Optional[int] = None,
    temp_prefix: str = "mcmc",
) -> MCMCResult:
    """Gibbs sampling with the chain state staged in a database table.

    The label state after every sweep is written to a ``(sweep, position,
    label)`` table; marginals are then computed with a single SQL aggregation
    over the post-burn-in sweeps.  This is the macro-coordination shape of the
    paper's window-aggregate implementation, with the driver kicking off one
    small statement per sweep.
    """
    rng = np.random.default_rng(seed)
    token_features = model.encode_tokens(tokens)
    emissions = model.emission_scores(token_features)
    length, num_labels = emissions.shape
    if length == 0:
        return MCMCResult([], np.zeros((0, num_labels)), 0)

    samples_table = database.unique_temp_name(f"{temp_prefix}_samples")
    database.create_table(
        samples_table,
        [("sweep", "integer"), ("position", "integer"), ("label", "integer")],
        temporary=True,
    )
    labels = rng.integers(0, num_labels, size=length)
    for sweep in range(burn_in + num_samples):
        for position in range(length):
            probabilities = _conditional_distribution(model, emissions, labels, position)
            labels[position] = int(rng.choice(num_labels, p=probabilities))
        if sweep >= burn_in:
            database.load_rows(
                samples_table,
                [(sweep - burn_in, position, int(labels[position])) for position in range(length)],
            )

    rows = database.query_dicts(
        f"SELECT position, label, count(*) AS n FROM {samples_table} "
        f"GROUP BY position, label"
    )
    counts = np.zeros((length, num_labels), dtype=np.float64)
    for row in rows:
        counts[int(row["position"]), int(row["label"])] = float(row["n"])
    database.drop_table(samples_table, if_exists=True)
    marginals = counts / counts.sum(axis=1, keepdims=True)
    map_ids = np.argmax(marginals, axis=1)
    return MCMCResult(model.label_sequence(map_ids), marginals, num_samples)
