"""Linear-chain conditional random fields (Section 5.2).

CRFs are the statistical model behind the Florida/Berkeley text-analytics
work: POS tagging, NER and entity resolution are all cast as sequence
labeling under a linear-chain CRF.  This module implements the model itself —
feature weights, potential matrices, forward/backward, log-likelihood and its
gradient, and maximum-likelihood training — while the two inference styles the
paper discusses live in :mod:`repro.text.viterbi` (most-likely labeling) and
:mod:`repro.text.mcmc` (sampling-based marginals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .features import FeatureMap, TokenFeatureExtractor

__all__ = ["LinearChainCRF", "train_crf", "featurize_corpus"]


@dataclass
class _EncodedSequence:
    """One training sequence: per-position observation feature indices and labels."""

    token_features: List[List[int]]
    labels: List[int]


class LinearChainCRF:
    """A linear-chain CRF with observation and transition (edge) features.

    The score of a labeling ``y`` for a sentence ``x`` is
    ``sum_t [ w_obs . f(x, t, y_t) + w_edge[y_{t-1}, y_t] ]`` and the model
    defines ``P(y | x) ∝ exp(score)``.
    """

    def __init__(self, labels: Sequence[str], feature_map: FeatureMap,
                 extractor: Optional[TokenFeatureExtractor] = None) -> None:
        if not labels:
            raise ValidationError("a CRF needs at least one label")
        self.labels = list(labels)
        self.label_index = {label: i for i, label in enumerate(self.labels)}
        self.feature_map = feature_map
        self.extractor = extractor or TokenFeatureExtractor()
        num_labels = len(self.labels)
        #: Observation weights, shape (num_features, num_labels).
        self.observation_weights = np.zeros((len(feature_map), num_labels), dtype=np.float64)
        #: Edge weights, shape (num_labels, num_labels): the "edge features".
        self.transition_weights = np.zeros((num_labels, num_labels), dtype=np.float64)
        #: Start weights, shape (num_labels,).
        self.start_weights = np.zeros(num_labels, dtype=np.float64)

    # ------------------------------------------------------------------ scoring

    @property
    def num_labels(self) -> int:
        return len(self.labels)

    def encode_tokens(self, tokens: Sequence[str], *, allow_new_features: bool = False) -> List[List[int]]:
        """Map a sentence to per-position observation-feature index lists."""
        if not allow_new_features:
            self.feature_map.frozen = True
        indices: List[List[int]] = []
        for names in self.extractor.sequence_features(tokens):
            position_indices = []
            for name in names:
                index = self.feature_map.intern(name)
                if index is not None:
                    position_indices.append(index)
            indices.append(position_indices)
        return indices

    def emission_scores(self, token_features: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-position, per-label observation scores, shape (length, num_labels)."""
        length = len(token_features)
        scores = np.zeros((length, self.num_labels), dtype=np.float64)
        for position, feature_indices in enumerate(token_features):
            if feature_indices:
                scores[position] = self.observation_weights[feature_indices].sum(axis=0)
        return scores

    def sequence_score(self, token_features: Sequence[Sequence[int]], label_ids: Sequence[int]) -> float:
        """Unnormalized log-score of one labeling."""
        emissions = self.emission_scores(token_features)
        score = self.start_weights[label_ids[0]] + emissions[0, label_ids[0]]
        for position in range(1, len(label_ids)):
            score += self.transition_weights[label_ids[position - 1], label_ids[position]]
            score += emissions[position, label_ids[position]]
        return float(score)

    # ------------------------------------------------------------------ forward / backward

    def forward_backward(self, token_features: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray, float]:
        """Log-space forward and backward tables plus the log partition function."""
        emissions = self.emission_scores(token_features)
        length, num_labels = emissions.shape
        forward = np.full((length, num_labels), -np.inf)
        forward[0] = self.start_weights + emissions[0]
        for position in range(1, length):
            # forward[t, j] = logsumexp_i(forward[t-1, i] + T[i, j]) + E[t, j]
            scores = forward[position - 1][:, None] + self.transition_weights
            forward[position] = _logsumexp_columns(scores) + emissions[position]
        backward = np.full((length, num_labels), -np.inf)
        backward[-1] = 0.0
        for position in range(length - 2, -1, -1):
            scores = self.transition_weights + (emissions[position + 1] + backward[position + 1])[None, :]
            backward[position] = _logsumexp_rows(scores)
        log_partition = float(_logsumexp(forward[-1]))
        return forward, backward, log_partition

    def marginals(self, token_features: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-position label marginals P(y_t = l | x), shape (length, num_labels)."""
        forward, backward, log_partition = self.forward_backward(token_features)
        log_marginals = forward + backward - log_partition
        return np.exp(log_marginals)

    def log_likelihood(self, token_features: Sequence[Sequence[int]], label_ids: Sequence[int]) -> float:
        _, _, log_partition = self.forward_backward(token_features)
        return self.sequence_score(token_features, label_ids) - log_partition

    # ------------------------------------------------------------------ gradient

    def gradient(self, token_features: Sequence[Sequence[int]], label_ids: Sequence[int]):
        """Gradient of the per-sequence log-likelihood w.r.t. all weight blocks.

        Returns ``(obs_grad_sparse, transition_grad, start_grad)`` where the
        observation gradient is a dict ``{(feature, label): value}`` so sparse
        updates stay sparse.
        """
        emissions = self.emission_scores(token_features)
        length, num_labels = emissions.shape
        forward, backward, log_partition = self.forward_backward(token_features)
        marginals = np.exp(forward + backward - log_partition)

        observation_gradient: Dict[Tuple[int, int], float] = {}
        for position, feature_indices in enumerate(token_features):
            gold = label_ids[position]
            for feature in feature_indices:
                observation_gradient[(feature, gold)] = observation_gradient.get((feature, gold), 0.0) + 1.0
                for label in range(num_labels):
                    key = (feature, label)
                    observation_gradient[key] = observation_gradient.get(key, 0.0) - float(
                        marginals[position, label]
                    )

        transition_gradient = np.zeros_like(self.transition_weights)
        for position in range(1, length):
            transition_gradient[label_ids[position - 1], label_ids[position]] += 1.0
            # Expected transition counts.
            scores = (
                forward[position - 1][:, None]
                + self.transition_weights
                + (emissions[position] + backward[position])[None, :]
                - log_partition
            )
            transition_gradient -= np.exp(scores)

        start_gradient = np.zeros_like(self.start_weights)
        start_gradient[label_ids[0]] += 1.0
        start_gradient -= marginals[0]
        return observation_gradient, transition_gradient, start_gradient

    def apply_gradient(self, gradient, stepsize: float, *, l2: float = 0.0) -> None:
        """Take one (stochastic) gradient ascent step."""
        observation_gradient, transition_gradient, start_gradient = gradient
        if l2:
            self.observation_weights *= 1.0 - stepsize * l2
            self.transition_weights *= 1.0 - stepsize * l2
            self.start_weights *= 1.0 - stepsize * l2
        for (feature, label), value in observation_gradient.items():
            self.observation_weights[feature, label] += stepsize * value
        self.transition_weights += stepsize * transition_gradient
        self.start_weights += stepsize * start_gradient

    # ------------------------------------------------------------------ convenience

    def label_sequence(self, label_ids: Sequence[int]) -> List[str]:
        return [self.labels[int(i)] for i in label_ids]

    def encode_labels(self, labels: Sequence[str]) -> List[int]:
        try:
            return [self.label_index[label] for label in labels]
        except KeyError as exc:
            raise ValidationError(f"unknown label {exc.args[0]!r}") from None


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------


def featurize_corpus(corpus, extractor: Optional[TokenFeatureExtractor] = None):
    """Build a FeatureMap and encoded sequences from a :class:`TagCorpus`."""
    extractor = extractor or TokenFeatureExtractor()
    feature_map = FeatureMap()
    encoded: List[_EncodedSequence] = []
    label_set: List[str] = list(corpus.labels)
    label_index = {label: i for i, label in enumerate(label_set)}
    for sequence in corpus.sequences:
        token_features: List[List[int]] = []
        for names in extractor.sequence_features(sequence.tokens):
            token_features.append([feature_map.intern(name) for name in names])
        labels = [label_index[label] for label in sequence.labels]
        encoded.append(_EncodedSequence(token_features, labels))
    return feature_map, encoded, label_set, extractor


def train_crf(
    corpus,
    *,
    extractor: Optional[TokenFeatureExtractor] = None,
    num_epochs: int = 5,
    stepsize: float = 0.1,
    decay: float = 0.9,
    l2: float = 1e-4,
    seed: Optional[int] = None,
) -> LinearChainCRF:
    """Train a linear-chain CRF by stochastic gradient ascent on the log-likelihood."""
    feature_map, encoded, labels, extractor = featurize_corpus(corpus, extractor)
    model = LinearChainCRF(labels, feature_map, extractor)
    rng = np.random.default_rng(seed)
    order = np.arange(len(encoded))
    current_step = stepsize
    for _ in range(num_epochs):
        rng.shuffle(order)
        for index in order:
            sequence = encoded[int(index)]
            gradient = model.gradient(sequence.token_features, sequence.labels)
            model.apply_gradient(gradient, current_step, l2=l2)
        current_step *= decay
    return model


# ---------------------------------------------------------------------------
# Log-space helpers
# ---------------------------------------------------------------------------


def _logsumexp(values: np.ndarray) -> float:
    maximum = float(np.max(values))
    if not math.isfinite(maximum):
        return maximum
    return maximum + float(np.log(np.sum(np.exp(values - maximum))))


def _logsumexp_columns(matrix: np.ndarray) -> np.ndarray:
    maxima = matrix.max(axis=0)
    safe = np.where(np.isfinite(maxima), maxima, 0.0)
    return safe + np.log(np.exp(matrix - safe).sum(axis=0))


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    maxima = matrix.max(axis=1)
    safe = np.where(np.isfinite(maxima), maxima, 0.0)
    return safe + np.log(np.exp(matrix - safe[:, None]).sum(axis=1))
