"""Approximate string matching with q-grams (Table 3).

Section 5.2: "The technique we use is based on qgrams.  We used the trigram
module in PostgreSQL to create and index 3-grams over text.  Given a string
'Tim Tebow' we can create a 3-gram by using a sliding window of 3 characters
...  Using the 3-gram index, we created an approximate matching UDF that takes
in a query string and returns all documents in the corpus that contain at
least one approximate match."

This module reproduces the ``pg_trgm`` behaviour: padded trigram extraction,
Jaccard-style trigram similarity, an inverted trigram index materialized as a
database table, and the ``approximate_match`` UDF over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..driver import validate_columns_exist, validate_table_exists
from ..errors import ValidationError

__all__ = ["qgrams", "trigram_similarity", "TrigramIndex", "install_string_match_udfs"]


def qgrams(text: str, q: int = 3, *, pad: bool = True) -> List[str]:
    """Sliding-window q-grams of ``text`` (lower-cased; padded like pg_trgm for q=3)."""
    if q < 1:
        raise ValidationError("q must be at least 1")
    normalized = " ".join(text.lower().split())
    if not normalized:
        return []
    if pad:
        normalized = " " * (q - 1) + normalized + " "
    if len(normalized) < q:
        return [normalized]
    return [normalized[i:i + q] for i in range(len(normalized) - q + 1)]


def trigram_similarity(left: str, right: str, *, q: int = 3) -> float:
    """Jaccard similarity of the two strings' q-gram sets (pg_trgm's ``similarity``)."""
    left_grams = set(qgrams(left, q))
    right_grams = set(qgrams(right, q))
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    intersection = len(left_grams & right_grams)
    union = len(left_grams | right_grams)
    return intersection / union


@dataclass
class MatchResult:
    """One approximate match: the document id, its text and the similarity score."""

    document_id: int
    text: str
    similarity: float


class TrigramIndex:
    """An inverted trigram index over a document table, stored in the database.

    ``build`` materializes a ``(trigram, document_id)`` table from the corpus
    (the analog of ``CREATE INDEX ... USING gin (text gin_trgm_ops)``);
    ``search`` finds candidate documents sharing at least one trigram with the
    query via a SQL join on that table and then ranks candidates by trigram
    similarity.
    """

    def __init__(self, database, documents_table: str, *, id_column: str = "doc_id",
                 text_column: str = "text", q: int = 3) -> None:
        validate_table_exists(database, documents_table)
        validate_columns_exist(database, documents_table, [id_column, text_column])
        self.database = database
        self.documents_table = documents_table
        self.id_column = id_column
        self.text_column = text_column
        self.q = q
        self.index_table: Optional[str] = None

    def build(self, *, index_table: Optional[str] = None) -> str:
        """Materialize the trigram index table; returns its name."""
        name = index_table or f"{self.documents_table}_trgm_idx"
        self.database.create_table(
            name, [("trigram", "text"), ("doc_id", "integer")], replace=True
        )
        rows = self.database.query_dicts(
            f"SELECT {self.id_column} AS doc_id, {self.text_column} AS text FROM {self.documents_table}"
        )
        index_rows: List[Tuple[str, int]] = []
        for row in rows:
            for gram in set(qgrams(row["text"], self.q)):
                index_rows.append((gram, int(row["doc_id"])))
        self.database.load_rows(name, index_rows)
        self.index_table = name
        return name

    def search(self, query: str, *, threshold: float = 0.3, limit: Optional[int] = None) -> List[MatchResult]:
        """Documents whose trigram similarity with ``query`` is at least ``threshold``.

        Candidate retrieval is a single SQL statement: the trigram index
        filtered by the query's grams, hash-joined back to the document table
        on the id column.  The engine's join planner pushes the ``IN`` filter
        below the join and executes the id match as a build/probe hash join
        (``docs/joins.md``) — one pass over each table instead of the old
        one-lookup-per-candidate loop, which rescanned the document table
        O(candidates) times.
        """
        if self.index_table is None:
            self.build()
        if not (0.0 < threshold <= 1.0):
            raise ValidationError("threshold must be in (0, 1]")
        query_grams = sorted(set(qgrams(query, self.q)))
        if not query_grams:
            return []
        placeholders = ", ".join(f"%(g{i})s" for i in range(len(query_grams)))
        parameters = {f"g{i}": gram for i, gram in enumerate(query_grams)}
        candidates = self.database.query_dicts(
            f"SELECT DISTINCT d.{self.id_column} AS doc_id, d.{self.text_column} AS text "
            f"FROM {self.index_table} g, {self.documents_table} d "
            f"WHERE g.trigram IN ({placeholders}) AND g.doc_id = d.{self.id_column}",
            parameters,
        )
        results: List[MatchResult] = []
        for candidate in candidates:
            doc_id = int(candidate["doc_id"])
            similarity = trigram_similarity(query, candidate["text"], q=self.q)
            if similarity >= threshold:
                results.append(MatchResult(doc_id, candidate["text"], similarity))
        results.sort(key=lambda match: (-match.similarity, match.document_id))
        if limit is not None:
            results = results[:limit]
        return results


def install_string_match_udfs(database, *, q: int = 3) -> None:
    """Register ``show_trgm`` and ``similarity`` UDFs (the pg_trgm surface)."""
    database.create_function("show_trgm", lambda text: qgrams(text, q))
    database.create_function(
        "similarity", lambda a, b: trigram_similarity(a, b, q=q), return_type="double precision"
    )
