"""Setup shim so that ``pip install -e .`` works with legacy (pre-PEP 660) tooling."""
from setuptools import setup

setup()
