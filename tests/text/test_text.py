"""Tests for the text-analytics stack: features, CRF, Viterbi, MCMC, string matching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datasets import make_name_variants, make_tag_corpus
from repro.errors import ValidationError
from repro.text import (
    FeatureMap,
    LinearChainCRF,
    TokenFeatureExtractor,
    TrigramIndex,
    featurize_corpus,
    gibbs_sample,
    gibbs_sql,
    install_feature_udfs,
    install_string_match_udfs,
    metropolis_hastings,
    qgrams,
    train_crf,
    trigram_similarity,
    viterbi,
    viterbi_sql,
    viterbi_top_k,
)


class TestFeatureExtraction:
    def test_feature_families(self):
        extractor = TokenFeatureExtractor(
            dictionaries={"names": {"tebow", "denver"}},
        )
        tokens = ["The", "Denver", "team", "wins", "42"]
        features = extractor.sequence_features(tokens)
        assert "position:first" in features[0]
        assert "position:last" in features[-1]
        assert "dict:names" in features[1]
        assert "regex:is_capitalized" in features[1]
        assert "regex:is_digit" in features[4]
        assert "word:team" in features[2]

    def test_feature_map_intern_and_freeze(self):
        feature_map = FeatureMap()
        first = feature_map.intern("a")
        assert feature_map.intern("a") == first
        assert len(feature_map) == 1
        feature_map.freeze()
        assert feature_map.intern("new") is None
        assert len(feature_map) == 1

    def test_in_database_feature_udfs(self, db):
        install_feature_udfs(db)
        assert db.query_scalar("SELECT crf_matches_regex('Tebow', '^[A-Z]')") is True
        features = db.query_scalar(
            "SELECT crf_token_features(%(tokens)s, 0)", {"tokens": ["Denver", "wins"]}
        )
        assert "position:first" in features


@pytest.fixture(scope="module")
def trained_crf():
    corpus = make_tag_corpus(80, seed=21)
    train, test = corpus.split(0.8)
    model = train_crf(train, num_epochs=4, stepsize=0.15, seed=22)
    return model, train, test


class TestCRF:
    def test_training_improves_likelihood(self):
        corpus = make_tag_corpus(30, seed=23)
        feature_map, encoded, labels, extractor = featurize_corpus(corpus)
        untrained = LinearChainCRF(labels, feature_map, extractor)
        trained = train_crf(corpus, num_epochs=3, seed=24)
        sequence = encoded[0]
        assert trained.log_likelihood(sequence.token_features, sequence.labels) > \
            untrained.log_likelihood(sequence.token_features, sequence.labels)

    def test_marginals_are_distributions(self, trained_crf):
        model, _, test = trained_crf
        token_features = model.encode_tokens(test.sequences[0].tokens)
        marginals = model.marginals(token_features)
        np.testing.assert_allclose(marginals.sum(axis=1), 1.0, rtol=1e-8)
        assert np.all(marginals >= 0)

    def test_tagging_accuracy_beats_chance(self, trained_crf):
        model, _, test = trained_crf
        correct = total = 0
        for sequence in test.sequences:
            predicted, _ = viterbi(model, sequence.tokens)
            correct += sum(p == g for p, g in zip(predicted, sequence.labels))
            total += len(sequence)
        assert correct / total > 0.8

    def test_unknown_label_rejected(self, trained_crf):
        model, _, _ = trained_crf
        with pytest.raises(ValidationError):
            model.encode_labels(["NOT_A_TAG"])

    def test_empty_label_set_rejected(self):
        with pytest.raises(ValidationError):
            LinearChainCRF([], FeatureMap())


class TestViterbi:
    def test_matches_brute_force_on_small_chain(self, trained_crf):
        from itertools import product

        model, _, test = trained_crf
        tokens = test.sequences[0].tokens[:4]
        token_features = model.encode_tokens(tokens)
        best_labels, best_score = viterbi(model, tokens)
        # Brute force over all label sequences.
        brute_best = None
        brute_score = -np.inf
        for assignment in product(range(model.num_labels), repeat=len(tokens)):
            score = model.sequence_score(token_features, list(assignment))
            if score > brute_score:
                brute_score = score
                brute_best = assignment
        assert best_score == pytest.approx(brute_score)
        assert best_labels == model.label_sequence(brute_best)

    def test_top_k_is_sorted_and_contains_best(self, trained_crf):
        model, _, test = trained_crf
        tokens = test.sequences[1].tokens[:5]
        top = viterbi_top_k(model, tokens, k=3)
        assert len(top) == 3
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        best_labels, best_score = viterbi(model, tokens)
        assert top[0][1] == pytest.approx(best_score)
        assert top[0][0] == best_labels

    def test_sql_viterbi_matches_in_memory(self, trained_crf):
        model, _, test = trained_crf
        db = Database(num_segments=2)
        for sequence in test.sequences[:3]:
            in_memory = viterbi(model, sequence.tokens)
            via_sql = viterbi_sql(db, model, sequence.tokens)
            assert via_sql[0] == in_memory[0]
            assert via_sql[1] == pytest.approx(in_memory[1])

    def test_empty_sequence(self, trained_crf):
        model, _, _ = trained_crf
        assert viterbi(model, []) == ([], 0.0)

    def test_invalid_k_rejected(self, trained_crf):
        model, _, _ = trained_crf
        with pytest.raises(ValidationError):
            viterbi_top_k(model, ["the"], k=0)


class TestMCMC:
    def test_gibbs_marginals_concentrate_on_viterbi_path(self, trained_crf):
        model, _, test = trained_crf
        tokens = test.sequences[0].tokens
        viterbi_labels, _ = viterbi(model, tokens)
        result = gibbs_sample(model, tokens, num_samples=300, burn_in=100, seed=31)
        agreement = np.mean([a == b for a, b in zip(result.map_labels, viterbi_labels)])
        assert agreement > 0.7
        np.testing.assert_allclose(result.marginals.sum(axis=1), 1.0, rtol=1e-9)
        assert 0.0 < result.confidence(0) <= 1.0

    def test_metropolis_hastings_reports_acceptance(self, trained_crf):
        model, _, test = trained_crf
        result = metropolis_hastings(
            model, test.sequences[1].tokens, num_samples=200, burn_in=50, seed=32
        )
        assert 0.0 < result.acceptance_rate <= 1.0
        assert len(result.map_labels) == len(test.sequences[1].tokens)

    def test_gibbs_sql_stages_samples_in_database(self, trained_crf):
        model, _, test = trained_crf
        db = Database(num_segments=2)
        result = gibbs_sql(db, model, test.sequences[2].tokens, num_samples=50, burn_in=10, seed=33)
        assert len(result.map_labels) == len(test.sequences[2].tokens)
        # Temp table cleaned up afterwards.
        assert not any(name.startswith("mcmc_samples") for name in db.table_names())

    def test_invalid_sample_count_rejected(self, trained_crf):
        model, _, _ = trained_crf
        with pytest.raises(ValidationError):
            gibbs_sample(model, ["the"], num_samples=0)


class TestStringMatching:
    def test_qgrams_sliding_window(self):
        grams = qgrams("Tim Tebow")
        assert "tim" in grams
        assert len(grams) == len("  tim tebow ") - 2
        assert qgrams("") == []

    def test_similarity_properties(self):
        assert trigram_similarity("Tim Tebow", "Tim Tebow") == 1.0
        assert trigram_similarity("Tim Tebow", "Tom Brady") < 0.3
        assert trigram_similarity("", "") == 1.0
        assert trigram_similarity("abc", "") == 0.0

    def test_index_finds_typo_variants(self):
        db = Database(num_segments=2)
        pairs = make_name_variants(seed=34)
        db.create_table("mentions", [("doc_id", "integer"), ("text", "text")])
        db.load_rows("mentions", [(i, mention) for i, (_, mention) in enumerate(pairs)])
        index = TrigramIndex(db, "mentions")
        index.build()
        matches = index.search("Tim Tebow", threshold=0.4)
        assert matches
        assert matches[0].similarity == 1.0
        assert all(m.similarity >= 0.4 for m in matches)
        # Ranked by similarity.
        similarities = [m.similarity for m in matches]
        assert similarities == sorted(similarities, reverse=True)

    def test_search_threshold_validation_and_limit(self):
        db = Database()
        db.create_table("mentions", [("doc_id", "integer"), ("text", "text")])
        db.load_rows("mentions", [(0, "Tim Tebow"), (1, "Tim Tibow"), (2, "Peyton Manning")])
        index = TrigramIndex(db, "mentions")
        with pytest.raises(ValidationError):
            index.search("Tim", threshold=0.0)
        assert len(index.search("Tim Tebow", threshold=0.3, limit=1)) == 1

    def test_pg_trgm_style_udfs(self, db):
        install_string_match_udfs(db)
        assert db.query_scalar("SELECT similarity('Tim Tebow', 'Tim Tibow')") > 0.4
        assert "tim" in db.query_scalar("SELECT show_trgm('Tim')")

    @given(text=st.text(alphabet="abcdefg ", min_size=0, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_similarity_is_reflexive_and_bounded(self, text):
        assert trigram_similarity(text, text) == 1.0
        other = text + "x"
        value = trigram_similarity(text, other)
        assert 0.0 <= value <= 1.0
