"""Unit and property tests for the run-length-encoded sparse vector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.support import SparseVector
from repro.errors import ValidationError


class TestConstruction:
    def test_from_dense_round_trip(self):
        dense = [0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 2.0]
        vector = SparseVector.from_dense(dense)
        assert len(vector) == 7
        assert vector.num_runs == 4
        np.testing.assert_array_equal(vector.to_dense(), dense)

    def test_runs_are_coalesced(self):
        vector = SparseVector([(1.0, 2), (1.0, 3), (0.0, 1)])
        assert vector.num_runs == 2
        assert vector.runs == [(1.0, 5), (0.0, 1)]

    def test_from_pairs(self):
        vector = SparseVector.from_pairs(6, [(1, 5.0), (4, 2.0)])
        np.testing.assert_array_equal(vector.to_dense(), [0, 5, 0, 0, 2, 0])
        with pytest.raises(ValidationError):
            SparseVector.from_pairs(3, [(5, 1.0)])

    def test_repeat(self):
        vector = SparseVector.repeat(3.0, 1000)
        assert len(vector) == 1000
        assert vector.num_runs == 1
        assert vector.compression_ratio() == 1000.0

    def test_invalid_run_length_raises(self):
        with pytest.raises(ValidationError):
            SparseVector([(1.0, 0)])

    def test_empty_vector(self):
        vector = SparseVector()
        assert len(vector) == 0
        assert vector.to_dense().size == 0


class TestAccess:
    def test_getitem_matches_dense(self):
        dense = [0.0, 0.0, 3.0, 3.0, 7.0]
        vector = SparseVector.from_dense(dense)
        for index in range(len(dense)):
            assert vector[index] == dense[index]
        assert vector[-1] == 7.0
        with pytest.raises(IndexError):
            vector[5]

    def test_iteration(self):
        dense = [1.0, 1.0, 0.0]
        assert list(SparseVector.from_dense(dense)) == dense

    def test_equality_and_hash(self):
        a = SparseVector.from_dense([1.0, 1.0, 0.0])
        b = SparseVector([(1.0, 2), (0.0, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestAlgebra:
    def test_add_sub_multiply_match_dense(self):
        a = SparseVector.from_dense([1.0, 1.0, 0.0, 2.0])
        b = SparseVector.from_dense([0.0, 3.0, 3.0, 3.0])
        np.testing.assert_array_equal((a + b).to_dense(), [1.0, 4.0, 3.0, 5.0])
        np.testing.assert_array_equal((a - b).to_dense(), [1.0, -2.0, -3.0, -1.0])
        np.testing.assert_array_equal(a.multiply(b).to_dense(), [0.0, 3.0, 0.0, 6.0])

    def test_dot_and_norms(self):
        a = SparseVector.from_dense([3.0, 0.0, 4.0])
        b = SparseVector.from_dense([1.0, 1.0, 1.0])
        assert a.dot(b) == 7.0
        assert a.norm(2) == 5.0
        assert a.norm(1) == 7.0
        assert a.sum() == 7.0
        assert a.count_nonzero() == 2
        with pytest.raises(ValidationError):
            a.norm(3)

    def test_scale_and_concat(self):
        a = SparseVector.from_dense([1.0, 2.0])
        np.testing.assert_array_equal(a.scale(2).to_dense(), [2.0, 4.0])
        combined = a.concat(SparseVector.from_dense([3.0]))
        np.testing.assert_array_equal(combined.to_dense(), [1.0, 2.0, 3.0])

    def test_size_mismatch_raises(self):
        with pytest.raises(ValidationError):
            SparseVector.from_dense([1.0]).dot(SparseVector.from_dense([1.0, 2.0]))


class TestProperties:
    sparse_dense = st.lists(
        st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.5, -1.0]), min_size=0, max_size=80
    )

    @given(dense=sparse_dense)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_property(self, dense):
        vector = SparseVector.from_dense(dense)
        np.testing.assert_array_equal(vector.to_dense(), np.asarray(dense))
        assert vector.num_runs <= max(len(dense), 1)

    @given(dense=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_dot_matches_numpy(self, dense):
        vector = SparseVector.from_dense(dense)
        expected = float(np.dot(dense, dense))
        assert vector.dot(vector) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(
        left=st.lists(st.sampled_from([0.0, 1.0, 3.0]), min_size=1, max_size=40),
        right_values=st.lists(st.sampled_from([0.0, 2.0, -1.0]), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_addition_matches_numpy(self, left, right_values):
        size = min(len(left), len(right_values))
        a = SparseVector.from_dense(left[:size])
        b = SparseVector.from_dense(right_values[:size])
        np.testing.assert_allclose(
            (a + b).to_dense(), np.asarray(left[:size]) + np.asarray(right_values[:size])
        )
